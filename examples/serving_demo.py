"""Serving demo: a qd-tree layout behind the concurrent serving tier.

Builds a TPC-H-style layout through the :class:`repro.db.Database`
facade, stands up the serving tier in front of it (thread-pool
scheduler + buffer-pool cache + routing memo + generation-keyed result
cache), replays a mixed SQL workload from concurrent worker threads,
and prints the serving metrics report — QPS, latency percentiles,
cache hit rate — plus the speedup over the pre-serving serial path
(route + prune + decode every arrival from scratch).

Run:  python examples/serving_demo.py [--rows 50000] [--threads 8] [--repeat 20]
"""

import argparse

from repro.db import Database
from repro.serve import run_serial_baseline
from repro.workloads import tpch_dataset

#: A mixed workload over the denormalized lineitem schema: date-range
#: scans, dictionary IN-lists, point lookups on categoricals.
STATEMENTS = [
    "SELECT * FROM lineitem WHERE l_shipdate >= 30 AND l_shipdate < 60",
    "SELECT l_extendedprice FROM lineitem "
    "WHERE l_shipmode IN ('MAIL','SHIP') AND l_commitdate < 100",
    "SELECT * FROM lineitem "
    "WHERE p_brand = 'Brand#12' AND p_container IN ('SM CASE','SM BOX')",
    "SELECT l_quantity FROM lineitem "
    "WHERE l_returnflag = 'R' AND c_nationkey < 10",
    "SELECT * FROM lineitem "
    "WHERE o_orderpriority = '1-URGENT' AND l_shipdate < 40",
    "SELECT * FROM lineitem "
    "WHERE cn_name IN ('FRANCE','GERMANY') AND l_discount >= 0.05",
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=50_000)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--repeat", type=int, default=20,
                        help="times the statement mix is replayed")
    args = parser.parse_args()

    dataset = tpch_dataset(num_rows=args.rows, seeds_per_template=2, seed=0)
    db = Database.from_table(
        dataset.table, min_block_size=dataset.min_block_size
    )
    layout = db.build_layout("greedy", workload=dataset.workload)
    print(f"layout: {layout.num_blocks} blocks over "
          f"{layout.store.logical_rows} rows "
          f"(generation {layout.generation})\n")

    # Baseline: what serving this workload cost before repro.serve —
    # every arrival routed, SMA-pruned and decoded from scratch,
    # one at a time.
    base_qps, _ = run_serial_baseline(
        layout.store, layout.tree, STATEMENTS, repeat=args.repeat,
        planner=db.planner,
    )
    print(f"serial uncached baseline: {base_qps:.1f} qps")

    # The serving tier: same layout, same statements, replayed
    # closed-loop from worker threads.
    with db.serve(
        cache_budget_bytes=64 * 1024 * 1024,
        max_workers=args.threads,
    ) as service:
        replay = service.run_closed_loop(STATEMENTS, repeat=args.repeat)
        print(f"served ({args.threads} threads): {replay.qps:.1f} qps "
              f"-> speedup {replay.qps / base_qps:.2f}x\n")
        print(service.report())


if __name__ == "__main__":
    main()
