"""TPC-H: learn a layout for the denormalized month partition.

A compact version of the paper's Sec. 7.4 experiment: generate the
denormalized TPC-H-like table and its 15 query templates, lay the data
out with the Random baseline, Greedy and Woodblock, then execute the
workload on the scan engine under the Spark/Parquet cost profile and
report per-template runtimes (the Fig. 5 view) plus the learned tree's
cut distribution (the Fig. 9 view).

Run:  python examples/tpch_layout.py [--rows 60000] [--episodes 60]
"""

import argparse

from repro.baselines import RandomPartitioner
from repro.bench import (
    build_baseline_layout,
    build_greedy_layout,
    build_rl_layout,
    format_table,
    logical_access_pct,
    run_physical,
)
from repro.engine import SPARK_PARQUET
from repro.workloads import tpch_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=60_000)
    parser.add_argument("--episodes", type=int, default=60)
    parser.add_argument("--seeds-per-template", type=int, default=5)
    args = parser.parse_args()

    dataset = tpch_dataset(
        num_rows=args.rows, seeds_per_template=args.seeds_per_template
    )
    registry = dataset.registry()
    print(f"{dataset}; b = {dataset.min_block_size}; "
          f"{len(registry)} candidate cuts "
          f"({registry.num_advanced_cuts} advanced)")

    layouts = [
        build_baseline_layout(
            dataset, RandomPartitioner(block_size=dataset.min_block_size * 4)
        ),
        build_greedy_layout(dataset, registry=registry),
        build_rl_layout(
            dataset, registry=registry, episodes=args.episodes, seed=0
        ),
    ]

    rows = []
    reports = {}
    for layout in layouts:
        pct = logical_access_pct(
            layout, dataset.workload, num_advanced_cuts=registry.num_advanced_cuts
        )
        report = run_physical(
            layout,
            dataset.workload,
            SPARK_PARQUET,
            num_advanced_cuts=registry.num_advanced_cuts,
        )
        reports[layout.label] = report
        rows.append(
            [
                layout.label,
                layout.num_blocks,
                f"{pct:.1f}%",
                f"{report.total_modeled_ms / 1000:.2f}s",
                f"{layout.build_seconds:.1f}s",
            ]
        )
    print()
    print(
        format_table(
            ["layout", "blocks", "access %", "workload runtime", "build time"],
            rows,
            title="TPC-H layouts (modeled Spark/Parquet runtime)",
        )
    )

    # Per-template runtimes (Fig. 5 shape).
    greedy_t = reports["greedy"].per_template_modeled_ms()
    rl_t = reports["woodblock"].per_template_modeled_ms()
    print()
    print(
        format_table(
            ["template", "greedy (ms)", "woodblock (ms)"],
            [
                [t, f"{greedy_t[t]:.0f}", f"{rl_t[t]:.0f}"]
                for t in sorted(greedy_t, key=lambda s: int(s[1:]))
            ],
            title="Mean per-template runtime",
        )
    )

    # Cut interpretation (Fig. 9 shape).
    rl_layout = layouts[2]
    assert rl_layout.tree is not None
    print("\nColumns cut by the learned qd-tree (count):")
    hist = rl_layout.tree.cut_histogram()
    for column, count in sorted(hist.items(), key=lambda kv: -kv[1]):
        print(f"  {column:<16} {count}")


if __name__ == "__main__":
    main()
