"""Adaptive serving: the layout follows the workload.

A greedy qd-tree layout is built for an x-range workload, then the
live traffic *drifts* — the filter-column distribution shifts from
``x`` to ``y`` mid-replay.  ``db.auto_adapt`` closes the loop the
paper leaves open: every served query lands in a bounded query log,
a drift detector compares the live template mix against the layout's
build-time workload signature, and when the divergence crosses the
threshold a candidate layout is rebuilt from the logged window in a
background thread, evaluated offline on the blocks-scanned cost
model, and hot-swapped in through the generation lifecycle (result
cache purged, serving re-pointed) — with bit-identical results
throughout.

Run:  python examples/adaptive_serving.py [--rows 40000] [--repeat 12]
"""

import argparse

import numpy as np

from repro.adapt import AdaptPolicy, offline_blocks_cost
from repro.db import Database
from repro.storage import Schema, Table, categorical, numeric

X_WORKLOAD = [
    f"SELECT x FROM t WHERE x >= {lo} AND x < {lo + 5}"
    for lo in (5, 20, 35, 50, 65, 80)
]
Y_WORKLOAD = [
    f"SELECT y FROM t WHERE y >= {lo:.2f} AND y < {lo + 0.05:.2f}"
    for lo in (0.05, 0.20, 0.35, 0.50, 0.65, 0.80)
]


def make_table(rows: int) -> Table:
    rng = np.random.default_rng(7)
    schema = Schema(
        [
            numeric("x", (0.0, 100.0)),
            numeric("y", (0.0, 1.0)),
            categorical("kind", ["a", "b", "c"]),
        ]
    )
    return Table(
        schema,
        {
            "x": rng.uniform(0, 100, rows),
            "y": rng.uniform(0, 1, rows),
            "kind": rng.integers(0, 3, rows),
        },
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=40_000)
    parser.add_argument("--repeat", type=int, default=12,
                        help="times each phase's workload is replayed")
    args = parser.parse_args()

    db = Database.from_table(make_table(args.rows), min_block_size=1000)
    frozen = db.build_layout("greedy", workload=X_WORKLOAD)
    print(
        f"frozen layout: gen {frozen.generation}, "
        f"{frozen.num_blocks} blocks, built for the x-range workload"
    )
    print(f"build signature: {frozen.workload_signature}\n")

    policy = AdaptPolicy(
        window=72,
        threshold=0.4,
        min_records=24,
        check_every=6,
        min_improvement=0.1,
    )
    with db.auto_adapt(policy=policy) as service:
        phase1 = service.run_closed_loop(X_WORKLOAD, repeat=args.repeat)
        print(
            f"phase 1 (stationary x traffic): {phase1.completed} queries, "
            f"drift {service.detector.last_score:.3f}, "
            f"still serving gen {service.generation}"
        )

        phase2 = service.run_closed_loop(Y_WORKLOAD, repeat=args.repeat)
        service.join_adaptation()
        print(
            f"phase 2 (drifted y traffic):    {phase2.completed} queries, "
            f"drift detected -> now serving gen {service.generation}"
        )
        for event in service.events:
            print(
                f"  adaptation event [{event.kind}]: drift "
                f"{event.drift_score:.3f}, window blocks "
                f"{event.incumbent_blocks} -> {event.candidate_blocks} "
                f"({100 * event.improvement:.1f}% less scan work)"
            )

        print("\n--- adaptive service report ---")
        print(service.report())

    adapted = db.active_layout
    y_queries = [(db.planner.plan(sql).query, 1) for sql in Y_WORKLOAD]
    frozen_cost = offline_blocks_cost(frozen, y_queries)
    adapted_cost = offline_blocks_cost(adapted, y_queries)
    print(
        f"\npost-drift workload cost: frozen layout {frozen_cost} blocks, "
        f"adapted layout {adapted_cost} blocks "
        f"({100 * (1 - adapted_cost / frozen_cost):.1f}% avoided work)"
    )
    print(
        "results stayed bit-identical across the swap: generations are "
        "immutable snapshots of the same rows, and the result cache is "
        "purged on every generation change."
    )


if __name__ == "__main__":
    main()
