"""Bring your own workload: SQL in, learned layout out.

Shows the full user-facing pipeline on a custom table:

1. define a schema and load (raw, unencoded) data,
2. express the workload as SQL WHERE clauses — the planner extracts the
   pushed-down predicates, including a binary column comparison that
   becomes an advanced cut and a LIKE that compiles to a dictionary IN,
3. learn a greedy qd-tree, persist it with the block catalog,
4. reload everything and route new queries.

Run:  python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import (
    CutRegistry,
    GreedyConfig,
    QueryRouter,
    QdTree,
    build_greedy_tree,
)
from repro.bench import materialize_tree
from repro.engine import SPARK_PARQUET, ScanEngine, WorkloadReport
from repro.sql import SqlPlanner
from repro.storage import (
    Schema,
    Table,
    categorical,
    load_store,
    numeric,
    save_store,
)


def make_table(num_rows: int = 40_000, seed: int = 7) -> Table:
    """A small web-requests table with raw values."""
    rng = np.random.default_rng(seed)
    statuses = [200, 301, 404, 500, 503]
    regions = ["us-east", "us-west", "eu-central", "ap-south"]
    paths = ["/home", "/api/v1/users", "/api/v1/orders", "/static/app.js",
             "/health", "/api/v2/users"]
    schema = Schema(
        [
            numeric("latency_ms", (0.0, 5000.0)),
            numeric("bytes_sent", (0.0, 1e6)),
            numeric("bytes_received", (0.0, 1e6)),
            numeric("hour", (0, 24)),
            categorical("status"),
            categorical("region"),
            categorical("path"),
        ]
    )
    raw = {
        "latency_ms": rng.gamma(2.0, 120.0, num_rows).clip(0, 5000),
        "bytes_sent": rng.exponential(20_000.0, num_rows).clip(0, 1e6),
        "bytes_received": rng.exponential(5_000.0, num_rows).clip(0, 1e6),
        "hour": rng.integers(0, 24, num_rows).astype(float),
        "status": [statuses[i] for i in rng.choice(5, num_rows,
                                                   p=[.8, .05, .08, .04, .03])],
        "region": [regions[i] for i in rng.integers(0, 4, num_rows)],
        "path": [paths[i] for i in rng.integers(0, 6, num_rows)],
    }
    return Table.from_raw(schema, raw)


SQL_WORKLOAD = [
    "SELECT latency_ms FROM requests WHERE status IN (500, 503) AND hour >= 9 AND hour < 18",
    "SELECT * FROM requests WHERE region = 'eu-central' AND latency_ms > 1000",
    "SELECT path FROM requests WHERE path LIKE '/api/%' AND status = 404",
    "SELECT bytes_sent FROM requests WHERE bytes_sent > bytes_received AND latency_ms > 2000",
    "SELECT * FROM requests WHERE hour < 6 OR hour >= 22",
]


def main() -> None:
    table = make_table()
    planner = SqlPlanner(table.schema)
    workload = planner.plan_workload(SQL_WORKLOAD)
    registry = planner.candidate_cuts(workload)
    print(f"planned {len(workload)} queries -> {len(registry)} candidate "
          f"cuts ({registry.num_advanced_cuts} advanced)")
    for cut in registry.cuts:
        print(f"  cut: {cut!r}")

    tree = build_greedy_tree(
        table.schema, registry, table, workload,
        GreedyConfig(min_leaf_size=500),
    )
    store = materialize_tree(tree, table)
    print(f"\nlearned tree: {len(tree.leaves())} blocks")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "requests-layout"
        save_store(store, path)
        tree.save(str(path / "qdtree.json"))

        # A fresh process would reload both artifacts:
        store2 = load_store(path)
        tree2 = QdTree.load(str(path / "qdtree.json"), table.schema, registry)
        print(f"reloaded {store2.num_blocks} blocks from {path.name}/")

    router = QueryRouter(tree2)
    engine = ScanEngine(store2, SPARK_PARQUET,
                        num_advanced_cuts=registry.num_advanced_cuts)
    stats = []
    for query in workload:
        routed = router.route(query)
        stats.append(engine.execute(query, routed.block_ids))
    report = WorkloadReport("custom", stats)
    print(f"\nworkload scanned {report.total_tuples_scanned} tuples "
          f"across {report.total_blocks_scanned} block reads "
          f"({report.access_percentage(table.num_rows):.1f}% access)")


if __name__ == "__main__":
    main()
