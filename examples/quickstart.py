"""Quickstart: learn a qd-tree layout for a tiny two-column workload.

Reproduces the paper's Figure 3 motivating scenario end to end:

1. generate a dataset and a two-query workload (one disjunctive),
2. extract candidate cuts from the workload,
3. build a Greedy qd-tree and a Woodblock (deep-RL) qd-tree,
4. compare the fraction of data each layout forces the workload to
   scan, and print the learned block descriptions.

Run:  python examples/quickstart.py
"""

from repro.bench import build_greedy_layout, build_rl_layout, logical_access_pct
from repro.workloads import disjunctive_dataset


def main() -> None:
    dataset = disjunctive_dataset(num_rows=50_000, seed=0)
    print(f"dataset: {dataset}")
    print(f"workload selectivity: "
          f"{100 * dataset.workload.selectivity(dataset.table):.1f}%\n")

    greedy = build_greedy_layout(dataset)
    greedy_pct = logical_access_pct(greedy, dataset.workload)
    print(f"Greedy  : {greedy.num_blocks} blocks, "
          f"{greedy_pct:.1f}% of tuples accessed")

    woodblock = build_rl_layout(dataset, episodes=60, hidden_dim=64, seed=3)
    rl_pct = logical_access_pct(woodblock, dataset.workload)
    print(f"Woodblock: {woodblock.num_blocks} blocks, "
          f"{rl_pct:.1f}% of tuples accessed")
    print(f"\nRL improvement over Greedy: {greedy_pct / rl_pct:.1f}x "
          f"(paper Fig. 3 reports 4.8x)\n")

    print("Woodblock block semantic descriptions:")
    assert woodblock.tree is not None
    for bid, description in sorted(woodblock.tree.leaf_descriptions().items()):
        print(f"  block {bid}: {description}")


if __name__ == "__main__":
    main()
