"""Quickstart: the unified Database facade end to end.

Reproduces the paper's Figure 3 motivating scenario through
:class:`repro.db.Database` — one object owning the table, its
versioned layouts, and the serving tier:

1. generate a dataset and a two-query workload (one disjunctive),
2. build TWO layouts through the pluggable strategy registry
   (greedy qd-tree and the Woodblock deep-RL agent),
3. compare the fraction of data each layout forces the workload to
   scan, and print the learned block descriptions,
4. serve the better layout through the concurrent serving tier and
   show the generation-keyed result cache at work.

Run:  python examples/quickstart.py [--rows 50000] [--episodes 60]
"""

import argparse

from repro.bench import logical_access_pct
from repro.bench.harness import LayoutResult
from repro.db import Database, strategy_names
from repro.workloads import disjunctive_dataset


def access_pct(dataset, handle) -> float:
    """Table-2-style % of tuples the workload accesses under a layout."""
    return logical_access_pct(
        LayoutResult(handle.label, handle.store, handle.tree, 0.0),
        dataset.workload,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=50_000)
    parser.add_argument("--episodes", type=int, default=60,
                        help="woodblock training episodes")
    parser.add_argument("--repeat", type=int, default=10,
                        help="times the workload is replayed when serving")
    args = parser.parse_args()

    dataset = disjunctive_dataset(num_rows=args.rows, seed=0)
    print(f"dataset: {dataset}")
    print(f"workload selectivity: "
          f"{100 * dataset.workload.selectivity(dataset.table):.1f}%")
    print(f"registered strategies: {', '.join(strategy_names())}\n")

    db = Database.from_table(
        dataset.table, min_block_size=dataset.min_block_size
    )

    # Two strategies, one entry point.  Each build gets the next
    # layout generation; activate=False keeps greedy the serving
    # layout until we decide otherwise.
    greedy = db.build_layout("greedy", workload=dataset.workload)
    greedy_pct = access_pct(dataset, greedy)
    print(f"Greedy   (gen {greedy.generation}): {greedy.num_blocks} blocks, "
          f"{greedy_pct:.1f}% of tuples accessed")

    woodblock = db.build_layout(
        "woodblock",
        workload=dataset.workload,
        episodes=args.episodes,
        hidden_dim=64,
        seed=3,
        activate=False,
    )
    rl_pct = access_pct(dataset, woodblock)
    print(f"Woodblock (gen {woodblock.generation}): "
          f"{woodblock.num_blocks} blocks, "
          f"{rl_pct:.1f}% of tuples accessed")
    print(f"\nRL improvement over Greedy: {greedy_pct / rl_pct:.1f}x "
          f"(paper Fig. 3 reports 4.8x)\n")

    print("Woodblock block semantic descriptions:")
    assert woodblock.tree is not None
    for bid, description in sorted(woodblock.tree.leaf_descriptions().items()):
        print(f"  block {bid}: {description}")

    # Serve the better layout.  The result cache is keyed by (query,
    # layout generation): the first pass over the workload scans, every
    # repeat is answered from the cache.
    db.swap_layout(woodblock)
    statements = [
        "SELECT * FROM t WHERE cpu < 10 OR cpu > 90",
        "SELECT cpu FROM t WHERE disk < 0.01",
    ]
    with db.serve(max_workers=2) as service:
        replay = service.run_closed_loop(statements, repeat=args.repeat)
        print(f"\nserved gen {woodblock.generation} at {replay.qps:.0f} qps")
        print(service.report())


if __name__ == "__main__":
    main()
