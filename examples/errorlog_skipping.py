"""ErrorLog: aggressive skipping on a highly selective log workload.

The paper's Sec. 7.5 scenario: crash-dump logs queried by tiny
needle-in-haystack lookups (selectivity well below 1%).  The deployed
range-on-ingest-time baseline cannot skip anything because queries
never filter on ingest time; a learned qd-tree skips almost
everything.  This example builds Range, BU+ (tuned Bottom-Up), Greedy
and Woodblock layouts over the synthetic ErrorLog-Int dataset and
reports access percentages and modeled runtimes.

Run:  python examples/errorlog_skipping.py [--rows 60000] [--queries 300]
"""

import argparse

from repro.baselines import BottomUpConfig, BottomUpPartitioner, RangePartitioner
from repro.bench import (
    build_baseline_layout,
    build_greedy_layout,
    build_rl_layout,
    format_table,
    logical_access_pct,
    run_physical,
)
from repro.engine import SPARK_PARQUET
from repro.workloads import errorlog_int_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=60_000)
    parser.add_argument("--queries", type=int, default=300)
    parser.add_argument("--episodes", type=int, default=40)
    args = parser.parse_args()

    dataset = errorlog_int_dataset(num_rows=args.rows, num_queries=args.queries)
    registry = dataset.registry()
    sel = 100 * dataset.workload.selectivity(dataset.table)
    print(f"{dataset}; b = {dataset.min_block_size}; "
          f"workload selectivity {sel:.4f}%")

    block = max(dataset.min_block_size, 64)
    # Range blocks sized so block dictionaries saturate (as at the
    # paper's 100M-row scale); see benchmarks/conftest.py.
    range_block = max(block * 8, dataset.num_rows // 12)
    layouts = [
        build_baseline_layout(
            dataset,
            RangePartitioner(column="ingest_date", block_size=range_block),
        ),
        build_baseline_layout(
            dataset,
            BottomUpPartitioner(
                registry,
                dataset.workload,
                BottomUpConfig(
                    min_block_size=block,
                    selectivity_threshold=0.1,
                    name="bottom-up+",
                ),
            ),
        ),
        build_greedy_layout(dataset, registry=registry),
        build_rl_layout(dataset, registry=registry, episodes=args.episodes),
    ]

    rows = []
    for layout in layouts:
        pct = logical_access_pct(layout, dataset.workload)
        report = run_physical(layout, dataset.workload, SPARK_PARQUET)
        rows.append(
            [
                layout.label,
                layout.num_blocks,
                f"{pct:.3f}%",
                f"{report.total_modeled_ms / 1000:.2f}s",
            ]
        )
    print()
    print(
        format_table(
            ["layout", "blocks", "access %", "workload runtime"],
            rows,
            title="ErrorLog-Int layouts",
        )
    )


if __name__ == "__main__":
    main()
