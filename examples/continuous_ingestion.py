"""Continuous ingestion with a learned partitioning function.

The paper's Problem 2 (Sec. 2.1): learn a partitioning function from
offline data, then apply it to newly arriving tuples — saving the cost
of reshuffling.  A frozen qd-tree is exactly such a function, and
:meth:`repro.db.Database.ingest` wraps the whole loop:

1. learn a qd-tree layout on an initial "offline" day of log data
   through the :class:`~repro.db.Database` facade,
2. stream seven more days through ``db.ingest`` in daily batches —
   each batch is routed through the learned tree (via
   :class:`~repro.core.ingest.IngestionPipeline`) and merged into a
   NEW layout generation, automatically invalidating every cached
   query result from older generations,
3. show that skipping quality on the grown store matches the offline
   estimate (same-distribution assumption) and that a query repeated
   across generations is re-executed, never served stale,
4. demonstrate the drift failure mode: data from a shifted
   distribution degrades skipping, signalling it is time to re-learn.

Run:  python examples/continuous_ingestion.py [--rows 30000] [--batch 5000]
"""

import argparse

import numpy as np

from repro.core import leaf_sizes, scan_ratio
from repro.db import Database
from repro.storage import Table
from repro.workloads import errorlog_int_dataset
from repro.workloads.errorlog import _build_int_table  # same generator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=30_000,
                        help="offline (day 0) rows")
    parser.add_argument("--batch", type=int, default=5_000,
                        help="rows per streamed day")
    parser.add_argument("--queries", type=int, default=200)
    args = parser.parse_args()

    # Day 0: offline data + workload -> learned layout, generation 1.
    offline = errorlog_int_dataset(
        num_rows=args.rows, num_queries=args.queries, seed=0
    )
    db = Database.from_table(
        offline.table, min_block_size=max(offline.min_block_size, 32)
    )
    handle = db.build_layout("greedy", workload=offline.workload)
    assert handle.tree is not None
    sizes = leaf_sizes(handle.tree, offline.table)
    offline_ratio = scan_ratio(handle.tree, offline.workload, sizes)
    print(f"learned layout (gen {handle.generation}): "
          f"{handle.num_blocks} blocks; "
          f"offline scan ratio {100 * offline_ratio:.3f}%")

    # A query served at generation 1 populates the result cache.
    probe_sql = "SELECT * FROM log WHERE os_build_date < 25"
    first = db.execute(probe_sql)
    print(f"probe at gen 1: {first.stats.rows_returned} rows "
          f"({first.stats.tuples_scanned} tuples scanned)")

    # Days 1-7: stream same-distribution batches through db.ingest —
    # routed by the learned tree, merged, generation bumped, caches
    # invalidated.
    rng = np.random.default_rng(99)
    for day in range(1, 8):
        batch = _build_int_table(args.batch, rng)
        handle = db.ingest(batch)
    store = handle.store
    print(f"ingested {7 * args.batch} rows -> gen {handle.generation}, "
          f"{store.num_blocks} blocks, {store.logical_rows} total rows")

    # The same probe is re-executed against the grown store: the gen-1
    # cache entry was invalidated, so the row count reflects ALL data.
    again = db.execute(probe_sql)
    print(f"probe at gen {handle.generation}: "
          f"{again.stats.rows_returned} rows "
          f"(was {first.stats.rows_returned} — stale results impossible, "
          f"cache invalidated {db.result_cache.stats().invalidated} entries)")

    # Quality on the grown store matches the offline estimate.
    grown_sizes = leaf_sizes(handle.tree, db.table)
    grown_ratio = scan_ratio(handle.tree, offline.workload, grown_sizes)
    print(f"grown-store scan ratio: {100 * grown_ratio:.3f}% "
          f"(offline estimate {100 * offline_ratio:.3f}%)")

    # Drift: rows from a different distribution.  The tree still
    # partitions them correctly (completeness is structural), but the
    # layout exploited the version <-> build-date correlation; breaking
    # it scatters each version across every build-date region, so
    # queries must touch far more blocks.
    drift_rng = np.random.default_rng(7)
    drifted_rows = _build_int_table(4 * args.batch, drift_rng)
    shifted = drifted_rows.columns()
    shifted["os_build_date"] = drift_rng.permutation(shifted["os_build_date"])
    shifted["report_bucket"] = drift_rng.permutation(shifted["report_bucket"])
    drifted = Table(offline.schema, shifted)
    drift_ratio = scan_ratio(
        handle.tree, offline.workload, leaf_sizes(handle.tree, drifted)
    )
    print(f"after correlation drift: {100 * drift_ratio:.3f}% "
          f"(vs {100 * offline_ratio:.3f}% — re-learning advised)")


if __name__ == "__main__":
    main()
