"""Continuous ingestion with a learned partitioning function.

The paper's Problem 2 (Sec. 2.1): learn a partitioning function from
offline data, then apply it to newly arriving tuples — saving the cost
of reshuffling.  A frozen qd-tree is exactly such a function.

This example:

1. learns a qd-tree on an initial "offline" day of log data,
2. streams seven more days through an
   :class:`~repro.core.ingest.IngestionPipeline` in small batches,
3. materializes the resulting block store and shows that skipping
   quality on the *streamed* data matches the offline estimate
   (same-distribution assumption),
4. demonstrates the drift failure mode: data from a shifted
   distribution degrades skipping, signalling it is time to re-learn.

Run:  python examples/continuous_ingestion.py
"""

import numpy as np

from repro.bench import materialize_tree
from repro.core import (
    CutRegistry,
    GreedyConfig,
    IngestionPipeline,
    QueryRouter,
    build_greedy_tree,
    leaf_sizes,
    scan_ratio,
)
from repro.engine import SPARK_PARQUET, ScanEngine, WorkloadReport
from repro.workloads import errorlog_int_dataset
from repro.workloads.errorlog import _build_int_table  # same generator


def main() -> None:
    # Day 0: offline data + workload -> learned tree.
    offline = errorlog_int_dataset(num_rows=30_000, num_queries=200, seed=0)
    registry = offline.registry()
    tree = build_greedy_tree(
        offline.schema, registry, offline.table, offline.workload,
        GreedyConfig(max(offline.min_block_size, 32)),
    )
    sizes = leaf_sizes(tree, offline.table)
    offline_ratio = scan_ratio(tree, offline.workload, sizes)
    print(f"learned tree: {len(tree.leaves())} blocks; "
          f"offline scan ratio {100 * offline_ratio:.3f}%")

    # Days 1-7: stream same-distribution batches through the pipeline.
    pipeline = IngestionPipeline(tree, segment_rows=2000)
    rng = np.random.default_rng(99)
    for day in range(1, 8):
        batch = _build_int_table(5000, rng)
        pipeline.ingest(batch)
    store = pipeline.finish()
    print(f"ingested {pipeline.rows_ingested} rows into "
          f"{store.num_blocks} blocks "
          f"({len(pipeline.segments)} segments) at "
          f"{pipeline.routing_throughput / 1000:.0f}K records/s")

    # Query the streamed data: quality should match the offline layout.
    merged = None
    streamed = store
    router = QueryRouter(tree)
    engine = ScanEngine(streamed, SPARK_PARQUET)
    stats = []
    for query in offline.workload:
        routed = router.route(query)
        stats.append(engine.execute(query, routed.block_ids))
    report = WorkloadReport("streamed", stats)
    streamed_pct = report.access_percentage(streamed.logical_rows)
    print(f"streamed-data access: {streamed_pct:.3f}% "
          f"(offline estimate {100 * offline_ratio:.3f}%)")

    # Drift: rows from a different distribution.  The tree still
    # partitions them correctly (completeness is structural), but the
    # layout exploited the version <-> build-date correlation; breaking
    # it scatters each version across every build-date region, so
    # queries must touch far more blocks.
    drift_rng = np.random.default_rng(7)
    drifted_rows = _build_int_table(20_000, drift_rng)
    shifted = drifted_rows.columns()
    shifted["os_build_date"] = drift_rng.permutation(shifted["os_build_date"])
    shifted["report_bucket"] = drift_rng.permutation(shifted["report_bucket"])
    from repro.storage import Table

    drifted = Table(offline.schema, shifted)
    drift_ratio = scan_ratio(tree, offline.workload, leaf_sizes(tree, drifted))
    print(f"after correlation drift: {100 * drift_ratio:.3f}% "
          f"(vs {100 * offline_ratio:.3f}% — re-learning advised)")


if __name__ == "__main__":
    main()
