"""Data overlap and two-tree replication (paper Sec. 6.2 / 6.3).

Part 1 reproduces the Figure 4 scenario: four query rectangles share a
single record; binary cuts strand that record with one lucky block, so
three of the four queries read N extra tuples each.  Constructing with
the relaxed cutting condition and replicating the resulting small leaf
into its neighbours removes the extra reads at negligible storage cost.

Part 2 demonstrates the two-tree approach on the Fig.-3 disjunctive
workload: a second full-copy tree tuned to the queries the first tree
serves worst.

Run:  python examples/overlap_replication.py
"""

import numpy as np

from repro.core import (
    CutRegistry,
    GreedyConfig,
    build_greedy_tree,
    build_overlap_layout,
    build_two_tree_layout,
    leaf_sizes,
    per_query_accessed,
)
from repro.workloads import disjunctive_dataset, overlap_dataset


def part1_overlap() -> None:
    print("=== Part 1: data overlap (Fig. 4) ===")
    dataset = overlap_dataset(cluster_size=1000, seed=0)
    registry = dataset.registry()

    # Plain construction: the binary-cut layout.
    plain = build_greedy_tree(
        dataset.schema,
        registry,
        dataset.table,
        dataset.workload,
        GreedyConfig(min_leaf_size=dataset.min_block_size),
    )
    sizes = leaf_sizes(plain, dataset.table)
    accessed = per_query_accessed(plain, dataset.workload, sizes)
    ideal = dataset.workload.selected_counts(dataset.table)
    print(f"binary cuts: {len(plain.leaves())} blocks; per-query tuples "
          f"accessed {accessed.tolist()} (ideal {ideal.tolist()})")
    print(f"  extra tuples read: {int(accessed.sum() - ideal.sum())}")

    # Relaxed construction + replication of the small center leaf.
    relaxed = build_greedy_tree(
        dataset.schema,
        registry,
        dataset.table,
        dataset.workload,
        GreedyConfig(min_leaf_size=dataset.min_block_size,
                     allow_small_children=True),
    )
    layout = build_overlap_layout(relaxed, dataset.table,
                                  dataset.min_block_size)
    per_query = []
    for query in dataset.workload:
        bids = layout.blocks_for_query(query)
        per_query.append(
            sum(layout.store.block(b).num_rows for b in bids)
        )
    print(f"with overlap: {layout.store.num_blocks} blocks, "
          f"{layout.replicated_rows} replicated rows "
          f"({100 * (layout.store.storage_overhead() - 1):.2f}% extra storage)")
    print(f"  per-query tuples accessed {per_query} (ideal {ideal.tolist()})")


def part2_two_trees() -> None:
    print("\n=== Part 2: two-tree replication (Sec. 6.3) ===")
    # Two query families contend for a limited block budget: one
    # filters on x, the other on y.  With a large minimum block size a
    # single tree can only serve one family well; a second full-copy
    # tree specializes in the other.
    from repro.core import Query, Workload, column_ge, column_lt, conjunction
    from repro.storage import Schema, Table, numeric

    rng = np.random.default_rng(1)
    num_rows = 40_000
    schema = Schema([numeric("x", (0.0, 100.0)), numeric("y", (0.0, 100.0))])
    table = Table(
        schema,
        {"x": rng.uniform(0, 100, num_rows), "y": rng.uniform(0, 100, num_rows)},
    )
    queries = []
    for i in range(4):
        lo = 12.0 * i
        queries.append(
            Query(
                conjunction([column_ge("x", lo), column_lt("x", lo + 6.0)]),
                name=f"x{i}", template="x-family",
            )
        )
        queries.append(
            Query(
                conjunction([column_ge("y", lo), column_lt("y", lo + 6.0)]),
                name=f"y{i}", template="y-family",
            )
        )
    workload = Workload(queries)
    registry = CutRegistry.from_workload(schema, workload)
    b = num_rows // 6  # only ~6 blocks: not enough for both families

    def builder(wl):
        return build_greedy_tree(
            schema, registry, table, wl, GreedyConfig(min_leaf_size=b)
        )

    single = builder(workload)
    sizes = leaf_sizes(single, table)
    single_accessed = int(per_query_accessed(single, workload, sizes).sum())
    layout = build_two_tree_layout(builder, workload, table)
    print(f"single greedy tree: {single_accessed} tuples accessed")
    print(f"two-tree layout   : {layout.total_accessed} tuples accessed "
          f"({single_accessed / max(layout.total_accessed, 1):.2f}x better, "
          f"2x storage)")
    print(f"per-query tree choice: {layout.choice.tolist()}")


if __name__ == "__main__":
    part1_overlap()
    part2_two_trees()
