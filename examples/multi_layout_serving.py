"""Multi-layout serving: one table, several layouts, cheapest wins.

Builds two deliberately complementary layouts over one table — a range
partition on ``x`` and a range partition on ``y`` — then serves a
skewed two-template workload through ``db.serve_multi``.  The
cost-model arbiter routes each unique predicate against every layout,
scores the candidates (blocks surviving the min-max prune, then
estimated bytes scanned) and executes on the argmin layout; the demo
prints the per-layout win counts and shows total blocks scanned beating
either layout on its own.

Run:  python examples/multi_layout_serving.py [--rows 60000] [--repeat 5]
"""

import argparse

import numpy as np

from repro.db import Database
from repro.storage import Schema, Table, categorical, numeric

X_TEMPLATE = [
    f"SELECT x FROM t WHERE x >= {lo} AND x < {lo + 5}"
    for lo in (5, 20, 35, 50, 65, 80)
]
Y_TEMPLATE = [
    f"SELECT y FROM t WHERE y >= {lo:.2f} AND y < {lo + 0.05:.2f}"
    for lo in (0.05, 0.20, 0.35, 0.50, 0.65, 0.80)
]
WORKLOAD = [sql for pair in zip(X_TEMPLATE, Y_TEMPLATE) for sql in pair]


def make_table(rows: int) -> Table:
    rng = np.random.default_rng(11)
    schema = Schema(
        [
            numeric("x", (0.0, 100.0)),
            numeric("y", (0.0, 1.0)),
            categorical("kind", ["a", "b", "c"]),
        ]
    )
    return Table(
        schema,
        {
            "x": rng.uniform(0, 100, rows),
            "y": rng.uniform(0, 1, rows),
            "kind": rng.integers(0, 3, rows),
        },
    )


def blocks_on_single_layout(db, handle, statements) -> int:
    """Blocks scanned executing the workload on ONE layout, uncached."""
    total = 0
    for sql in statements:
        total += db.execute(sql, layout=handle).stats.blocks_scanned
    return total


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=60_000)
    parser.add_argument("--repeat", type=int, default=5,
                        help="times the workload is replayed")
    args = parser.parse_args()

    db = Database.from_table(make_table(args.rows), min_block_size=1000)
    by_x = db.build_layout("range", column="x", label="by-x")
    by_y = db.build_layout("range", column="y", label="by-y", activate=False)
    print(f"two layouts over {args.rows} rows: "
          f"by-x ({by_x.num_blocks} blocks, gen {by_x.generation}), "
          f"by-y ({by_y.num_blocks} blocks, gen {by_y.generation})\n")

    # Per-layout baselines: what the whole workload costs pinned to
    # one layout (the result cache is bypassed via fresh queries).
    db.result_cache.clear()
    only_x = blocks_on_single_layout(db, by_x, WORKLOAD)
    only_y = blocks_on_single_layout(db, by_y, WORKLOAD)
    print(f"blocks scanned, whole workload on by-x alone: {only_x}")
    print(f"blocks scanned, whole workload on by-y alone: {only_y}")

    # Arbitrated: each query runs on whichever layout survives fewer
    # blocks (min-max stats as priors), so the skewed templates split.
    with db.serve_multi([by_x, by_y], result_cache=False) as multi:
        arbitrated = sum(
            multi.execute_sql(sql).stats.blocks_scanned for sql in WORKLOAD
        )
        print(f"blocks scanned, cost-arbitrated multi-layout: {arbitrated} "
              f"(best single layout: {min(only_x, only_y)})\n")
        sample = multi.execute_sql(X_TEMPLATE[0])
        print(f"example decision: {X_TEMPLATE[0]!r}")
        for label, (blocks, nbytes) in multi.arbiter_scores(X_TEMPLATE[0]):
            marker = " <- winner" if label == sample.winner else ""
            print(f"  {label:<6} {blocks:>3} blocks, ~{nbytes} bytes{marker}")
        print()
        replay = multi.run_closed_loop(WORKLOAD, repeat=args.repeat)
        print(f"replayed {replay.completed} queries at {replay.qps:.1f} qps")
        print(multi.report())
    assert arbitrated <= min(only_x, only_y)


if __name__ == "__main__":
    main()
