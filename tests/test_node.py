"""Unit tests for repro.core.node (semantic descriptions)."""

import numpy as np
import pytest

from repro.core import (
    AdvancedCut,
    NodeDescription,
    column_eq,
    column_ge,
    column_in,
    column_le,
    column_lt,
    conjunction,
    disjunction,
)
from repro.core.predicates import Not


@pytest.fixture
def root_desc(mixed_schema):
    return NodeDescription.root(mixed_schema, num_advanced_cuts=2)


class TestRootDescription:
    def test_numeric_domains(self, root_desc):
        iv = root_desc.hypercube.interval("age")
        assert (iv.lo, iv.hi) == (0, 100)

    def test_categorical_masks_full(self, root_desc):
        assert root_desc.categorical_masks["city"].all()
        assert len(root_desc.categorical_masks["city"]) == 4

    def test_advanced_bits_set(self, root_desc):
        assert root_desc.adv_true.all() and root_desc.adv_false.all()
        assert len(root_desc.adv_true) == 2


class TestSplitRange:
    def test_range_cut_narrows_both_sides(self, root_desc):
        left, right = root_desc.split(column_lt("age", 40))
        assert left.hypercube.interval("age").hi == 40
        assert not left.hypercube.interval("age").hi_inclusive
        assert right.hypercube.interval("age").lo == 40
        assert right.hypercube.interval("age").lo_inclusive

    def test_sides_are_disjoint(self, root_desc):
        left, right = root_desc.split(column_le("age", 40))
        li = left.hypercube.interval("age")
        ri = right.hypercube.interval("age")
        assert not li.intersects(ri)

    def test_parent_untouched(self, root_desc):
        root_desc.split(column_lt("age", 40))
        assert root_desc.hypercube.interval("age").hi == 100

    def test_numeric_eq_cut(self, root_desc):
        left, right = root_desc.split(column_eq("age", 42))
        assert left.hypercube.interval("age").lo == 42
        assert left.hypercube.interval("age").hi == 42
        # Right keeps the hull (two-sided complement not representable).
        assert right.hypercube.interval("age").hi == 100


class TestSplitCategorical:
    def test_eq_cut_masks(self, root_desc, mixed_schema):
        sf = mixed_schema.encode_literal("city", "sf")
        left, right = root_desc.split(column_eq("city", sf))
        assert left.categorical_masks["city"].tolist() == [False, True, False, False]
        assert right.categorical_masks["city"].tolist() == [True, False, True, True]

    def test_in_cut_masks(self, root_desc, mixed_schema):
        codes = mixed_schema.encode_literals("city", ["nyc", "aus"])
        left, right = root_desc.split(column_in("city", codes))
        assert left.categorical_masks["city"].tolist() == [True, False, False, True]
        assert right.categorical_masks["city"].tolist() == [False, True, True, False]

    def test_nested_cuts_accumulate(self, root_desc, mixed_schema):
        codes = mixed_schema.encode_literals("city", ["nyc", "sf"])
        left, _ = root_desc.split(column_in("city", codes))
        left2, right2 = left.split(column_eq("city", 0))
        assert left2.categorical_masks["city"].tolist() == [True, False, False, False]
        assert right2.categorical_masks["city"].tolist() == [False, True, False, False]


class TestSplitAdvanced:
    def make_cut(self, index=0):
        return AdvancedCut("adv", index, lambda c: c["age"] > c["salary"])

    def test_split_sets_bits(self, root_desc):
        left, right = root_desc.split(self.make_cut())
        assert left.adv_true[0] and not left.adv_false[0]
        assert not right.adv_true[0] and right.adv_false[0]

    def test_other_bits_untouched(self, root_desc):
        left, right = root_desc.split(self.make_cut(index=0))
        assert left.adv_true[1] and left.adv_false[1]

    def test_out_of_range_index_raises(self, root_desc):
        with pytest.raises(IndexError):
            root_desc.split(self.make_cut(index=7))


class TestMayMatch:
    def test_range_pruning(self, root_desc):
        left, right = root_desc.split(column_lt("age", 40))
        q = column_ge("age", 60)
        assert not left.may_match(q)
        assert right.may_match(q)

    def test_categorical_pruning(self, root_desc, mixed_schema):
        sf = mixed_schema.encode_literal("city", "sf")
        nyc = mixed_schema.encode_literal("city", "nyc")
        left, right = root_desc.split(column_eq("city", sf))
        assert left.may_match(column_eq("city", sf))
        assert not left.may_match(column_eq("city", nyc))
        assert not right.may_match(column_eq("city", sf))

    def test_and_prunes_if_any_conjunct_cannot(self, root_desc):
        left, _ = root_desc.split(column_lt("age", 40))
        q = conjunction([column_lt("age", 30), column_ge("age", 50)])
        assert not left.may_match(q)

    def test_or_matches_if_any_disjunct_can(self, root_desc):
        left, _ = root_desc.split(column_lt("age", 40))
        q = disjunction([column_ge("age", 90), column_lt("age", 10)])
        assert left.may_match(q)

    def test_negated_equality(self, root_desc, mixed_schema):
        sf = mixed_schema.encode_literal("city", "sf")
        left, right = root_desc.split(column_eq("city", sf))
        q = Not(column_eq("city", sf))
        # Left holds only sf rows: cannot match "city != sf".
        assert not left.may_match(q)
        assert right.may_match(q)

    def test_advanced_bits_prune_both_polarities(self, root_desc):
        cut = AdvancedCut("adv", 0, lambda c: c["age"] > 0)
        left, right = root_desc.split(cut)
        assert left.may_match(cut)
        assert not left.may_match(cut.negate())
        assert not right.may_match(cut)
        assert right.may_match(cut.negate())

    def test_in_query_against_range(self, root_desc):
        left, _ = root_desc.split(column_lt("age", 40))
        assert left.may_match(column_in("age", [10, 80]))
        assert not left.may_match(column_in("age", [60, 80]))

    def test_empty_description_matches_nothing(self, root_desc):
        left, _ = root_desc.split(column_lt("age", 40))
        dead, _ = left.split(column_ge("age", 60))
        assert dead.hypercube.is_empty
        assert not dead.may_match(column_lt("age", 100))


class TestMatchesRows:
    def test_range_and_mask(self, root_desc, mixed_schema, mixed_table):
        sf = mixed_schema.encode_literal("city", "sf")
        left, _ = root_desc.split(column_lt("age", 40))
        left2, _ = left.split(column_eq("city", sf))
        mask = left2.matches_rows(mixed_table.columns())
        expected = (mixed_table.column("age") < 40) & (
            mixed_table.column("city") == sf
        )
        np.testing.assert_array_equal(mask, expected)

    def test_full_description_matches_everything(self, root_desc, mixed_table):
        assert root_desc.matches_rows(mixed_table.columns()).all()


class TestTighten:
    def test_tighten_shrinks_to_data(self, root_desc, mixed_table):
        sub = mixed_table.filter(mixed_table.column("age") < 20)
        tight = root_desc.tighten(sub.columns())
        iv = tight.hypercube.interval("age")
        assert iv.lo == sub.column("age").min()
        assert iv.hi == sub.column("age").max()

    def test_tighten_categorical_masks(self, root_desc, mixed_table):
        sub = mixed_table.filter(mixed_table.column("city") == 2)
        tight = root_desc.tighten(sub.columns())
        assert tight.categorical_masks["city"].tolist() == [
            False,
            False,
            True,
            False,
        ]

    def test_tighten_empty_is_noop(self, root_desc, mixed_schema):
        from repro.storage import Table

        empty = Table.empty(mixed_schema)
        tight = root_desc.tighten(empty.columns())
        assert tight.hypercube.interval("age").hi == 100

    def test_tighten_never_loses_rows(self, root_desc, mixed_table):
        """Tightened descriptions still match all their own rows."""
        sub = mixed_table.filter(mixed_table.column("salary") > 100_000)
        tight = root_desc.tighten(sub.columns())
        assert tight.matches_rows(sub.columns()).all()
