"""BlockCache admission policies: tiny-LFU gate vs plain LRU.

Differential bar (ISSUE 5 satellite): under either policy the served
arrays — and therefore query results — are bit-identical; on a skewed
replay (a hot working set polluted by one-shot cold scans) the LFU
gate's hit rate is ≥ plain LRU's, because one-touch cold blocks flow
through without displacing the re-accessed hot set.
"""

import numpy as np
import pytest

from repro.db import Database
from repro.serve import BlockCache
from repro.storage import BlockStore, Schema, Table, numeric


@pytest.fixture(scope="module")
def store():
    rng = np.random.default_rng(0)
    schema = Schema([numeric("x", (0.0, 100.0)), numeric("y", (0.0, 1.0))])
    n = 10_000
    table = Table(
        schema,
        {"x": rng.uniform(0, 100, n), "y": rng.uniform(0, 1, n)},
    )
    # Ten equal blocks: every decoded "x" column has the same nbytes,
    # so the byte budget translates to an exact entry count.
    assignment = np.repeat(np.arange(10), n // 10)
    return BlockStore.from_assignment(table, assignment)


def skewed_replay(cache: BlockCache, store: BlockStore, rounds: int = 30):
    """One hot block re-read between pairs of one-shot cold blocks —
    the classic LRU-pollution pattern (budget holds 2 columns)."""
    served = []
    cold = [bid for bid in range(1, 10)]
    i = 0
    for _ in range(rounds):
        served.append(cache.read_columns(store.block(0), ["x"])["x"])
        for _ in range(2):
            bid = cold[i % len(cold)]
            i += 1
            served.append(cache.read_columns(store.block(bid), ["x"])["x"])
    return served


class TestAdmissionGate:
    def test_rejects_bad_policy_name(self):
        with pytest.raises(ValueError, match="admission"):
            BlockCache(1024, admission="arc")

    def test_bit_identical_arrays_under_both_policies(self, store):
        nbytes = store.block(0).decoded_nbytes(["x"])
        lru = BlockCache(2 * nbytes, admission="lru")
        lfu = BlockCache(2 * nbytes, admission="lfu")
        for a, b in zip(
            skewed_replay(lru, store), skewed_replay(lfu, store)
        ):
            np.testing.assert_array_equal(a, b)

    def test_lfu_hit_rate_ge_lru_on_skewed_replay(self, store):
        nbytes = store.block(0).decoded_nbytes(["x"])
        lru = BlockCache(2 * nbytes, admission="lru")
        lfu = BlockCache(2 * nbytes, admission="lfu")
        skewed_replay(lru, store)
        skewed_replay(lfu, store)
        lru_stats, lfu_stats = lru.stats(), lfu.stats()
        assert lfu_stats.hit_rate >= lru_stats.hit_rate
        # And strictly better here: LRU evicts the hot block between
        # its touches (two colds fill the budget), while the gate
        # keeps it resident after warmup.
        assert lfu_stats.hit_rate > lru_stats.hit_rate
        assert lfu_stats.admission_rejections > 0
        assert lru_stats.admission_rejections == 0

    def test_frequency_counters_decay(self):
        from repro.serve import cache as cache_mod

        bc = BlockCache(1024, admission="lfu")
        key = (0, "x")
        for _ in range(cache_mod._FREQ_SAMPLE_LIMIT - 1):
            bc._touch(key)
        assert bc._freq[key] == cache_mod._FREQ_CAP
        bc._touch(key)  # crosses the sample limit -> halving
        assert bc._freq[key] == cache_mod._FREQ_CAP // 2
        assert bc._freq_samples == 0


class TestServiceDifferential:
    """End-to-end through the serving tier: same results, ≥ hit rate."""

    @pytest.fixture(scope="class")
    def db(self):
        rng = np.random.default_rng(3)
        schema = Schema(
            [numeric("x", (0.0, 100.0)), numeric("y", (0.0, 1.0))]
        )
        n = 12_000
        table = Table(
            schema,
            {"x": rng.uniform(0, 100, n), "y": rng.uniform(0, 1, n)},
        )
        db = Database.from_table(table, min_block_size=1000)
        db.build_layout("range", column="x")
        return db

    def statements(self):
        # Hot template: the lowest-x block, re-queried constantly.
        # Cold stream: distinct one-shot range scans walking the rest
        # of the domain (distinct literals, so neither the route memo
        # nor a result cache could hide the scans).
        out = []
        lo = 10.0
        for _ in range(40):
            out.append("SELECT x FROM t WHERE x < 4")
            for _ in range(2):
                out.append(
                    f"SELECT x FROM t WHERE x >= {lo:.2f} "
                    f"AND x < {lo + 7:.2f}"
                )
                lo = 10.0 + (lo - 10.0 + 11.0) % 85.0
        return out

    def replay(self, db, admission):
        statements = self.statements()
        budget = 3 * db.active_layout.store.block(0).decoded_nbytes(["x"])
        with db.serve(
            cache_budget_bytes=budget,
            max_workers=1,
            result_cache=False,
            admission=admission,
        ) as service:
            keys = [
                service.execute_sql(sql).stats.result_key()
                for sql in statements
            ]
            return keys, service.cache.stats()

    def test_results_identical_and_hit_rate_ge(self, db):
        lru_keys, lru_stats = self.replay(db, "lru")
        lfu_keys, lfu_stats = self.replay(db, "lfu")
        assert lfu_keys == lru_keys  # bit-identical end to end
        assert lfu_stats.hit_rate >= lru_stats.hit_rate
