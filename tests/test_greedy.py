"""Unit tests for repro.core.greedy (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import (
    CutRegistry,
    GreedyConfig,
    Query,
    Workload,
    build_greedy_tree,
    column_lt,
    leaf_sizes,
    scan_ratio,
)
from repro.workloads import disjunctive_dataset


class TestConstruction:
    def test_respects_min_leaf_size(self, mixed_schema, mixed_table, mixed_workload):
        reg = CutRegistry.from_workload(mixed_schema, mixed_workload)
        b = 100
        tree = build_greedy_tree(
            mixed_schema, reg, mixed_table, mixed_workload, GreedyConfig(b)
        )
        for leaf in tree.leaves():
            assert len(leaf.sample_indices) >= b

    def test_improves_over_single_block(
        self, mixed_schema, mixed_table, mixed_workload
    ):
        reg = CutRegistry.from_workload(mixed_schema, mixed_workload)
        tree = build_greedy_tree(
            mixed_schema, reg, mixed_table, mixed_workload, GreedyConfig(100)
        )
        sizes = leaf_sizes(tree, mixed_table)
        assert scan_ratio(tree, mixed_workload, sizes) < 1.0
        assert len(tree.leaves()) > 1

    def test_max_depth_cap(self, mixed_schema, mixed_table, mixed_workload):
        reg = CutRegistry.from_workload(mixed_schema, mixed_workload)
        tree = build_greedy_tree(
            mixed_schema,
            reg,
            mixed_table,
            mixed_workload,
            GreedyConfig(50, max_depth=1),
        )
        assert tree.depth() <= 1

    def test_invalid_b_rejected(self, mixed_schema, mixed_table, mixed_workload):
        reg = CutRegistry.from_workload(mixed_schema, mixed_workload)
        with pytest.raises(ValueError):
            build_greedy_tree(
                mixed_schema, reg, mixed_table, mixed_workload, GreedyConfig(0)
            )

    def test_block_ids_assigned(self, mixed_schema, mixed_table, mixed_workload):
        reg = CutRegistry.from_workload(mixed_schema, mixed_workload)
        tree = build_greedy_tree(
            mixed_schema, reg, mixed_table, mixed_workload, GreedyConfig(100)
        )
        assert all(l.block_id is not None for l in tree.leaves())


class TestGreedyPathology:
    """The paper's Fig. 3: greedy cannot exploit disjunctive queries."""

    def test_greedy_picks_only_disk_cut(self):
        ds = disjunctive_dataset(num_rows=20_000, seed=0)
        reg = ds.registry()
        tree = build_greedy_tree(
            ds.schema, reg, ds.table, ds.workload,
            GreedyConfig(ds.min_block_size),
        )
        hist = tree.cut_histogram()
        assert hist == {"disk": 1}

    def test_greedy_scan_ratio_matches_paper(self):
        ds = disjunctive_dataset(num_rows=20_000, seed=0)
        reg = ds.registry()
        tree = build_greedy_tree(
            ds.schema, reg, ds.table, ds.workload,
            GreedyConfig(ds.min_block_size),
        )
        sizes = leaf_sizes(tree, ds.table)
        ratio = scan_ratio(tree, ds.workload, sizes)
        # Paper reports 50.5%; sampling noise allows a small band.
        assert 0.48 < ratio < 0.53


class TestRelaxations:
    def test_allow_small_children_splits_tiny_regions(self):
        """With the Sec. 6.2 relaxation a sub-b region can be isolated."""
        rng = np.random.default_rng(0)
        from repro.storage import Schema, Table, numeric

        schema = Schema([numeric("x", (0.0, 1.0))])
        table = Table(schema, {"x": rng.uniform(0, 1, 10_000)})
        # Query selects ~0.5% of rows: below b = 100.
        wl = Workload([Query(column_lt("x", 0.005), name="tiny")])
        reg = CutRegistry.from_workload(schema, wl)
        strict = build_greedy_tree(
            schema, reg, table, wl, GreedyConfig(100)
        )
        relaxed = build_greedy_tree(
            schema, reg, table, wl, GreedyConfig(100, allow_small_children=True)
        )
        assert len(strict.leaves()) == 1  # cut illegal under strict b
        assert len(relaxed.leaves()) == 2

    def test_zero_gain_ablation_cuts_at_least_as_much(
        self, mixed_schema, mixed_table, mixed_workload
    ):
        reg = CutRegistry.from_workload(mixed_schema, mixed_workload)
        strict = build_greedy_tree(
            mixed_schema, reg, mixed_table, mixed_workload, GreedyConfig(100)
        )
        eager = build_greedy_tree(
            mixed_schema,
            reg,
            mixed_table,
            mixed_workload,
            GreedyConfig(100, allow_zero_gain=True),
        )
        assert len(eager.leaves()) >= len(strict.leaves())


class TestMonotonicity:
    def test_skipping_never_decreases_with_more_queries_served(
        self, mixed_schema, mixed_table
    ):
        """Greedy's objective C(T) is monotone along construction: the
        final tree skips at least as much as the singleton tree."""
        wl = Workload([Query(column_lt("age", 25), name="q")])
        reg = CutRegistry.from_workload(mixed_schema, wl)
        tree = build_greedy_tree(
            mixed_schema, reg, mixed_table, wl, GreedyConfig(100)
        )
        sizes = leaf_sizes(tree, mixed_table)
        assert scan_ratio(tree, wl, sizes) <= 1.0
        young = tree.route_query(column_lt("age", 25))
        assert len(young) < len(tree.leaves()) or len(tree.leaves()) == 1
