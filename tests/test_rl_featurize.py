"""Unit tests for repro.rl.featurize."""

import numpy as np
import pytest

from repro.core import (
    AdvancedCut,
    CutRegistry,
    NodeDescription,
    column_eq,
    column_lt,
)
from repro.rl import Featurizer


@pytest.fixture
def registry(mixed_schema):
    reg = CutRegistry(mixed_schema)
    reg.add(column_lt("age", 40))
    reg.add(column_eq("city", 1))
    reg.add(AdvancedCut("adv", 0, lambda c: c["age"] > c["salary"]))
    return reg


@pytest.fixture
def featurizer(mixed_schema, registry):
    return Featurizer(mixed_schema, registry)


class TestDimensions:
    def test_dim_formula(self, mixed_schema, featurizer):
        # 2 numeric cols * 2 + city(4) + level(3) + 2 adv bits + 2*3 cuts
        assert featurizer.dim == 4 + 7 + 2 + 6

    def test_vector_length_matches_dim(self, mixed_schema, featurizer):
        desc = NodeDescription.root(mixed_schema, num_advanced_cuts=1)
        assert len(featurizer.featurize(desc)) == featurizer.dim


class TestEncoding:
    def test_root_bounds_are_0_1(self, mixed_schema, featurizer):
        desc = NodeDescription.root(mixed_schema, num_advanced_cuts=1)
        vec = featurizer.featurize(desc)
        assert vec[0] == 0.0 and vec[1] == 1.0  # age bounds
        assert vec[2] == 0.0 and vec[3] == 1.0  # salary bounds

    def test_split_changes_bounds(self, mixed_schema, featurizer):
        desc = NodeDescription.root(mixed_schema, num_advanced_cuts=1)
        left, right = desc.split(column_lt("age", 40))
        lvec = featurizer.featurize(left)
        rvec = featurizer.featurize(right)
        assert lvec[1] == pytest.approx(0.4)  # hi bound 40/100
        assert rvec[0] == pytest.approx(0.4)  # lo bound

    def test_categorical_mask_embedded(self, mixed_schema, featurizer):
        desc = NodeDescription.root(mixed_schema, num_advanced_cuts=1)
        left, _ = desc.split(column_eq("city", 1))
        vec = featurizer.featurize(left)
        city_bits = vec[4:8]
        assert city_bits.tolist() == [0.0, 1.0, 0.0, 0.0]

    def test_adv_bits_embedded(self, mixed_schema, featurizer, registry):
        desc = NodeDescription.root(mixed_schema, num_advanced_cuts=1)
        cut = registry.advanced_cuts[0]
        left, right = desc.split(cut)
        lvec = featurizer.featurize(left)
        rvec = featurizer.featurize(right)
        adv_offset = 4 + 7
        assert lvec[adv_offset] == 1.0 and lvec[adv_offset + 1] == 0.0
        assert rvec[adv_offset] == 0.0 and rvec[adv_offset + 1] == 1.0

    def test_explicit_cut_state_used(self, mixed_schema, featurizer):
        desc = NodeDescription.root(mixed_schema, num_advanced_cuts=1)
        state = np.zeros(6)
        state[0] = 1.0
        vec = featurizer.featurize(desc, cut_state=state)
        assert vec[-6:].tolist() == state.tolist()

    def test_bad_cut_state_length_raises(self, mixed_schema, featurizer):
        desc = NodeDescription.root(mixed_schema, num_advanced_cuts=1)
        with pytest.raises(ValueError):
            featurizer.featurize(desc, cut_state=np.zeros(3))

    def test_derived_cut_state_reflects_straddling(
        self, mixed_schema, featurizer
    ):
        desc = NodeDescription.root(mixed_schema, num_advanced_cuts=1)
        left, _ = desc.split(column_lt("age", 40))
        vec = featurizer.featurize(left)
        # Cut 0 is age < 40: the left node satisfies it entirely, so
        # may_true = 1, may_false = 0.
        assert vec[-6] == 1.0 and vec[-5] == 0.0

    def test_featurize_batch(self, mixed_schema, featurizer):
        desc = NodeDescription.root(mixed_schema, num_advanced_cuts=1)
        left, right = desc.split(column_lt("age", 40))
        batch = featurizer.featurize_batch([left, right])
        assert batch.shape == (2, featurizer.dim)
