"""Differential guarantees for the repro.db facade.

Two proofs the facade is held to (ISSUE 3 acceptance criteria):

1. **Strategy parity** — every registered strategy built through
   ``Database.build_layout`` yields a layout whose executed workload
   is ``result_key``-identical to the layout from its legacy direct
   entry point (``build_greedy_tree``, ``Woodblock``, the
   ``baselines/*`` partitioners).  The legacy map is keyed off
   ``strategy_names()`` so registering a new strategy without adding
   its parity case fails loudly.

2. **Result cache** — on a serve-bench-style replay the
   generation-keyed result cache returns bit-identical results with a
   repeat-query speedup ≥ 1, and serves zero stale results across
   ``swap_layout`` and ``ingest`` generation changes.
"""

import threading

import numpy as np
import pytest

from repro.baselines import (
    BottomUpConfig,
    BottomUpPartitioner,
    HashPartitioner,
    KdTreePartitioner,
    RandomPartitioner,
    RangePartitioner,
)
from repro.core.greedy import GreedyConfig, build_greedy_tree
from repro.core.router import QueryRouter
from repro.db import Database, strategy_names
from repro.engine.executor import ScanEngine
from repro.rl.woodblock import Woodblock, WoodblockConfig
from repro.serve import ResultCache, run_serial_baseline
from repro.storage import BlockStore, Schema, Table, categorical, numeric

STATEMENTS = [
    "SELECT x FROM t WHERE x < 20",
    "SELECT x, y FROM t WHERE kind = 'b' AND y < 0.2",
    "SELECT x FROM t WHERE x >= 80 AND kind IN ('a','c')",
    "SELECT * FROM t WHERE y >= 0.5 AND x < 50",
]

BLOCK = 400
WOODBLOCK_OPTS = {"episodes": 4, "hidden_dim": 16, "seed": 0}


@pytest.fixture(scope="module")
def schema():
    return Schema(
        [
            numeric("x", (0.0, 100.0)),
            numeric("y", (0.0, 1.0)),
            categorical("kind", ["a", "b", "c"]),
        ]
    )


def make_table(schema, n, seed=0):
    rng = np.random.default_rng(seed)
    return Table(
        schema,
        {
            "x": rng.uniform(0, 100, n),
            "y": rng.uniform(0, 1, n),
            "kind": rng.integers(0, 3, n),
        },
    )


@pytest.fixture(scope="module")
def table(schema):
    return make_table(schema, 4000)


def result_keys(store, tree, queries, num_advanced_cuts=0):
    """Execute every query (routed when a tree exists) -> result keys."""
    engine = ScanEngine(store, num_advanced_cuts=num_advanced_cuts)
    router = QueryRouter(tree) if tree is not None else None
    keys = []
    for query in queries:
        bids = router.route(query).block_ids if router is not None else None
        keys.append(engine.execute(query, bids).result_key())
    return keys


# ----------------------------------------------------------------------
# 1. Strategy parity with legacy direct entry points
# ----------------------------------------------------------------------


def legacy_greedy(schema, table, workload, registry):
    tree = build_greedy_tree(
        schema, registry, table, workload, GreedyConfig(min_leaf_size=BLOCK)
    )
    bids = tree.freeze(table)
    store = BlockStore.from_assignment(
        table, bids, descriptions=tree.leaf_descriptions()
    )
    return store, tree


def legacy_woodblock(schema, table, workload, registry):
    agent = Woodblock(
        schema,
        registry,
        table,
        workload,
        WoodblockConfig(
            min_leaf_size=BLOCK,
            episodes=WOODBLOCK_OPTS["episodes"],
            hidden_dim=WOODBLOCK_OPTS["hidden_dim"],
            seed=WOODBLOCK_OPTS["seed"],
        ),
    )
    tree = agent.train().best_tree
    bids = tree.freeze(table)
    store = BlockStore.from_assignment(
        table, bids, descriptions=tree.leaf_descriptions()
    )
    return store, tree


def legacy_partitioner(partitioner):
    def build(schema, table, workload, registry):
        return (
            BlockStore.from_assignment(table, partitioner(table).partition(table)),
            None,
        )

    return build


#: strategy name -> (facade build options, legacy builder).
LEGACY = {
    "greedy": ({}, legacy_greedy),
    "woodblock": (dict(WOODBLOCK_OPTS), legacy_woodblock),
    "kdtree": (
        {},
        legacy_partitioner(
            lambda t: KdTreePartitioner(
                columns=("x", "y"), min_block_size=BLOCK
            )
        ),
    ),
    "hash": (
        {},
        legacy_partitioner(
            lambda t: HashPartitioner(
                columns=("x", "y"),
                num_blocks=int(np.ceil(t.num_rows / BLOCK)),
            )
        ),
    ),
    "range": (
        {},
        legacy_partitioner(
            lambda t: RangePartitioner(column="x", block_size=BLOCK)
        ),
    ),
    "random": (
        {"seed": 0},
        legacy_partitioner(
            lambda t: RandomPartitioner(block_size=BLOCK, seed=0)
        ),
    ),
}


def legacy_bottom_up_builder(schema, table, workload, registry):
    partitioner = BottomUpPartitioner(
        registry, workload, BottomUpConfig(min_block_size=BLOCK)
    )
    return BlockStore.from_assignment(table, partitioner.partition(table)), None


LEGACY["bottom_up"] = ({}, legacy_bottom_up_builder)


def test_every_registered_strategy_has_a_parity_case():
    assert set(LEGACY) == set(strategy_names()), (
        "a strategy was (de)registered without updating the parity map"
    )


@pytest.mark.parametrize("strategy", sorted(LEGACY))
def test_facade_build_matches_legacy_entry_point(strategy, schema, table):
    options, legacy_builder = LEGACY[strategy]

    db = Database.from_table(table, min_block_size=BLOCK)
    handle = db.build_layout(strategy, workload=STATEMENTS, **options)

    workload = db.planner.plan_workload(STATEMENTS)
    registry = db.planner.candidate_cuts(workload)
    legacy_store, legacy_tree = legacy_builder(
        schema, table, workload, registry
    )

    assert handle.store.num_blocks == legacy_store.num_blocks
    queries = list(workload)
    facade_keys = result_keys(
        handle.store, handle.tree, queries, handle.num_advanced_cuts
    )
    legacy_keys = result_keys(
        legacy_store, legacy_tree, queries, registry.num_advanced_cuts
    )
    assert facade_keys == legacy_keys
    # Stronger than counts: the facade's execute() agrees row-for-row
    # with an engine scan over the legacy store.
    legacy_engine = ScanEngine(
        legacy_store, num_advanced_cuts=registry.num_advanced_cuts
    )
    for sql, query in zip(STATEMENTS, queries):
        facade_rows = db.collect_row_ids(sql)
        legacy_rows = legacy_engine.collect_row_ids(query)
        np.testing.assert_array_equal(facade_rows, legacy_rows)


# ----------------------------------------------------------------------
# 2. The generation-keyed result cache
# ----------------------------------------------------------------------


class TestResultCacheDifferential:
    def test_replay_bit_identical_with_repeat_speedup(self, schema):
        table = make_table(schema, 30_000, seed=2)
        db = Database.from_table(table, min_block_size=1000)
        handle = db.build_layout("greedy", workload=STATEMENTS)
        repeat = 25

        # Ground truth: the pre-serving serial uncached path.
        _, serial_stats = run_serial_baseline(
            handle.store,
            handle.tree,
            STATEMENTS,
            repeat=1,
            planner=db.planner,
            num_advanced_cuts=handle.num_advanced_cuts,
        )
        truth = [s.result_key() for s in serial_stats]

        # Cached vs uncached replay, otherwise identical single-worker
        # services (single worker: the delta is avoided scan work, not
        # parallelism, so this holds on a one-core box).
        cache = ResultCache()
        with db.serve(max_workers=1, result_cache=cache) as service:
            cached = service.run_closed_loop(STATEMENTS, repeat=repeat)
        with db.serve(max_workers=1, result_cache=False) as service:
            uncached = service.run_closed_loop(STATEMENTS, repeat=repeat)

        # Bit-identical: every replayed result (first pass AND every
        # cached repeat) matches serial ground truth.
        for replay in (cached, uncached):
            for i, result in enumerate(replay.results):
                assert (
                    result.stats.result_key() == truth[i % len(STATEMENTS)]
                )
        # The repeats were really served from the cache...
        stats = cache.stats()
        assert stats.entries == len(STATEMENTS)
        assert stats.hits == (repeat - 1) * len(STATEMENTS)
        assert stats.tuples_avoided > 0
        # ...which buys a >= 1x repeat-query speedup on the replay.
        speedup = uncached.wall_seconds / cached.wall_seconds
        assert speedup >= 1.0, f"cached replay slower: {speedup:.2f}x"

    def test_sharded_replay_bit_identical_through_cache(self, schema):
        table = make_table(schema, 8_000, seed=3)
        db = Database.from_table(table, min_block_size=400)
        db.build_layout("greedy", workload=STATEMENTS)
        with db.serve(
            shards=2, partition="subtree", max_workers=1
        ) as service:
            replay = service.run_closed_loop(STATEMENTS, repeat=4)
        with db.serve(result_cache=False) as ref:
            expected = [
                ref.execute_sql(sql).stats.result_key() for sql in STATEMENTS
            ]
        for i, result in enumerate(replay.results):
            assert result.stats.result_key() == expected[i % len(STATEMENTS)]
        assert db.result_cache.stats().hits > 0

    def test_zero_stale_results_across_swap_layout(self, schema):
        table = make_table(schema, 6_000, seed=4)
        db = Database.from_table(table, min_block_size=300)
        greedy = db.build_layout("greedy", workload=STATEMENTS)
        other = db.build_layout(
            "range", column="x", activate=False
        )

        with db.serve(max_workers=2) as service:
            before = service.run_closed_loop(STATEMENTS, repeat=3)
        assert db.result_cache.stats().entries == len(STATEMENTS)

        db.swap_layout(other)
        # Old-generation entries are purged AND unreachable.
        assert db.result_cache.generations() in ((), (other.generation,))
        with db.serve(max_workers=2) as service:
            after = service.run_closed_loop(STATEMENTS, repeat=3)

        # Fresh uncached truth on the swapped-in layout.
        _, truth_stats = run_serial_baseline(
            other.store,
            other.tree,
            STATEMENTS,
            repeat=1,
            planner=db.planner,
            num_advanced_cuts=other.num_advanced_cuts,
        )
        truth = [s.result_key() for s in truth_stats]
        for i, result in enumerate(after.results):
            key = result.stats.result_key()
            assert key == truth[i % len(STATEMENTS)]
        # The layouts genuinely differ, so serving a stale entry would
        # have been visible in blocks_considered/blocks_scanned.
        assert any(
            a.stats.result_key() != b.stats.result_key()
            for a, b in zip(before.results, after.results)
        )
        # And swapping back serves gen-1-correct results again.
        db.swap_layout(greedy)
        for i, sql in enumerate(STATEMENTS):
            assert (
                db.execute(sql).stats.result_key()
                == before.results[i].stats.result_key()
            )

    def test_concurrent_swaps_never_serve_a_stale_generation(self, schema):
        """Hot queries racing background swap_layout calls.

        The adapt loop swaps generations from a rebuild thread while
        worker threads are mid-pipeline.  The invariant under that
        race: every result is bit-correct *for the generation that
        answered it* (``ServeResult.generation``), no matter how the
        swap interleaved — i.e. a swap can purge and re-point the
        cache but can never surface a result that belongs to no
        generation or to the wrong one.

        Lock ordering under test: ``Database._lock`` (swap) →
        ``ResultCache._lock`` (retain), while the query path takes
        only the cache lock — so the hammer also proves the ordering
        cannot deadlock.
        """
        table = make_table(schema, 6_000, seed=7)
        db = Database.from_table(table, min_block_size=300)
        greedy = db.build_layout("greedy", workload=STATEMENTS)
        by_x = db.build_layout("range", column="x", activate=False)
        by_y = db.build_layout("range", column="y", activate=False)

        # Ground truth per generation, computed before the race.
        truth = {}
        for handle in (greedy, by_x, by_y):
            _, stats = run_serial_baseline(
                handle.store,
                handle.tree,
                STATEMENTS,
                repeat=1,
                planner=db.planner,
                num_advanced_cuts=handle.num_advanced_cuts,
            )
            truth[handle.generation] = {
                sql: s.result_key() for sql, s in zip(STATEMENTS, stats)
            }

        stop = threading.Event()
        errors = []
        checked = 0

        def hammer():
            nonlocal checked
            i = 0
            while not stop.is_set():
                sql = STATEMENTS[i % len(STATEMENTS)]
                i += 1
                result = db.execute(sql)
                expected = truth[result.generation][sql]
                if result.stats.result_key() != expected:
                    errors.append(
                        (result.generation, sql, result.stats.result_key())
                    )
                checked += 1

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        # The swapper thread is this test: cycle the generations hard.
        for _ in range(60):
            for handle in (by_x, by_y, greedy):
                db.swap_layout(handle)
        stop.set()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive(), "hammer thread hung (deadlock?)"

        assert not errors, f"stale/corrupt results under swap race: {errors[:3]}"
        assert checked > 0
        # After the dust settles the cache holds at most the active
        # generation's entries (late put-backs of raced generations
        # are allowed transiently but must be purged by the next
        # retain — do one more swap to flush, then check).
        db.swap_layout(greedy)
        assert db.result_cache.generations() in ((), (greedy.generation,))
        # And the served results on the final generation are fresh.
        for sql in STATEMENTS:
            assert (
                db.execute(sql).stats.result_key()
                == truth[greedy.generation][sql]
            )

    def test_zero_stale_results_across_ingest(self, schema):
        table = make_table(schema, 5_000, seed=5)
        db = Database.from_table(table, min_block_size=250)
        db.build_layout("greedy", workload=STATEMENTS)
        first = db.execute(STATEMENTS[0])
        assert db.result_cache.stats().entries == 1

        batch = make_table(schema, 2_000, seed=6)
        db.ingest(batch)
        assert db.result_cache.generations() in (
            (),
            (db.generation,),
        )
        expected = int((db.table.column("x") < 20).sum())
        again = db.execute(STATEMENTS[0])
        assert again.stats.rows_returned == expected
        assert again.stats.rows_returned > first.stats.rows_returned
        # Serving tier sees the new generation too.
        with db.serve(max_workers=2) as service:
            served = service.execute_sql(STATEMENTS[0])
        assert served.stats.result_key() == again.stats.result_key()
