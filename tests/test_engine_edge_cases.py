"""Additional engine edge cases: advanced cuts, routed supersets,
profile interactions."""

import numpy as np
import pytest

from repro.core import (
    AdvancedCut,
    Query,
    column_ge,
    column_lt,
    conjunction,
)
from repro.engine import COMMERCIAL_DBMS, SPARK_PARQUET, ScanEngine
from repro.storage import BlockStore, Schema, Table, numeric


@pytest.fixture
def ac_setup():
    """Two-column table where an advanced cut discriminates."""
    rng = np.random.default_rng(0)
    schema = Schema([numeric("a", (0.0, 100.0)), numeric("b", (0.0, 100.0))])
    table = Table(
        schema,
        {"a": rng.uniform(0, 100, 4000), "b": rng.uniform(0, 100, 4000)},
    )
    cut = AdvancedCut("a < b", 0, lambda c: c["a"] < c["b"], ("a", "b"))
    return schema, table, cut


class TestAdvancedCutExecution:
    def test_min_max_cannot_prune_advanced_cut(self, ac_setup):
        """SMA metadata carries no AC information: no skipping."""
        schema, table, cut = ac_setup
        bids = (table.column("a") >= 50).astype(np.int64)
        store = BlockStore.from_assignment(table, bids)
        engine = ScanEngine(store, SPARK_PARQUET, num_advanced_cuts=1)
        stats = engine.execute(Query(cut, name="ac"))
        assert stats.blocks_scanned == store.num_blocks

    def test_qdtree_routing_prunes_advanced_cut(self, ac_setup):
        """Tree descriptions track AC bits, so routing can prune."""
        from repro.core import CutRegistry, QdTree, QueryRouter

        schema, table, cut = ac_setup
        registry = CutRegistry(schema, [cut])
        tree = QdTree(schema, registry)
        tree.apply_cut(tree.root, cut)
        tree.assign_block_ids()
        router = QueryRouter(tree)
        routed = router.route(Query(cut, name="ac"))
        assert len(routed.block_ids) == 1

    def test_ac_results_correct_either_path(self, ac_setup):
        schema, table, cut = ac_setup
        bids = (table.column("a") >= 50).astype(np.int64)
        store = BlockStore.from_assignment(table, bids)
        engine = ScanEngine(store, SPARK_PARQUET, num_advanced_cuts=1)
        expected = int((table.column("a") < table.column("b")).sum())
        assert engine.execute(Query(cut, name="ac")).rows_returned == expected


class TestRoutedSupersets:
    def test_routed_bids_beyond_store_ignored(self, mixed_table, mixed_workload):
        bids = np.arange(mixed_table.num_rows) % 3
        store = BlockStore.from_assignment(mixed_table, bids)
        engine = ScanEngine(store, SPARK_PARQUET)
        stats = engine.execute(mixed_workload[0], block_ids=[0, 1, 2, 99])
        assert stats.blocks_scanned <= 3

    def test_empty_routed_list_scans_nothing(self, mixed_table, mixed_workload):
        bids = np.zeros(mixed_table.num_rows, dtype=np.int64)
        store = BlockStore.from_assignment(mixed_table, bids)
        engine = ScanEngine(store, SPARK_PARQUET)
        stats = engine.execute(mixed_workload[0], block_ids=[])
        assert stats.blocks_scanned == 0
        assert stats.rows_returned == 0


class TestProfileInteraction:
    def test_dbms_slower_per_column_but_cheaper_open(self, mixed_table):
        bids = np.arange(mixed_table.num_rows) % 4
        store = BlockStore.from_assignment(mixed_table, bids)
        q = Query(
            conjunction([column_ge("age", 0), column_lt("age", 200)]),
            name="full",
            columns=("age",),
        )
        parquet = ScanEngine(store, SPARK_PARQUET).execute(q)
        dbms = ScanEngine(store, COMMERCIAL_DBMS).execute(q)
        # Row store reads all 4 columns; parquet just 1.
        assert dbms.columns_read == 4
        assert parquet.columns_read == 1

    def test_modeled_cost_increases_with_columns(self, mixed_table):
        bids = np.zeros(mixed_table.num_rows, dtype=np.int64)
        store = BlockStore.from_assignment(mixed_table, bids)
        engine = ScanEngine(store, SPARK_PARQUET)
        narrow = engine.execute(
            Query(column_ge("age", 0), name="n", columns=("age",))
        )
        wide = engine.execute(
            Query(
                column_ge("age", 0),
                name="w",
                columns=("age", "salary", "city", "level"),
            )
        )
        assert wide.modeled_ms > narrow.modeled_ms
