"""Tests for Bottom-Up group chunking (max_block_size)."""

import numpy as np
import pytest

from repro.baselines import BottomUpConfig, BottomUpPartitioner
from repro.baselines.bottom_up import _split_large_groups
from repro.core import CutRegistry


class TestSplitLargeGroups:
    def test_splits_to_cap(self):
        bids = np.zeros(10, dtype=np.int64)
        out = _split_large_groups(bids, max_block_size=3)
        _, counts = np.unique(out, return_counts=True)
        assert counts.max() <= 3
        assert counts.sum() == 10

    def test_preserves_group_boundaries(self):
        bids = np.array([0, 0, 0, 1, 1, 1], dtype=np.int64)
        out = _split_large_groups(bids, max_block_size=2)
        # Rows of different logical groups never share a physical block.
        for block in np.unique(out):
            rows = np.flatnonzero(out == block)
            assert len(np.unique(bids[rows])) == 1

    def test_dense_bids(self):
        bids = np.array([5, 5, 9, 9, 9], dtype=np.int64)
        out = _split_large_groups(bids, max_block_size=2)
        assert set(np.unique(out)) == set(range(out.max() + 1))

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            _split_large_groups(np.zeros(3, dtype=np.int64), 0)

    def test_noop_when_under_cap(self):
        bids = np.array([0, 1, 2], dtype=np.int64)
        out = _split_large_groups(bids, max_block_size=10)
        assert len(np.unique(out)) == 3


class TestPartitionerChunking:
    def test_max_block_size_enforced(
        self, mixed_schema, mixed_table, mixed_workload
    ):
        registry = CutRegistry.from_workload(mixed_schema, mixed_workload)
        part = BottomUpPartitioner(
            registry,
            mixed_workload,
            BottomUpConfig(min_block_size=100, max_block_size=150),
        )
        bids = part.partition(mixed_table)
        _, counts = np.unique(bids, return_counts=True)
        assert counts.max() <= 150

    def test_chunking_increases_block_count(
        self, mixed_schema, mixed_table, mixed_workload
    ):
        registry = CutRegistry.from_workload(mixed_schema, mixed_workload)
        plain = BottomUpPartitioner(
            registry, mixed_workload, BottomUpConfig(min_block_size=100)
        ).partition(mixed_table)
        chunked = BottomUpPartitioner(
            registry,
            mixed_workload,
            BottomUpConfig(min_block_size=100, max_block_size=120),
        ).partition(mixed_table)
        assert len(np.unique(chunked)) >= len(np.unique(plain))

    def test_chunking_preserves_skipping(
        self, mixed_schema, mixed_table, mixed_workload
    ):
        """Splitting a group cannot reduce skipping (min-max indexes of
        sub-blocks are at least as tight)."""
        from repro.engine import SPARK_PARQUET, ScanEngine, WorkloadReport
        from repro.storage import BlockStore

        registry = CutRegistry.from_workload(mixed_schema, mixed_workload)

        def scanned(bids):
            store = BlockStore.from_assignment(mixed_table, bids)
            engine = ScanEngine(store, SPARK_PARQUET)
            report = WorkloadReport(
                "x", engine.execute_workload(mixed_workload)
            )
            return report.total_tuples_scanned

        plain = BottomUpPartitioner(
            registry, mixed_workload, BottomUpConfig(min_block_size=100)
        ).partition(mixed_table)
        chunked = BottomUpPartitioner(
            registry,
            mixed_workload,
            BottomUpConfig(min_block_size=100, max_block_size=120),
        ).partition(mixed_table)
        assert scanned(chunked) <= scanned(plain)
