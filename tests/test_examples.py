"""Smoke tests: the example scripts run end to end.

The heavyweight examples are exercised with reduced arguments so the
whole file stays fast; their full-size defaults are covered by the
benchmark suite.
"""

import runpy
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv=()):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_custom_workload_example(capsys):
    run_example("custom_workload.py")
    out = capsys.readouterr().out
    assert "candidate" in out
    assert "reloaded" in out


def test_overlap_replication_example(capsys):
    run_example("overlap_replication.py")
    out = capsys.readouterr().out
    assert "Part 1" in out and "Part 2" in out
    assert "replicated rows" in out


def test_tpch_layout_example_small(capsys):
    run_example(
        "tpch_layout.py",
        ["--rows", "8000", "--episodes", "5", "--seeds-per-template", "2"],
    )
    out = capsys.readouterr().out
    assert "TPC-H layouts" in out
    assert "woodblock" in out


def test_serving_demo_example_small(capsys):
    run_example(
        "serving_demo.py",
        ["--rows", "10000", "--threads", "4", "--repeat", "5"],
    )
    out = capsys.readouterr().out
    assert "serial uncached baseline" in out
    assert "speedup" in out
    assert "cache hit rate" in out


def test_errorlog_skipping_example_small(capsys):
    run_example(
        "errorlog_skipping.py",
        ["--rows", "8000", "--queries", "60", "--episodes", "5"],
    )
    out = capsys.readouterr().out
    assert "ErrorLog-Int layouts" in out


def test_continuous_ingestion_example_small(capsys):
    run_example(
        "continuous_ingestion.py",
        ["--rows", "8000", "--batch", "1500", "--queries", "60"],
    )
    out = capsys.readouterr().out
    assert "learned layout (gen 1)" in out
    assert "stale results impossible" in out
    assert "re-learning advised" in out


def test_multi_layout_serving_example_small(capsys):
    run_example(
        "multi_layout_serving.py",
        ["--rows", "12000", "--repeat", "2"],
    )
    out = capsys.readouterr().out
    assert "cost-arbitrated multi-layout" in out
    assert "layout wins" in out
    assert "winner" in out


def test_adaptive_serving_example_small(capsys):
    run_example(
        "adaptive_serving.py",
        ["--rows", "12000", "--repeat", "10"],
    )
    out = capsys.readouterr().out
    assert "frozen layout" in out
    assert "drift detected" in out
    assert "adaptation event [swap]" in out
    assert "avoided work" in out


def test_quickstart_example_small(capsys):
    run_example(
        "quickstart.py",
        ["--rows", "8000", "--episodes", "5", "--repeat", "5"],
    )
    out = capsys.readouterr().out
    assert "Woodblock" in out
    assert "registered strategies" in out
    assert "result cache" in out
