"""Trace-integrity tests: every admitted query leaves exactly one
trace, spans reconcile with ``QueryStats``/``MetricsSnapshot``, the
accounting holds under an 8-thread hammer and across a generation
hot-swap, and tracing-off runs stay bit-identical."""

import json

import numpy as np
import pytest

from repro.adapt import AdaptPolicy
from repro.db import Database
from repro.obs import Tracer
from repro.storage import Schema, Table, categorical, numeric

X_SQL = [
    f"SELECT x FROM t WHERE x >= {lo} AND x < {lo + 5}"
    for lo in (5, 20, 35, 50, 65, 80)
]
Y_SQL = [
    f"SELECT y FROM t WHERE y >= {lo:.2f} AND y < {lo + 0.05:.2f}"
    for lo in (0.05, 0.20, 0.35, 0.50, 0.65, 0.80)
]


@pytest.fixture(scope="module")
def schema():
    return Schema(
        [
            numeric("x", (0.0, 100.0)),
            numeric("y", (0.0, 1.0)),
            categorical("kind", ["a", "b", "c"]),
        ]
    )


def make_db(schema, rows=8_000, seed=0, block=500):
    rng = np.random.default_rng(seed)
    table = Table(
        schema,
        {
            "x": rng.uniform(0, 100, rows),
            "y": rng.uniform(0, 1, rows),
            "kind": rng.integers(0, 3, rows),
        },
    )
    return Database.from_table(table, min_block_size=block)


def _uncached(traces):
    return [t for t in traces if not t.attrs["cached"]]


# ----------------------------------------------------------------------
# One trace per admitted query, spans reconcile with stats
# ----------------------------------------------------------------------


class TestTraceIntegrity:
    def test_one_trace_per_query_with_full_span_set(self, schema):
        db = make_db(schema)
        db.build_layout("greedy", workload=X_SQL)
        tracer = Tracer()
        with db.serve(tracer=tracer) as svc:
            replay = svc.run_closed_loop(X_SQL, repeat=3)
        traces = tracer.query_traces()
        assert len(traces) == replay.issued == 18
        assert len({t.trace_id for t in traces}) == len(traces)
        for trace in traces:
            names = [s.name for s in trace.spans]
            for required in ("queue", "plan", "route", "result_cache",
                            "prune", "merge"):
                assert required in names, (trace.trace_id, names)
            # Cached hits short-circuit before the scan stage runs
            # real work, but the span still exists (zero-ish time).
            assert "scan" in names

    def test_trace_attrs_reconcile_with_snapshot(self, schema):
        """Trace-level counters sum to the window snapshot exactly:
        scan work over uncached traces, rows over all traces."""
        db = make_db(schema)
        db.build_layout("greedy", workload=X_SQL)
        tracer = Tracer()
        with db.serve(tracer=tracer) as svc:
            replay = svc.run_closed_loop(X_SQL, repeat=4)
        traces = tracer.query_traces()
        snap = replay.snapshot
        assert snap.queries == len(traces)
        assert snap.blocks_scanned == sum(
            t.attrs["blocks_scanned"] for t in _uncached(traces)
        )
        assert snap.tuples_scanned == sum(
            t.attrs["tuples_scanned"] for t in _uncached(traces)
        )
        assert snap.rows_returned == sum(
            t.attrs["rows_returned"] for t in traces
        )

    def test_trace_matches_serve_result_stats(self, schema):
        db = make_db(schema)
        db.build_layout("greedy", workload=X_SQL)
        tracer = Tracer()
        with db.serve(tracer=tracer, result_cache=False) as svc:
            result = svc.execute_sql(X_SQL[0])
        (trace,) = tracer.query_traces()
        assert trace.name == X_SQL[0]
        assert trace.attrs["blocks_scanned"] == result.stats.blocks_scanned
        assert trace.attrs["rows_returned"] == result.stats.rows_returned
        assert trace.attrs["generation"] == result.generation
        assert trace.attrs["latency_seconds"] == pytest.approx(
            result.latency_seconds
        )

    def test_sharded_child_spans_sum_to_merged_stats(self, schema):
        db = make_db(schema)
        db.build_layout("greedy", workload=X_SQL)
        tracer = Tracer()
        with db.serve(shards=2, tracer=tracer) as svc:
            svc.run_closed_loop(X_SQL, repeat=2)
        for trace in _uncached(tracer.query_traces()):
            children = trace.child_spans("scatter_scan")
            assert children, trace.trace_id
            for field in ("blocks_scanned", "tuples_scanned",
                          "bytes_read", "rows_returned"):
                assert trace.attrs[field] == sum(
                    c.attrs[field] for c in children
                ), (trace.trace_id, field)

    def test_multi_layout_trace_names_the_winner(self, schema):
        db = make_db(schema)
        db.build_layout("range", column="x", label="by-x")
        db.build_layout("range", column="y", label="by-y", activate=False)
        tracer = Tracer()
        with db.serve_multi(tracer=tracer) as svc:
            replay = svc.run_closed_loop(X_SQL + Y_SQL, repeat=2)
        traces = tracer.query_traces()
        assert len(traces) == replay.issued
        for trace in traces:
            arb = trace.span("arbitrate")
            assert arb is not None
            assert arb.attrs["winner"] == trace.attrs["winner"]
            assert trace.attrs["winner"] in ("by-x", "by-y")
        # Trace totals reconcile with the snapshot in the arbitrated
        # topology too.
        snap = replay.snapshot
        assert snap.blocks_scanned == sum(
            t.attrs["blocks_scanned"] for t in _uncached(traces)
        )
        assert snap.rows_returned == sum(
            t.attrs["rows_returned"] for t in traces
        )
        assert dict(snap.layout_wins)

    def test_eight_thread_hammer_loses_nothing(self, schema):
        db = make_db(schema)
        db.build_layout("greedy", workload=X_SQL)
        tracer = Tracer()
        with db.serve(max_workers=8, tracer=tracer) as svc:
            replay = svc.run_closed_loop(X_SQL + Y_SQL, repeat=8)
        traces = tracer.query_traces()
        assert len(traces) == replay.issued == 96
        assert len({t.trace_id for t in traces}) == 96
        assert tracer.dropped == 0
        snap = replay.snapshot
        assert snap.blocks_scanned == sum(
            t.attrs["blocks_scanned"] for t in _uncached(traces)
        )

    def test_ring_capacity_drops_oldest_but_counts(self, schema):
        db = make_db(schema, rows=2_000)
        db.build_layout("greedy", workload=X_SQL)
        tracer = Tracer(capacity=4)
        with db.serve(tracer=tracer) as svc:
            svc.run_closed_loop(X_SQL, repeat=2)  # 12 queries
        assert len(tracer.query_traces()) == 4
        assert tracer.finished == 12
        assert tracer.dropped == 8


# ----------------------------------------------------------------------
# Generation hot-swap: queries and control plane share a timeline
# ----------------------------------------------------------------------


class TestAdaptTracing:
    @pytest.mark.adapt
    def test_traces_survive_generation_hot_swap(self, schema):
        policy = AdaptPolicy(
            log_capacity=1024,
            window=60,
            threshold=0.4,
            min_records=24,
            check_every=6,
            min_improvement=0.1,
            strategy="greedy",
        )
        db = make_db(schema, rows=16_000, seed=3)
        frozen = db.build_layout("greedy", workload=X_SQL)
        tracer = Tracer()
        with db.auto_adapt(policy=policy, tracer=tracer) as service:
            service.run_closed_loop(X_SQL, repeat=4)
            service.run_closed_loop(Y_SQL, repeat=12)
            service.join_adaptation(timeout=120)
            swapped = service.generation != frozen.generation
            final = service.run_closed_loop(Y_SQL, repeat=1)

        assert swapped, "drifted workload should have triggered a swap"
        assert final.completed == len(Y_SQL)
        controls = {t.name for t in tracer.control_traces()}
        assert {"drift_check", "rebuild", "generation_swap"} <= controls
        # The swap trace carries the generation it installed.
        swap = [
            t for t in tracer.control_traces()
            if t.name == "generation_swap"
        ][-1]
        assert swap.attrs["generation"] == service.generation
        # Query traces exist from BOTH generations — the tracer
        # followed the facade across the hot-swap.
        generations = {
            t.attrs["generation"] for t in tracer.query_traces()
        }
        assert {frozen.generation, service.generation} <= generations
        # Every drift check recorded a drifted verdict and a score.
        for t in tracer.control_traces():
            if t.name == "drift_check":
                assert "drifted" in t.attrs and "score" in t.attrs


# ----------------------------------------------------------------------
# stage_seconds accounting (satellite: no stage unaccounted)
# ----------------------------------------------------------------------


class TestStageSeconds:
    def test_every_stage_and_queue_appear_and_sum_to_latency(self, schema):
        db = make_db(schema)
        db.build_layout("greedy", workload=X_SQL)
        with db.serve() as svc:
            replay = svc.run_closed_loop(X_SQL, repeat=2)
        for result in replay.results:
            ss = result.stage_seconds
            for key in ("queue", "plan", "route", "result_cache",
                        "prune", "scan", "merge"):
                assert key in ss, (result.sql, sorted(ss))
            undotted = sum(
                v for k, v in ss.items() if "." not in k
            )
            # The undotted keys account (almost) all of the latency:
            # only loop overhead between stages is unattributed.
            assert undotted <= result.latency_seconds + 1e-9
            assert undotted >= 0.5 * result.latency_seconds

    def test_sharded_scan_carries_per_shard_attribution(self, schema):
        db = make_db(schema)
        db.build_layout("greedy", workload=X_SQL)
        with db.serve(shards=2, result_cache=False) as svc:
            replay = svc.run_closed_loop(X_SQL, repeat=1)
        shard_keys = set()
        for result in replay.results:
            keys = {k for k in result.stage_seconds if k.startswith("scan.shard")}
            shard_keys |= keys
            # Dotted keys are sub-attributions of "scan", not extra
            # stages: each is bounded by total wall time.
            for k in keys:
                assert result.stage_seconds[k] >= 0.0
        assert shard_keys, "sharded replay never attributed a shard scan"

    def test_results_bit_identical_with_and_without_tracer(self, schema):
        db = make_db(schema)
        db.build_layout("greedy", workload=X_SQL)
        with db.serve(result_cache=False) as svc:
            plain_keys = sorted(
                r.stats.result_key()
                for r in svc.run_closed_loop(X_SQL, repeat=2).results
            )
        with db.serve(result_cache=False, tracer=Tracer()) as svc:
            traced_keys = sorted(
                r.stats.result_key()
                for r in svc.run_closed_loop(X_SQL, repeat=2).results
            )
        assert plain_keys == traced_keys


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------


class TestExports:
    def test_jsonl_lines_parse_and_round_trip(self, schema, tmp_path):
        db = make_db(schema)
        db.build_layout("greedy", workload=X_SQL)
        tracer = Tracer()
        with db.serve(tracer=tracer) as svc:
            svc.run_closed_loop(X_SQL, repeat=1)
        path = tmp_path / "run.jsonl"
        count = tracer.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == len(tracer.query_traces())
        for line in lines:
            doc = json.loads(line)
            assert doc["kind"] == "query"
            assert doc["trace_id"].startswith("q")
            assert {s["name"] for s in doc["spans"]} >= {"plan", "merge"}

    def test_chrome_trace_is_perfetto_shaped(self, schema, tmp_path):
        db = make_db(schema)
        db.build_layout("greedy", workload=X_SQL)
        tracer = Tracer()
        policy = AdaptPolicy(
            window=8, threshold=0.99, min_records=4, check_every=2
        )
        with db.auto_adapt(policy=policy, tracer=tracer) as svc:
            svc.run_closed_loop(X_SQL, repeat=2)
        assert tracer.control_traces(), "no drift check ever fired"
        path = tmp_path / "run.trace.json"
        count = tracer.write_chrome_trace(path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert len(events) == count > 0
        assert doc["metadata"]["exported_unix"] > 0
        pids = {e["pid"] for e in events}
        assert 1 in pids  # query lanes
        assert 2 in pids  # control plane (drift checks ran)
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert isinstance(event["tid"], int)
