"""Unit tests for repro.core.cost (the skipping model)."""

import pytest

from repro.core import (
    CutRegistry,
    QdTree,
    Query,
    Workload,
    column_ge,
    column_lt,
    leaf_sizes,
    per_query_accessed,
    scan_ratio,
    skipped_tuples,
    subtree_skips,
    tuples_accessed,
)
from repro.core.cost import access_percentage, sample_leaf_sizes


@pytest.fixture
def cut_tree(mixed_schema, mixed_table):
    reg = CutRegistry(mixed_schema)
    reg.add(column_lt("age", 40))
    tree = QdTree(mixed_schema, reg)
    tree.attach_sample(mixed_table)
    tree.apply_cut(tree.root, column_lt("age", 40))
    tree.assign_block_ids()
    return tree


@pytest.fixture
def age_workload():
    return Workload(
        [
            Query(column_lt("age", 20), name="young"),
            Query(column_ge("age", 70), name="old"),
        ]
    )


class TestLeafSizes:
    def test_sizes_sum_to_rows(self, cut_tree, mixed_table):
        sizes = leaf_sizes(cut_tree, mixed_table)
        assert sum(sizes.values()) == mixed_table.num_rows

    def test_every_leaf_present(self, cut_tree, mixed_table):
        sizes = leaf_sizes(cut_tree, mixed_table)
        assert set(sizes) == {l.node_id for l in cut_tree.leaves()}

    def test_sample_leaf_sizes(self, cut_tree):
        sizes = sample_leaf_sizes(cut_tree)
        assert sum(sizes.values()) == 2000

    def test_sample_leaf_sizes_without_sample_raises(self, mixed_schema):
        tree = QdTree(mixed_schema)
        with pytest.raises(ValueError):
            sample_leaf_sizes(tree)


class TestAccessMetrics:
    def test_per_query_accessed_prunes(self, cut_tree, mixed_table, age_workload):
        sizes = leaf_sizes(cut_tree, mixed_table)
        accessed = per_query_accessed(cut_tree, age_workload, sizes)
        young_leaf = cut_tree.root.left.node_id
        old_leaf = cut_tree.root.right.node_id
        assert accessed[0] == sizes[young_leaf]
        assert accessed[1] == sizes[old_leaf]

    def test_totals_consistent(self, cut_tree, mixed_table, age_workload):
        sizes = leaf_sizes(cut_tree, mixed_table)
        accessed = tuples_accessed(cut_tree, age_workload, sizes)
        skipped = skipped_tuples(cut_tree, age_workload, sizes)
        assert accessed + skipped == mixed_table.num_rows * len(age_workload)

    def test_scan_ratio_bounds(self, cut_tree, mixed_table, age_workload):
        sizes = leaf_sizes(cut_tree, mixed_table)
        ratio = scan_ratio(cut_tree, age_workload, sizes)
        assert 0.0 < ratio < 1.0

    def test_scan_ratio_lower_bounded_by_selectivity(
        self, cut_tree, mixed_table, age_workload
    ):
        sizes = leaf_sizes(cut_tree, mixed_table)
        ratio = scan_ratio(cut_tree, age_workload, sizes)
        assert ratio >= age_workload.selectivity(mixed_table) - 1e-12

    def test_singleton_tree_scans_everything(
        self, mixed_schema, mixed_table, age_workload
    ):
        tree = QdTree(mixed_schema)
        tree.assign_block_ids()
        sizes = leaf_sizes(tree, mixed_table)
        assert scan_ratio(tree, age_workload, sizes) == 1.0

    def test_access_percentage(self, cut_tree, mixed_table, age_workload):
        pct = access_percentage(cut_tree, age_workload, mixed_table)
        sizes = leaf_sizes(cut_tree, mixed_table)
        assert pct == pytest.approx(
            100 * scan_ratio(cut_tree, age_workload, sizes)
        )

    def test_empty_workload_ratio_zero(self, cut_tree, mixed_table):
        sizes = leaf_sizes(cut_tree, mixed_table)
        assert scan_ratio(cut_tree, Workload([]), sizes) == 0.0


class TestSubtreeSkips:
    def test_root_equals_total_skips(self, cut_tree, mixed_table, age_workload):
        sizes = leaf_sizes(cut_tree, mixed_table)
        skips = subtree_skips(cut_tree, age_workload, sizes)
        assert skips[0] == skipped_tuples(cut_tree, age_workload, sizes)

    def test_internal_is_sum_of_children(self, cut_tree, age_workload):
        skips = subtree_skips(cut_tree, age_workload)
        root = cut_tree.root
        assert skips[root.node_id] == (
            skips[root.left.node_id] + skips[root.right.node_id]
        )

    def test_uses_sample_sizes_by_default(self, cut_tree, age_workload):
        skips = subtree_skips(cut_tree, age_workload)
        assert skips[0] > 0
