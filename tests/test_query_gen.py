"""Unit tests for repro.workloads.query_gen."""

import numpy as np
import pytest

from repro.workloads.query_gen import (
    QueryTemplate,
    anchored_query,
    generate_workload,
    random_in_query,
    random_range_query,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestRandomRangeQuery:
    def test_selectivity_roughly_respected(self, mixed_schema, mixed_table, rng):
        sels = []
        for _ in range(30):
            q = random_range_query(mixed_schema, "age", rng, selectivity=0.2)
            sels.append(q.predicate.evaluate(mixed_table.columns()).mean())
        assert 0.1 < np.mean(sels) < 0.3

    def test_requires_numeric_with_domain(self, mixed_schema, rng):
        with pytest.raises(ValueError):
            random_range_query(mixed_schema, "city", rng)

    def test_template_name(self, mixed_schema, rng):
        q = random_range_query(mixed_schema, "age", rng)
        assert q.template == "range-age"


class TestRandomInQuery:
    def test_in_values_within_domain(self, mixed_schema, rng):
        q = random_in_query(mixed_schema, "city", rng, num_values=2)
        assert all(0 <= v < 4 for v in q.predicate.values)

    def test_clamps_to_domain_size(self, mixed_schema, rng):
        q = random_in_query(mixed_schema, "level", rng, num_values=50)
        assert len(q.predicate.values) == 3

    def test_requires_categorical(self, mixed_schema, rng):
        with pytest.raises(ValueError):
            random_in_query(mixed_schema, "age", rng)


class TestAnchoredQuery:
    def test_always_nonempty(self, mixed_table, rng):
        for _ in range(20):
            q = anchored_query(mixed_table, ["age", "city"], rng)
            assert q.predicate.evaluate(mixed_table.columns()).sum() >= 1

    def test_needle_is_selective(self, mixed_table, rng):
        sels = []
        for _ in range(20):
            q = anchored_query(
                mixed_table, ["age", "salary", "city", "level"], rng,
                numeric_half_width=0.01,
            )
            sels.append(q.predicate.evaluate(mixed_table.columns()).mean())
        assert np.mean(sels) < 0.02

    def test_empty_table_raises(self, mixed_schema, rng):
        from repro.storage import Table

        with pytest.raises(ValueError):
            anchored_query(Table.empty(mixed_schema), ["age"], rng)


class TestTemplates:
    def test_generate_workload(self, mixed_schema):
        templates = [
            QueryTemplate(
                "ages",
                lambda rng: random_range_query(mixed_schema, "age", rng),
            ),
            QueryTemplate(
                "cities",
                lambda rng: random_in_query(mixed_schema, "city", rng),
            ),
        ]
        wl = generate_workload(templates, instances_per_template=4, seed=1)
        assert len(wl) == 8
        assert wl.templates() == ["ages", "cities"]
        names = [q.name for q in wl]
        assert "ages#0" in names and "cities#3" in names

    def test_seed_reproducible(self, mixed_schema):
        templates = [
            QueryTemplate(
                "ages",
                lambda rng: random_range_query(mixed_schema, "age", rng),
            )
        ]
        a = generate_workload(templates, 3, seed=5)
        b = generate_workload(templates, 3, seed=5)
        assert [repr(q.predicate) for q in a] == [repr(q.predicate) for q in b]
