"""Unit tests for repro.core.ingest (Problem 2: online ingestion)."""

import numpy as np
import pytest

from repro.core import (
    CutRegistry,
    GreedyConfig,
    IngestionPipeline,
    build_greedy_tree,
)
from repro.storage import Table


@pytest.fixture
def learned_tree(mixed_schema, mixed_table, mixed_workload):
    registry = CutRegistry.from_workload(mixed_schema, mixed_workload)
    tree = build_greedy_tree(
        mixed_schema, registry, mixed_table, mixed_workload, GreedyConfig(100)
    )
    tree.freeze(mixed_table)
    return tree


def fresh_batches(mixed_schema, seed, num_batches=4, rows=500):
    """Future data drawn from the same distribution (Problem 2's
    assumption)."""
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(num_batches):
        batches.append(
            Table(
                mixed_schema,
                {
                    "age": rng.integers(0, 100, rows).astype(float),
                    "salary": rng.uniform(0, 200_000, rows),
                    "city": rng.integers(0, 4, rows),
                    "level": rng.integers(0, 3, rows),
                },
            )
        )
    return batches


class TestIngestionPipeline:
    def test_routes_every_row(self, learned_tree, mixed_schema):
        pipeline = IngestionPipeline(learned_tree, segment_rows=300)
        total = 0
        for batch in fresh_batches(mixed_schema, seed=9):
            bids = pipeline.ingest(batch)
            assert len(bids) == batch.num_rows
            total += batch.num_rows
        assert pipeline.rows_ingested == total

    def test_finish_preserves_all_rows(self, learned_tree, mixed_schema):
        pipeline = IngestionPipeline(learned_tree, segment_rows=300)
        batches = fresh_batches(mixed_schema, seed=10)
        for batch in batches:
            pipeline.ingest(batch)
        store = pipeline.finish()
        assert store.stored_rows == sum(b.num_rows for b in batches)
        assert pipeline.buffered_rows() == 0

    def test_segments_respect_size(self, learned_tree, mixed_schema):
        pipeline = IngestionPipeline(learned_tree, segment_rows=200)
        for batch in fresh_batches(mixed_schema, seed=11):
            pipeline.ingest(batch)
        pipeline.finish()
        for info in pipeline.segments:
            assert info.num_rows <= 200

    def test_ingested_rows_match_tree_routing(
        self, learned_tree, mixed_schema
    ):
        """Online routing equals offline bulk routing."""
        pipeline = IngestionPipeline(learned_tree, segment_rows=10_000)
        batch = fresh_batches(mixed_schema, seed=12, num_batches=1)[0]
        online = pipeline.ingest(batch)
        offline = learned_tree.route_to_blocks(batch)
        np.testing.assert_array_equal(online, offline)

    def test_blocks_keep_completeness_on_future_data(
        self, learned_tree, mixed_schema
    ):
        """The learned partitioning function stays complete on unseen
        tuples from the same distribution (Problem 2)."""
        pipeline = IngestionPipeline(learned_tree, segment_rows=500)
        batches = fresh_batches(mixed_schema, seed=13)
        merged = batches[0]
        for batch in batches[1:]:
            merged = merged.concat(batch)
        for batch in batches:
            pipeline.ingest(batch)
        store = pipeline.finish()
        bids = learned_tree.route_to_blocks(merged)
        for block in store:
            stored = block.num_rows
            routed = int((bids == block.block_id).sum())
            assert stored == routed

    def test_throughput_positive(self, learned_tree, mixed_schema):
        pipeline = IngestionPipeline(learned_tree, segment_rows=300)
        pipeline.ingest(fresh_batches(mixed_schema, seed=14, num_batches=1)[0])
        assert pipeline.routing_throughput > 0

    def test_invalid_segment_rows(self, learned_tree):
        with pytest.raises(ValueError):
            IngestionPipeline(learned_tree, segment_rows=0)

    def test_layout_quality_holds_on_future_data(
        self, learned_tree, mixed_schema, mixed_workload, mixed_table
    ):
        """Skipping quality on future same-distribution data is close
        to quality on the training data (the paper's core Problem 2
        assumption)."""
        from repro.core import leaf_sizes, scan_ratio

        train_ratio = scan_ratio(
            learned_tree, mixed_workload, leaf_sizes(learned_tree, mixed_table)
        )
        future = fresh_batches(mixed_schema, seed=15, num_batches=1, rows=4000)[0]
        future_ratio = scan_ratio(
            learned_tree, mixed_workload, leaf_sizes(learned_tree, future)
        )
        assert abs(future_ratio - train_ratio) < 0.15
