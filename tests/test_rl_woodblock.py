"""Unit tests for repro.rl.woodblock (the deep-RL agent)."""

import numpy as np
import pytest

from repro.core import CutRegistry, leaf_sizes, scan_ratio
from repro.rl import Woodblock, WoodblockConfig
from repro.workloads import disjunctive_dataset


@pytest.fixture(scope="module")
def small_setup():
    ds = disjunctive_dataset(num_rows=10_000, seed=0)
    registry = ds.registry()
    return ds, registry


def make_agent(ds, registry, **overrides):
    defaults = dict(
        min_leaf_size=ds.min_block_size,
        episodes=10,
        hidden_dim=32,
        seed=0,
    )
    defaults.update(overrides)
    return Woodblock(
        ds.schema, registry, ds.table, ds.workload, WoodblockConfig(**defaults)
    )


class TestLegality:
    def test_root_has_legal_cuts(self, small_setup):
        ds, registry = small_setup
        agent = make_agent(ds, registry)
        mask = agent.legal_actions(np.arange(ds.table.num_rows))
        assert mask.any()

    def test_small_node_has_no_legal_cuts(self, small_setup):
        ds, registry = small_setup
        agent = make_agent(ds, registry)
        mask = agent.legal_actions(np.arange(5))
        assert not mask.any()

    def test_relaxed_mode_allows_small_children(self, small_setup):
        ds, registry = small_setup
        strict = make_agent(ds, registry)
        relaxed = make_agent(ds, registry, allow_small_children=True)
        indices = np.arange(ds.table.num_rows)
        assert relaxed.legal_actions(indices).sum() >= (
            strict.legal_actions(indices).sum()
        )

    def test_empty_registry_rejected(self, small_setup):
        ds, _ = small_setup
        empty = CutRegistry(ds.schema)
        with pytest.raises(ValueError):
            Woodblock(
                ds.schema, empty, ds.table, ds.workload,
                WoodblockConfig(min_leaf_size=10),
            )

    def test_bad_min_leaf_size_rejected(self, small_setup):
        ds, registry = small_setup
        with pytest.raises(ValueError):
            make_agent(ds, registry, min_leaf_size=0)


class TestEpisodes:
    def test_episode_produces_valid_tree(self, small_setup):
        ds, registry = small_setup
        agent = make_agent(ds, registry)
        result = agent.run_episode()
        for leaf in result.tree.leaves():
            assert len(leaf.sample_indices) >= 1
        assert 0.0 <= result.scan_ratio <= 1.0

    def test_episode_rewards_in_unit_interval(self, small_setup):
        ds, registry = small_setup
        agent = make_agent(ds, registry)
        result = agent.run_episode()
        assert (result.rewards >= 0).all() and (result.rewards <= 1).all()
        assert len(result.rewards) == len(result.transitions)

    def test_scan_ratio_consistent_with_cost_model(self, small_setup):
        ds, registry = small_setup
        agent = make_agent(ds, registry)
        result = agent.run_episode()
        sizes = leaf_sizes(result.tree, ds.table)
        independent = scan_ratio(result.tree, ds.workload, sizes)
        assert independent == pytest.approx(result.scan_ratio, abs=1e-9)

    def test_deterministic_episode_reproducible(self, small_setup):
        ds, registry = small_setup
        a1 = make_agent(ds, registry)
        a2 = make_agent(ds, registry)
        r1 = a1.run_episode(deterministic=True)
        r2 = a2.run_episode(deterministic=True)
        assert r1.scan_ratio == r2.scan_ratio
        assert r1.tree.num_nodes == r2.tree.num_nodes


class TestTraining:
    def test_train_returns_best_tree(self, small_setup):
        ds, registry = small_setup
        agent = make_agent(ds, registry, episodes=8)
        result = agent.train()
        assert result.best_tree is not None
        assert result.episodes_run == 8
        assert len(result.curve) == 8

    def test_best_ratio_monotone_in_curve(self, small_setup):
        ds, registry = small_setup
        agent = make_agent(ds, registry, episodes=10)
        result = agent.train()
        best = [p.best_scan_ratio for p in result.curve]
        assert all(b2 <= b1 + 1e-12 for b1, b2 in zip(best, best[1:]))

    def test_best_ratio_is_min_of_episodes(self, small_setup):
        ds, registry = small_setup
        agent = make_agent(ds, registry, episodes=10)
        result = agent.train()
        episode_ratios = [p.episode_scan_ratio for p in result.curve]
        assert result.best_scan_ratio == pytest.approx(min(episode_ratios))

    def test_time_budget_respected(self, small_setup):
        ds, registry = small_setup
        agent = make_agent(ds, registry, episodes=10_000)
        result = agent.train(time_budget_seconds=1.0)
        assert result.episodes_run < 10_000

    def test_updates_happen(self, small_setup):
        ds, registry = small_setup
        agent = make_agent(ds, registry, episodes=8, episodes_per_update=4)
        result = agent.train()
        assert len(result.update_stats) == 2

    def test_seed_reproducibility(self, small_setup):
        ds, registry = small_setup
        r1 = make_agent(ds, registry, episodes=5, seed=7).train()
        r2 = make_agent(ds, registry, episodes=5, seed=7).train()
        assert r1.best_scan_ratio == pytest.approx(r2.best_scan_ratio)

    def test_beats_greedy_on_disjunctive_workload(self, small_setup):
        """The headline Fig. 3 result: RL escapes the greedy trap."""
        from repro.core import GreedyConfig, build_greedy_tree

        ds, registry = small_setup
        greedy = build_greedy_tree(
            ds.schema, registry, ds.table, ds.workload,
            GreedyConfig(ds.min_block_size),
        )
        g_ratio = scan_ratio(
            greedy, ds.workload, leaf_sizes(greedy, ds.table)
        )
        agent = make_agent(ds, registry, episodes=40, seed=3)
        result = agent.train()
        assert result.best_scan_ratio < g_ratio


class TestCheckpointing:
    def test_save_load_roundtrip(self, small_setup, tmp_path):
        ds, registry = small_setup
        agent = make_agent(ds, registry, episodes=5)
        agent.train()
        path = str(tmp_path / "policy.npz")
        agent.save_policy(path)
        fresh = make_agent(ds, registry, episodes=5)
        fresh.load_policy(path)
        r1 = agent.run_episode(deterministic=True)
        r2 = fresh.run_episode(deterministic=True)
        assert r1.scan_ratio == pytest.approx(r2.scan_ratio)
        assert r1.tree.num_nodes == r2.tree.num_nodes

    def test_load_mismatched_shape_fails(self, small_setup, tmp_path):
        ds, registry = small_setup
        agent = make_agent(ds, registry)
        path = str(tmp_path / "policy.npz")
        agent.save_policy(path)
        other = make_agent(ds, registry, hidden_dim=16)
        with pytest.raises(ValueError):
            other.load_policy(path)
