"""Unit tests for repro.storage.minmax (SMA / zone-map indexes)."""

import numpy as np
import pytest

from repro.storage import MinMaxIndex, Schema, Table, categorical, numeric
from repro.storage.minmax import ColumnStats


@pytest.fixture
def block_table():
    schema = Schema(
        [numeric("x", (0, 100)), categorical("c", ["a", "b", "c", "d"])]
    )
    return Table(
        schema,
        {
            "x": np.array([10.0, 20.0, 30.0]),
            "c": np.array([0, 2, 2]),
        },
    )


class TestColumnStats:
    def test_contains_value_range(self):
        s = ColumnStats(10.0, 30.0)
        assert s.contains_value(10.0) and s.contains_value(30.0)
        assert not s.contains_value(9.9) and not s.contains_value(31.0)

    def test_contains_value_with_dictionary(self):
        s = ColumnStats(0.0, 2.0, distinct=np.array([True, False, True]))
        assert s.contains_value(0)
        assert not s.contains_value(1)  # in range but absent
        assert not s.contains_value(5)  # out of dictionary

    def test_overlaps_range_inclusive_edges(self):
        s = ColumnStats(10.0, 30.0)
        assert s.overlaps_range(30.0, 50.0)
        assert not s.overlaps_range(30.0, 50.0, lo_inclusive=False)
        assert s.overlaps_range(0.0, 10.0)
        assert not s.overlaps_range(0.0, 10.0, hi_inclusive=False)

    def test_overlaps_disjoint(self):
        s = ColumnStats(10.0, 30.0)
        assert not s.overlaps_range(31.0, 40.0)
        assert not s.overlaps_range(-5.0, 9.0)


class TestMinMaxIndex:
    def test_build_bounds(self, block_table):
        idx = MinMaxIndex.build(block_table)
        assert idx.bounds("x") == (10.0, 30.0)

    def test_build_dictionary_bits(self, block_table):
        idx = MinMaxIndex.build(block_table)
        stats = idx.column_stats("c")
        assert stats.distinct.tolist() == [True, False, True, False]

    def test_build_without_dictionaries(self, block_table):
        idx = MinMaxIndex.build(block_table, with_dictionaries=False)
        assert idx.column_stats("c").distinct is None

    def test_without_dictionaries_copy(self, block_table):
        idx = MinMaxIndex.build(block_table).without_dictionaries()
        assert idx.column_stats("c").distinct is None
        assert idx.bounds("c") == (0.0, 2.0)

    def test_untracked_column(self, block_table):
        idx = MinMaxIndex.build(block_table, columns=["x"])
        assert idx.column_stats("c") is None
        assert idx.bounds("c") is None
        assert "c" not in idx

    def test_columns_listing(self, block_table):
        idx = MinMaxIndex.build(block_table)
        assert set(idx.columns()) == {"x", "c"}

    def test_empty_table_has_no_stats(self, mixed_schema):
        idx = MinMaxIndex.build(Table.empty(mixed_schema))
        assert idx.columns() == ()
