"""Tests for the unified repro.exec query pipeline.

Three layers of guarantees:

1. **Single entry point** — the four legacy execution paths (serial
   baseline, ``Database.execute``, ``LayoutService``, the sharded
   coordinator) contain no route/cache/scan loop of their own; every
   one of them is a configuration of ``QueryPipeline`` (enforced
   structurally, by grepping the facade sources).
2. **Stage semantics** — per-stage timings, cache-hit short-circuit,
   serial configuration ≡ direct engine execution.
3. **Row-id result caching** — the byte-bounded row-id store: repeats
   are free, budgets hold, generation purges drop payloads.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.db import Database
from repro.exec import (
    QueryPipeline,
    ResultCache,
    serial_pipeline,
    single_layout_pipeline,
)
from repro.engine import ScanEngine
from repro.core.router import QueryRouter
from repro.sql import SqlPlanner
from repro.storage import Schema, Table, categorical, numeric

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

STATEMENTS = [
    "SELECT x FROM t WHERE x < 20",
    "SELECT x, y FROM t WHERE kind = 'b' AND y < 0.2",
    "SELECT x FROM t WHERE x >= 80 AND kind IN ('a','c')",
]


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(0)
    schema = Schema(
        [
            numeric("x", (0.0, 100.0)),
            numeric("y", (0.0, 1.0)),
            categorical("kind", ["a", "b", "c"]),
        ]
    )
    n = 5000
    table = Table(
        schema,
        {
            "x": rng.uniform(0, 100, n),
            "y": rng.uniform(0, 1, n),
            "kind": rng.integers(0, 3, n),
        },
    )
    database = Database.from_table(table, min_block_size=400)
    database.build_layout("greedy", workload=STATEMENTS)
    return database


# ----------------------------------------------------------------------
# 1. One shared entry point (structural enforcement)
# ----------------------------------------------------------------------


FACADES = {
    "serial baseline + LayoutService": SRC / "serve" / "service.py",
    "sharded coordinator": SRC / "serve" / "shard.py",
    "multi-layout arbiter": SRC / "serve" / "multi.py",
    "database library path": SRC / "db" / "database.py",
    "adaptive facade": SRC / "adapt" / "service.py",
}


def test_every_facade_runs_the_shared_pipeline():
    for label, path in FACADES.items():
        source = path.read_text()
        assert "pipeline" in source and "exec" in source, (
            f"{label} ({path.name}) no longer references the shared "
            f"repro.exec pipeline"
        )


def test_no_facade_reimplements_route_cache_scan():
    """The duplicated plan->route->cache->prune->scan loop the exec
    refactor deleted must not grow back: routing, cache consultation
    and survivor pruning live only in repro/exec/stages.py."""
    for label, path in FACADES.items():
        source = path.read_text()
        for needle in (
            "router.route(",      # qd-tree query walks belong to RouteStage
            ".route(query",       # (ingest's DataRouter batch routing is fine)
            "result_cache.get(",  # cache gets belong to ResultCacheStage
            "result_cache.put(",  # cache puts belong to ResultCacheStage
            "prune_blocks(",      # SMA pruning belongs to PruneStage
        ):
            assert needle not in source, (
                f"{label} ({path.name}) contains {needle!r} — execution "
                f"logic belongs in repro.exec stages, facades are thin "
                f"configurations"
            )
        # The only engine scan outside the pipeline is the per-shard
        # scan leaf the scatter stage submits into (LayoutService.
        # scan_pruned); nothing else may scan.
        allowed = 1 if path == SRC / "serve" / "service.py" else 0
        assert source.count(".execute_pruned(") == allowed, (
            f"{label} ({path.name}) scans outside the pipeline"
        )
        assert ".execute(query" not in source, (
            f"{label} ({path.name}) calls the engine's route+prune+scan "
            f"entry point directly"
        )


def test_stage_order_is_canonical():
    """The canonical configuration is Plan -> Route -> ResultCache ->
    Prune -> Scan -> Merge (the sharded and multi-layout variants
    substitute stages but keep the order)."""
    planner = SqlPlanner(
        Schema([numeric("x", (0.0, 1.0))])
    )
    table = Table(planner.schema, {"x": np.linspace(0.0, 1.0, 100)})
    from repro.storage import BlockStore

    store = BlockStore.from_assignment(table, np.repeat(np.arange(4), 25))
    engine = ScanEngine(store)
    pipe = single_layout_pipeline(
        planner=planner, engine=engine, router=None, store=store
    )
    assert [s.name for s in pipe.stages] == [
        "plan", "route", "result_cache", "prune", "scan", "merge",
    ]


# ----------------------------------------------------------------------
# 2. Stage semantics
# ----------------------------------------------------------------------


class TestPipelineSemantics:
    def test_serial_pipeline_matches_direct_engine(self, db):
        handle = db.active_layout
        engine = ScanEngine(
            handle.store, num_advanced_cuts=handle.num_advanced_cuts
        )
        router = QueryRouter(handle.tree)
        pipe = serial_pipeline(db.planner, engine, router, handle.store)
        for sql in STATEMENTS:
            query = db.planner.plan(sql).query
            expected = engine.execute(query, router.route(query).block_ids)
            got = pipe.execute(sql)
            assert got.stats.result_key() == expected.result_key()
            assert not got.cached

    def test_stage_timings_recorded(self, db):
        handle = db.active_layout
        pipe = db._pipeline_for(handle)
        result = pipe.execute(STATEMENTS[0])
        for name in ("plan", "route", "result_cache", "prune", "scan", "merge"):
            assert name in result.stage_seconds
            assert result.stage_seconds[name] >= 0.0

    def test_cache_hit_short_circuits_scan(self, db):
        cache = ResultCache()
        handle = db.active_layout
        pipe = single_layout_pipeline(
            planner=db.planner,
            engine=handle.engine(),
            router=handle.router(),
            store=handle.store,
            result_cache=cache,
            generation=handle.generation,
        )
        first = pipe.execute(STATEMENTS[0])
        second = pipe.execute(STATEMENTS[0])
        assert not first.cached and second.cached
        assert first.stats.result_key() == second.stats.result_key()
        # The hit skipped the scan: the memoized stats object itself
        # was returned, and cache accounting says exactly one miss.
        assert second.stats is first.stats
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.tuples_avoided == first.stats.tuples_scanned

    def test_serial_pipeline_never_memoizes(self, db):
        """The serial baseline walks the tree on every arrival — its
        configuration must carry no route memo and no cache."""
        handle = db.active_layout
        engine = ScanEngine(
            handle.store, num_advanced_cuts=handle.num_advanced_cuts
        )
        router = QueryRouter(handle.tree)
        pipe = serial_pipeline(db.planner, engine, router, handle.store)
        for _ in range(3):
            pipe.execute(STATEMENTS[0])
        assert len(router.latencies) == 3  # one walk per arrival
        assert pipe.result_cache is None

    def test_service_pipeline_memoizes_routes(self, db):
        with db.serve(max_workers=1, result_cache=False) as svc:
            for _ in range(3):
                for sql in STATEMENTS:
                    svc.execute_sql(sql)
            assert len(svc.router.latencies) == len(STATEMENTS)
            assert len(svc._route_memo) == len(STATEMENTS)


# ----------------------------------------------------------------------
# 3. Row-id result caching (byte-bounded)
# ----------------------------------------------------------------------


class TestRowIdCache:
    def make_query(self, db, sql):
        return db.planner.plan(sql).query

    def test_repeats_hit_the_row_id_store(self, db):
        db.result_cache.clear()
        before = db.result_cache.stats()
        first = db.collect_row_ids(STATEMENTS[0])
        again = db.collect_row_ids(STATEMENTS[0])
        np.testing.assert_array_equal(first, again)
        delta = db.result_cache.stats().since(before)
        assert delta.row_id_hits == 1
        assert delta.row_id_misses == 1
        assert delta.row_id_entries == 1
        assert delta.row_id_bytes == first.nbytes
        assert not again.flags.writeable

    def test_byte_budget_bounds_payloads_not_entries(self, db):
        arr = np.arange(100, dtype=np.int64)
        budget = 4 * arr.nbytes
        cache = ResultCache(row_id_byte_budget=budget)
        queries = [self.make_query(db, s) for s in STATEMENTS]
        # Many small arrays: entry count is NOT the bound, bytes are.
        for gen, query in enumerate(queries * 3):
            cache.put_row_ids(query, gen, arr)
        stats = cache.stats()
        assert stats.row_id_bytes <= budget
        assert stats.row_id_entries == budget // arr.nbytes
        assert stats.row_id_evictions > 0

    def test_oversized_array_rejected(self, db):
        cache = ResultCache(row_id_byte_budget=64)
        query = self.make_query(db, STATEMENTS[0])
        big = np.arange(1000, dtype=np.int64)
        assert not cache.put_row_ids(query, 1, big)
        assert cache.stats().row_id_entries == 0

    def test_zero_budget_disables_row_id_store(self, db):
        cache = ResultCache(row_id_byte_budget=0)
        query = self.make_query(db, STATEMENTS[0])
        assert not cache.put_row_ids(query, 1, np.empty(0, dtype=np.int64))
        assert cache.stats().row_id_entries == 0

    def test_zero_byte_arrays_bounded_by_entry_cap(self, db):
        """A flood of empty matches (nbytes=0) must not grow the key
        set without limit: the stats entry cap bounds entries too."""
        cache = ResultCache(cap=8, row_id_byte_budget=1024)
        empty = np.empty(0, dtype=np.int64)
        queries = [self.make_query(db, s) for s in STATEMENTS]
        for gen in range(20):
            for query in queries:
                cache.put_row_ids(query, gen, empty)
        stats = cache.stats()
        assert stats.row_id_entries <= 8
        assert stats.row_id_evictions > 0

    def test_generation_purge_drops_row_ids(self, db):
        cache = ResultCache()
        query = self.make_query(db, STATEMENTS[0])
        cache.put_row_ids(query, 1, np.arange(10, dtype=np.int64))
        cache.put_row_ids(query, 2, np.arange(10, dtype=np.int64))
        assert cache.generations() == (1, 2)
        dropped = cache.retain(2)
        assert dropped == 1
        assert cache.generations() == (2,)
        assert cache.get_row_ids(query, 1) is None
        assert cache.get_row_ids(query, 2) is not None
        assert cache.stats().row_id_bytes == 80

    def test_snapshot_counters_delta(self, db):
        cache = ResultCache()
        query = self.make_query(db, STATEMENTS[0])
        before = cache.stats()
        cache.put_row_ids(query, 1, np.arange(5, dtype=np.int64))
        cache.get_row_ids(query, 1)
        cache.get_row_ids(query, 2)
        delta = cache.stats().since(before)
        assert delta.row_id_hits == 1
        assert delta.row_id_misses == 1
        assert delta.row_id_bytes == 40

    def test_serving_facades_share_row_id_store(self, db):
        db.result_cache.clear()
        with db.serve(max_workers=1) as svc:
            a = svc.collect_row_ids(STATEMENTS[1])
            b = svc.collect_row_ids(STATEMENTS[1])
        np.testing.assert_array_equal(a, b)
        # The library path reuses the entry the service populated.
        c = db.collect_row_ids(STATEMENTS[1])
        np.testing.assert_array_equal(a, c)
        assert db.result_cache.stats().row_id_hits >= 2

    def test_sharded_collect_row_ids_cached_and_identical(self, db):
        db.result_cache.clear()
        with db.serve(shards=2, partition="subtree", max_workers=1) as svc:
            a = svc.collect_row_ids(STATEMENTS[2])
            b = svc.collect_row_ids(STATEMENTS[2])
        np.testing.assert_array_equal(a, b)
        truth = db.collect_row_ids(STATEMENTS[2])
        np.testing.assert_array_equal(a, truth)
        assert db.result_cache.stats().row_id_hits >= 2
