"""Unit tests for repro.rl.network: numerically verified backprop."""

import numpy as np
import pytest

from repro.rl import Adam, Linear, PolicyValueNet


class TestLinear:
    def test_forward_shape(self):
        rng = np.random.default_rng(0)
        layer = Linear(4, 3, rng)
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_backward_requires_forward(self):
        rng = np.random.default_rng(0)
        layer = Linear(4, 3, rng)
        with pytest.raises(AssertionError):
            layer.backward(np.ones((5, 3)))

    def test_gradient_check(self):
        """Finite-difference check of dL/dW for L = sum(forward(x))."""
        rng = np.random.default_rng(1)
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        layer.zero_grad()
        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        eps = 1e-6
        for i in range(3):
            for j in range(2):
                layer.weight[i, j] += eps
                up = layer.forward(x).sum()
                layer.weight[i, j] -= 2 * eps
                down = layer.forward(x).sum()
                layer.weight[i, j] += eps
                numeric = (up - down) / (2 * eps)
                assert numeric == pytest.approx(layer.grad_weight[i, j], rel=1e-4)

    def test_zero_grad(self):
        rng = np.random.default_rng(0)
        layer = Linear(2, 2, rng)
        layer.forward(np.ones((1, 2)))
        layer.backward(np.ones((1, 2)))
        layer.zero_grad()
        assert (layer.grad_weight == 0).all() and (layer.grad_bias == 0).all()


class TestPolicyValueNet:
    def test_forward_shapes(self):
        net = PolicyValueNet(input_dim=6, num_actions=4, hidden_dim=8, seed=0)
        logits, values = net.forward(np.ones((3, 6)))
        assert logits.shape == (3, 4)
        assert values.shape == (3,)

    def test_forward_single_row(self):
        net = PolicyValueNet(input_dim=6, num_actions=4, hidden_dim=8, seed=0)
        logits, values = net.forward(np.ones(6))
        assert logits.shape == (1, 4)

    def test_full_gradient_check(self):
        """End-to-end finite-difference check through both heads."""
        rng = np.random.default_rng(3)
        net = PolicyValueNet(input_dim=5, num_actions=3, hidden_dim=7, seed=3)
        x = rng.normal(size=(6, 5))
        g_logits = rng.normal(size=(6, 3))
        g_values = rng.normal(size=6)

        def loss() -> float:
            logits, values = net.forward(x)
            return float((logits * g_logits).sum() + (values * g_values).sum())

        net.zero_grad()
        net.forward(x)
        net.backward(g_logits, g_values)
        eps = 1e-6
        checked = 0
        for param, grad in net.parameters():
            flat = param.reshape(-1)
            gflat = grad.reshape(-1)
            # Spot-check a few entries of every tensor.
            for idx in range(0, len(flat), max(1, len(flat) // 3)):
                flat[idx] += eps
                up = loss()
                flat[idx] -= 2 * eps
                down = loss()
                flat[idx] += eps
                numeric = (up - down) / (2 * eps)
                assert numeric == pytest.approx(gflat[idx], rel=1e-3, abs=1e-7)
                checked += 1
        assert checked >= 8

    def test_state_dict_roundtrip(self):
        net = PolicyValueNet(input_dim=4, num_actions=2, hidden_dim=6, seed=0)
        x = np.ones((2, 4))
        before_logits, _ = net.forward(x)
        state = net.state_dict()
        # Perturb, then restore.
        for param, _ in net.parameters():
            param += 1.0
        net.load_state_dict(state)
        after_logits, _ = net.forward(x)
        np.testing.assert_allclose(before_logits, after_logits)


class TestAdam:
    def test_minimizes_quadratic(self):
        param = np.array([5.0, -3.0])
        grad = np.zeros(2)
        opt = Adam([(param, grad)], learning_rate=0.1)
        for _ in range(500):
            grad[...] = 2 * param  # d/dp of p^2
            opt.step()
        assert np.abs(param).max() < 0.05

    def test_step_moves_parameters(self):
        param = np.ones(3)
        grad = np.ones(3)
        opt = Adam([(param, grad)], learning_rate=0.01)
        opt.step()
        assert (param < 1.0).all()
