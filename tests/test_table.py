"""Unit tests for repro.storage.table."""

import numpy as np
import pytest

from repro.storage import Schema, SchemaError, Table, categorical, numeric


class TestConstruction:
    def test_missing_column_rejected(self, two_col_schema):
        with pytest.raises(SchemaError):
            Table(two_col_schema, {"cpu": np.zeros(3)})

    def test_extra_column_rejected(self, two_col_schema):
        with pytest.raises(SchemaError):
            Table(
                two_col_schema,
                {"cpu": np.zeros(3), "disk": np.zeros(3), "x": np.zeros(3)},
            )

    def test_length_mismatch_rejected(self, two_col_schema):
        with pytest.raises(SchemaError):
            Table(two_col_schema, {"cpu": np.zeros(3), "disk": np.zeros(4)})

    def test_2d_array_rejected(self, two_col_schema):
        with pytest.raises(SchemaError):
            Table(
                two_col_schema,
                {"cpu": np.zeros((3, 2)), "disk": np.zeros(3)},
            )

    def test_from_raw_encodes_categoricals(self):
        schema = Schema([numeric("x"), categorical("c")])
        t = Table.from_raw(schema, {"x": [1, 2], "c": ["b", "a"]})
        assert t.column("c").tolist() == [0, 1]
        assert schema["c"].dictionary.decode(0) == "b"

    def test_empty(self, mixed_schema):
        t = Table.empty(mixed_schema)
        assert t.num_rows == 0


class TestAccess:
    def test_column_unknown_raises(self, two_col_table):
        with pytest.raises(SchemaError):
            two_col_table.column("nope")

    def test_getitem(self, two_col_table):
        assert len(two_col_table["cpu"]) == 5000

    def test_row_decodes(self):
        schema = Schema([numeric("x"), categorical("c")])
        t = Table.from_raw(schema, {"x": [1.5], "c": ["hello"]})
        assert t.row(0) == {"x": 1.5, "c": "hello"}

    def test_iter_rows(self):
        schema = Schema([numeric("x")])
        t = Table(schema, {"x": np.array([1.0, 2.0])})
        assert [r["x"] for r in t.iter_rows()] == [1.0, 2.0]

    def test_min_max(self, two_col_table):
        lo, hi = two_col_table.min_max("cpu")
        assert 0 <= lo < hi <= 100

    def test_min_max_empty_raises(self, mixed_schema):
        with pytest.raises(ValueError):
            Table.empty(mixed_schema).min_max("age")

    def test_distinct_codes(self):
        schema = Schema([categorical("c", ["a", "b", "c"])])
        t = Table(schema, {"c": np.array([2, 0, 2, 0])})
        assert t.distinct_codes("c").tolist() == [0, 2]

    def test_nbytes_positive(self, two_col_table):
        assert two_col_table.nbytes() > 0


class TestOperations:
    def test_take_preserves_order(self, two_col_table):
        sub = two_col_table.take(np.array([10, 3, 10]))
        assert sub.num_rows == 3
        assert sub.column("cpu")[0] == two_col_table.column("cpu")[10]
        assert sub.column("cpu")[1] == two_col_table.column("cpu")[3]

    def test_filter(self, two_col_table):
        mask = two_col_table.column("cpu") < 50
        sub = two_col_table.filter(mask)
        assert sub.num_rows == int(mask.sum())
        assert (sub.column("cpu") < 50).all()

    def test_filter_length_mismatch_raises(self, two_col_table):
        with pytest.raises(SchemaError):
            two_col_table.filter(np.ones(3, dtype=bool))

    def test_slice(self, two_col_table):
        sub = two_col_table.slice(100, 200)
        assert sub.num_rows == 100
        assert sub.column("disk")[0] == two_col_table.column("disk")[100]

    def test_sample_size(self, two_col_table):
        rng = np.random.default_rng(0)
        s = two_col_table.sample(0.1, rng)
        assert s.num_rows == 500

    def test_sample_at_least_one_row(self, two_col_table):
        rng = np.random.default_rng(0)
        s = two_col_table.sample(1e-9, rng)
        assert s.num_rows == 1

    def test_sample_bad_ratio_raises(self, two_col_table):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            two_col_table.sample(0.0, rng)
        with pytest.raises(ValueError):
            two_col_table.sample(1.5, rng)

    def test_concat(self, two_col_table):
        both = two_col_table.concat(two_col_table)
        assert both.num_rows == 2 * two_col_table.num_rows

    def test_concat_schema_mismatch_raises(self, two_col_table, mixed_table):
        with pytest.raises(SchemaError):
            two_col_table.concat(mixed_table)
