"""Unit tests for repro.core.router (data + query routing)."""

import numpy as np
import pytest

from repro.core import (
    CutRegistry,
    DataRouter,
    QdTree,
    QueryRouter,
    column_eq,
    column_lt,
)


@pytest.fixture
def tree(mixed_schema, mixed_table):
    reg = CutRegistry(mixed_schema)
    reg.add(column_lt("age", 40))
    reg.add(column_eq("city", 1))
    t = QdTree(mixed_schema, reg)
    left, _ = t.apply_cut(t.root, column_lt("age", 40))
    t.apply_cut(left, column_eq("city", 1))
    t.assign_block_ids()
    return t


class TestDataRouter:
    def test_single_thread_routing(self, tree, mixed_table):
        router = DataRouter(tree, batch_size=256)
        bids, stats = router.route(mixed_table)
        assert len(bids) == mixed_table.num_rows
        assert stats.records == mixed_table.num_rows
        assert stats.records_per_second > 0

    def test_matches_direct_routing(self, tree, mixed_table):
        router = DataRouter(tree, batch_size=100)
        bids, _ = router.route(mixed_table)
        np.testing.assert_array_equal(bids, tree.route_to_blocks(mixed_table))

    def test_multithreaded_same_result(self, tree, mixed_table):
        router = DataRouter(tree, batch_size=64)
        single, _ = router.route(mixed_table, threads=1)
        multi, stats = router.route(mixed_table, threads=4)
        np.testing.assert_array_equal(single, multi)
        assert stats.threads == 4

    def test_invalid_args(self, tree, mixed_table):
        with pytest.raises(ValueError):
            DataRouter(tree, batch_size=0)
        router = DataRouter(tree)
        with pytest.raises(ValueError):
            router.route(mixed_table, threads=0)

    def test_assigns_bids_if_missing(self, mixed_schema, mixed_table):
        reg = CutRegistry(mixed_schema)
        reg.add(column_lt("age", 40))
        t = QdTree(mixed_schema, reg)
        t.apply_cut(t.root, column_lt("age", 40))
        # No assign_block_ids() call: DataRouter should handle it.
        router = DataRouter(t)
        bids, _ = router.route(mixed_table)
        assert set(np.unique(bids)) == {0, 1}


class TestQueryRouter:
    def test_route_records_latency(self, tree, mixed_workload):
        router = QueryRouter(tree)
        routed = router.route(mixed_workload[0])
        assert routed.latency_seconds >= 0
        assert len(router.latencies) == 1

    def test_route_workload(self, tree, mixed_workload):
        router = QueryRouter(tree)
        results = router.route_workload(mixed_workload)
        assert len(results) == len(mixed_workload)
        assert len(router.latencies) == len(mixed_workload)

    def test_bids_prune(self, tree, mixed_workload, mixed_table):
        router = QueryRouter(tree)
        # "sf" query: city == 1 only fits the left-left leaf or the
        # age >= 40 leaf (which has a full mask).
        routed = router.route(mixed_workload[1])
        assert 0 < len(routed.block_ids) < len(tree.leaves()) + 1

    def test_rewrite_sql_contains_bids(self, tree, mixed_workload):
        router = QueryRouter(tree)
        routed = router.route(mixed_workload[0])
        sql = router.rewrite_sql(routed)
        assert "BID IN (" in sql

    def test_latency_cdf_monotone(self, tree, mixed_workload):
        router = QueryRouter(tree)
        router.route_workload(mixed_workload)
        xs, ys = router.latency_cdf()
        assert (np.diff(xs) >= 0).all()
        assert ys[-1] == 1.0

    def test_latency_cdf_empty(self, tree):
        router = QueryRouter(tree)
        xs, ys = router.latency_cdf()
        assert len(xs) == 0 and len(ys) == 0

    def test_reset_latencies(self, tree, mixed_workload):
        router = QueryRouter(tree)
        router.route_workload(mixed_workload)
        router.reset_latencies()
        assert len(router.latencies) == 0
