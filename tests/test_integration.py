"""End-to-end integration tests across all subsystems."""

import pytest

from repro.baselines import (
    BottomUpConfig,
    BottomUpPartitioner,
    RandomPartitioner,
    RangePartitioner,
)
from repro.bench import (
    build_baseline_layout,
    build_greedy_layout,
    build_rl_layout,
    logical_access_pct,
    materialize_tree,
    run_physical,
)
from repro.core import QdTree, QueryRouter
from repro.engine import SPARK_PARQUET, speedup_cdf
from repro.sql import SqlPlanner
from repro.storage import load_store, save_store
from repro.workloads import (
    disjunctive_dataset,
    errorlog_int_dataset,
    tpch_dataset,
)


@pytest.fixture(scope="module")
def tpch():
    return tpch_dataset(num_rows=20_000, seeds_per_template=2, seed=0)


@pytest.fixture(scope="module")
def errlog():
    return errorlog_int_dataset(num_rows=20_000, num_queries=60, seed=0)


class TestTpchPipeline:
    def test_layout_ordering_matches_paper(self, tpch):
        """Greedy qd-tree < Random in access % (the Table 2 ordering)."""
        registry = tpch.registry()
        nac = registry.num_advanced_cuts
        random = build_baseline_layout(
            tpch, RandomPartitioner(block_size=tpch.min_block_size * 4)
        )
        greedy = build_greedy_layout(tpch, registry=registry)
        rnd_pct = logical_access_pct(
            random, tpch.workload, num_advanced_cuts=nac
        )
        greedy_pct = logical_access_pct(
            greedy, tpch.workload, num_advanced_cuts=nac
        )
        assert greedy_pct < rnd_pct

    def test_greedy_within_factor_of_selectivity(self, tpch):
        """The paper's headline: within ~2-3x of the selectivity bound."""
        greedy = build_greedy_layout(tpch)
        pct = logical_access_pct(
            greedy, tpch.workload,
            num_advanced_cuts=tpch.registry().num_advanced_cuts,
        )
        selectivity_pct = 100 * tpch.workload.selectivity(tpch.table)
        assert pct < 4 * selectivity_pct

    def test_physical_speedup_follows_logical(self, tpch):
        registry = tpch.registry()
        nac = registry.num_advanced_cuts
        random = build_baseline_layout(
            tpch, RandomPartitioner(block_size=tpch.min_block_size * 4)
        )
        greedy = build_greedy_layout(tpch, registry=registry)
        rnd = run_physical(
            random, tpch.workload, SPARK_PARQUET, num_advanced_cuts=nac
        )
        grd = run_physical(
            greedy, tpch.workload, SPARK_PARQUET, num_advanced_cuts=nac
        )
        # speedup_over(baseline) = baseline_ms / my_ms > 1 when faster.
        assert grd.speedup_over(rnd) > 1.0
        assert rnd.total_modeled_ms > grd.total_modeled_ms

    def test_persist_and_requery(self, tpch, tmp_path):
        registry = tpch.registry()
        layout = build_greedy_layout(tpch, registry=registry)
        save_store(layout.store, tmp_path / "tpch")
        layout.tree.save(str(tmp_path / "tree.json"))
        store = load_store(tmp_path / "tpch")
        tree = QdTree.load(str(tmp_path / "tree.json"), tpch.schema, registry)
        router = QueryRouter(tree)
        from repro.engine import ScanEngine

        engine = ScanEngine(
            store, SPARK_PARQUET,
            num_advanced_cuts=registry.num_advanced_cuts,
        )
        q = tpch.workload[0]
        routed = router.route(q)
        stats = engine.execute(q, routed.block_ids)
        direct = q.predicate.evaluate(tpch.table.columns()).sum()
        assert stats.rows_returned == direct


class TestErrorLogPipeline:
    def test_range_baseline_useless(self, errlog):
        """Queries ignore ingest time: range partitioning skips ~nothing."""
        layout = build_baseline_layout(
            errlog,
            RangePartitioner(column="ingest_date", block_size=2000),
        )
        pct = logical_access_pct(layout, errlog.workload)
        assert pct > 50.0

    def test_qdtree_aggressive_skipping(self, errlog):
        greedy = build_greedy_layout(errlog)
        pct = logical_access_pct(greedy, errlog.workload)
        assert pct < 20.0

    def test_bu_plus_between_range_and_qdtree(self, errlog):
        registry = errlog.registry()
        block = max(errlog.min_block_size, 64)
        bu = build_baseline_layout(
            errlog,
            BottomUpPartitioner(
                registry,
                errlog.workload,
                BottomUpConfig(
                    min_block_size=block, selectivity_threshold=0.1
                ),
            ),
        )
        greedy = build_greedy_layout(errlog, registry=registry)
        rng_layout = build_baseline_layout(
            errlog, RangePartitioner(column="ingest_date", block_size=2000)
        )
        bu_pct = logical_access_pct(bu, errlog.workload)
        greedy_pct = logical_access_pct(greedy, errlog.workload)
        rng_pct = logical_access_pct(rng_layout, errlog.workload)
        # The paper's ordering: qd-tree < BU+ < range baseline.
        assert greedy_pct <= bu_pct
        assert bu_pct < rng_pct

    def test_query_results_identical_across_layouts(self, errlog):
        """Layouts change performance, never answers."""
        greedy = build_greedy_layout(errlog)
        random = build_baseline_layout(
            errlog, RandomPartitioner(block_size=2000)
        )
        g = run_physical(greedy, errlog.workload, SPARK_PARQUET)
        r = run_physical(random, errlog.workload, SPARK_PARQUET)
        for gs, rs in zip(g.stats, r.stats):
            assert gs.rows_returned == rs.rows_returned


class TestSqlToLayout:
    def test_sql_workload_end_to_end(self, mixed_table):
        planner = SqlPlanner(mixed_table.schema)
        wl = planner.plan_workload(
            [
                "SELECT age FROM t WHERE age < 25",
                "SELECT age FROM t WHERE city = 'sf' AND salary >= 100000",
                "SELECT age FROM t WHERE level IN ('senior','mid') AND age >= 60",
            ]
        )
        registry = planner.candidate_cuts(wl)
        from repro.core import GreedyConfig, build_greedy_tree

        tree = build_greedy_tree(
            mixed_table.schema, registry, mixed_table, wl, GreedyConfig(100)
        )
        store = materialize_tree(tree, mixed_table)
        router = QueryRouter(tree)
        from repro.engine import ScanEngine

        engine = ScanEngine(store, SPARK_PARQUET)
        for q in wl:
            routed = router.route(q)
            stats = engine.execute(q, routed.block_ids)
            expected = int(q.predicate.evaluate(mixed_table.columns()).sum())
            assert stats.rows_returned == expected


class TestRlIntegration:
    def test_rl_beats_greedy_on_disjunctive(self):
        ds = disjunctive_dataset(num_rows=10_000, seed=0)
        registry = ds.registry()
        greedy = build_greedy_layout(ds, registry=registry)
        rl = build_rl_layout(
            ds, registry=registry, episodes=40, hidden_dim=32, seed=3
        )
        g_pct = logical_access_pct(greedy, ds.workload)
        rl_pct = logical_access_pct(rl, ds.workload)
        assert rl_pct < g_pct

    def test_speedup_cdf_favors_rl(self):
        ds = disjunctive_dataset(num_rows=10_000, seed=0)
        registry = ds.registry()
        greedy = build_greedy_layout(ds, registry=registry)
        rl = build_rl_layout(
            ds, registry=registry, episodes=40, hidden_dim=32, seed=3
        )
        g = run_physical(greedy, ds.workload, SPARK_PARQUET)
        r = run_physical(rl, ds.workload, SPARK_PARQUET)
        xs, ys = speedup_cdf(g, r)
        assert xs.max() >= 1.0
