"""Unit tests for repro.core.replication (Sec. 6.3 two-tree)."""

import numpy as np
import pytest

from repro.core import (
    CutRegistry,
    GreedyConfig,
    Query,
    Workload,
    build_greedy_tree,
    build_two_tree_layout,
    combined_accessed,
    column_ge,
    column_lt,
    conjunction,
    leaf_sizes,
    per_query_accessed,
)
from repro.storage import Schema, Table, numeric


@pytest.fixture
def contention():
    """Two query families on different columns, tight block budget."""
    rng = np.random.default_rng(2)
    n = 10_000
    schema = Schema([numeric("x", (0.0, 100.0)), numeric("y", (0.0, 100.0))])
    table = Table(
        schema,
        {"x": rng.uniform(0, 100, n), "y": rng.uniform(0, 100, n)},
    )
    queries = []
    for i in range(3):
        lo = 15.0 * i
        queries.append(
            Query(
                conjunction([column_ge("x", lo), column_lt("x", lo + 8)]),
                name=f"x{i}",
            )
        )
        queries.append(
            Query(
                conjunction([column_ge("y", lo), column_lt("y", lo + 8)]),
                name=f"y{i}",
            )
        )
    workload = Workload(queries)
    registry = CutRegistry.from_workload(schema, workload)
    b = n // 5

    def builder(wl):
        return build_greedy_tree(
            schema, registry, table, wl, GreedyConfig(b)
        )

    return schema, table, workload, builder


class TestCombinedAccessed:
    def test_choice_picks_minimum(self, contention):
        _, table, workload, builder = contention
        t1 = builder(workload)
        t2 = builder(Workload([workload[1], workload[3], workload[5]]))
        choice, best = combined_accessed([t1, t2], workload, table)
        s1 = leaf_sizes(t1, table)
        s2 = leaf_sizes(t2, table)
        a1 = per_query_accessed(t1, workload, s1)
        a2 = per_query_accessed(t2, workload, s2)
        np.testing.assert_array_equal(best, np.minimum(a1, a2))
        np.testing.assert_array_equal(choice, (a2 < a1).astype(int))

    def test_single_tree_degenerate(self, contention):
        _, table, workload, builder = contention
        t1 = builder(workload)
        choice, best = combined_accessed([t1], workload, table)
        assert (choice == 0).all()


class TestTwoTreeLayout:
    def test_never_worse_than_single_tree(self, contention):
        _, table, workload, builder = contention
        single = builder(workload)
        sizes = leaf_sizes(single, table)
        single_total = int(per_query_accessed(single, workload, sizes).sum())
        layout = build_two_tree_layout(builder, workload, table)
        assert layout.total_accessed <= single_total

    def test_improves_under_contention(self, contention):
        _, table, workload, builder = contention
        single = builder(workload)
        sizes = leaf_sizes(single, table)
        single_total = int(per_query_accessed(single, workload, sizes).sum())
        layout = build_two_tree_layout(builder, workload, table)
        assert layout.total_accessed < single_total

    def test_both_trees_used(self, contention):
        _, table, workload, builder = contention
        layout = build_two_tree_layout(builder, workload, table)
        assert set(np.unique(layout.choice)) == {0, 1}

    def test_tree_for_query(self, contention):
        _, table, workload, builder = contention
        layout = build_two_tree_layout(builder, workload, table)
        for qi in range(len(workload)):
            assert layout.tree_for_query(qi) is layout.trees[layout.choice[qi]]

    def test_refinement_rounds_monotone(self, contention):
        _, table, workload, builder = contention
        base = build_two_tree_layout(
            builder, workload, table, refinement_rounds=0
        )
        refined = build_two_tree_layout(
            builder, workload, table, refinement_rounds=3
        )
        assert refined.total_accessed <= base.total_accessed

    def test_bad_worst_fraction_rejected(self, contention):
        _, table, workload, builder = contention
        with pytest.raises(ValueError):
            build_two_tree_layout(
                builder, workload, table, worst_fraction=0.0
            )
