"""Unit tests for repro.core.overlap (Sec. 6.2 data overlap)."""

import numpy as np
import pytest

from repro.core import (
    GreedyConfig,
    Hypercube,
    Interval,
    build_greedy_tree,
    build_overlap_layout,
    hypercubes_adjacent,
)
from repro.workloads import overlap_dataset


class TestAdjacency:
    def test_adjacent_on_one_dim(self):
        a = Hypercube({"x": Interval(0, 5), "y": Interval(0, 10)})
        b = Hypercube({"x": Interval(5, 9, False, True), "y": Interval(0, 10)})
        assert hypercubes_adjacent(a, b, ["x", "y"])

    def test_not_adjacent_gap(self):
        a = Hypercube({"x": Interval(0, 4), "y": Interval(0, 10)})
        b = Hypercube({"x": Interval(5, 9), "y": Interval(0, 10)})
        assert not hypercubes_adjacent(a, b, ["x", "y"])

    def test_not_adjacent_two_dims_differ(self):
        a = Hypercube({"x": Interval(0, 5), "y": Interval(0, 5)})
        b = Hypercube({"x": Interval(5, 9), "y": Interval(5, 9)})
        assert not hypercubes_adjacent(a, b, ["x", "y"])

    def test_identical_not_adjacent(self):
        a = Hypercube({"x": Interval(0, 5)})
        assert not hypercubes_adjacent(a, a, ["x"])

    def test_exclusive_bounds_must_touch(self):
        a = Hypercube({"x": Interval(0, 5, True, False)})
        b = Hypercube({"x": Interval(5, 9, False, True)})
        # Neither side includes 5: no shared face.
        assert not hypercubes_adjacent(a, b, ["x"])
        c = Hypercube({"x": Interval(5, 9, True, True)})
        assert hypercubes_adjacent(a, c, ["x"])


class TestOverlapLayout:
    @pytest.fixture
    def layout(self):
        ds = overlap_dataset(cluster_size=500, seed=0)
        tree = build_greedy_tree(
            ds.schema,
            ds.registry(),
            ds.table,
            ds.workload,
            GreedyConfig(ds.min_block_size, allow_small_children=True),
        )
        return ds, build_overlap_layout(tree, ds.table, ds.min_block_size)

    def test_small_leaves_replicated(self, layout):
        _, ol = layout
        assert ol.replicated_rows > 0
        assert ol.host_blocks

    def test_storage_overhead_tiny(self, layout):
        _, ol = layout
        assert 1.0 < ol.store.storage_overhead() < 1.05

    def test_every_row_stored_somewhere(self, layout):
        ds, ol = layout
        stored = set()
        for bids in ol.assignments.values():
            stored.update(bids)
        total = sum(len(b) for b in ol.assignments.values())
        assert len(ol.assignments) == ds.table.num_rows
        assert total >= ds.table.num_rows

    def test_redundancy_pruning_drops_hosted_small_block(self, layout):
        ds, ol = layout
        for query in ds.workload:
            pruned = ol.blocks_for_query(query)
            raw = ol.tree.route_query(query.predicate)
            assert set(pruned) <= set(raw)

    def test_queries_never_lose_rows(self, layout):
        """Correctness: pruned block sets still cover all matching rows."""
        ds, ol = layout
        columns = ds.table.columns()
        for query in ds.workload:
            matches = np.flatnonzero(query.predicate.evaluate(columns))
            covered = set()
            for bid in ol.blocks_for_query(query):
                # Identify member rows via the assignment map.
                covered.update(
                    row for row, blist in ol.assignments.items() if bid in blist
                )
            assert set(int(m) for m in matches) <= covered

    def test_overlap_reduces_total_access(self):
        """The Fig. 4 payoff: replication strictly reduces scanned rows."""
        ds = overlap_dataset(cluster_size=500, seed=0)
        registry = ds.registry()
        plain = build_greedy_tree(
            ds.schema, registry, ds.table, ds.workload,
            GreedyConfig(ds.min_block_size),
        )
        from repro.core import leaf_sizes, per_query_accessed

        sizes = leaf_sizes(plain, ds.table)
        plain_total = int(
            per_query_accessed(plain, ds.workload, sizes).sum()
        )
        relaxed = build_greedy_tree(
            ds.schema, registry, ds.table, ds.workload,
            GreedyConfig(ds.min_block_size, allow_small_children=True),
        )
        ol = build_overlap_layout(relaxed, ds.table, ds.min_block_size)
        overlap_total = 0
        for query in ds.workload:
            for bid in ol.blocks_for_query(query):
                overlap_total += ol.store.block(bid).num_rows
        assert overlap_total < plain_total

    def test_no_small_leaves_is_identity(self, mixed_schema, mixed_table):
        """Trees without sub-b leaves come back without replication."""
        from repro.core import CutRegistry, QdTree, column_lt

        reg = CutRegistry(mixed_schema)
        reg.add(column_lt("age", 50))
        tree = QdTree(mixed_schema, reg)
        tree.apply_cut(tree.root, column_lt("age", 50))
        ol = build_overlap_layout(tree, mixed_table, min_block_size=10)
        assert ol.replicated_rows == 0
        assert ol.store.storage_overhead() == 1.0
