"""Unit tests for repro.bench (harness + reporting)."""

import numpy as np
import pytest

from repro.baselines import RandomPartitioner
from repro.bench import (
    build_baseline_layout,
    build_greedy_layout,
    build_rl_layout,
    format_cdf,
    format_series,
    format_table,
    logical_access_pct,
    run_physical,
    sample_for_construction,
)
from repro.engine import COMMERCIAL_DBMS, SPARK_PARQUET
from repro.workloads import disjunctive_dataset


@pytest.fixture(scope="module")
def dataset():
    return disjunctive_dataset(num_rows=10_000, seed=0)


class TestHarness:
    def test_sample_for_construction_full(self, dataset):
        sample, b = sample_for_construction(dataset, None)
        assert sample is dataset.table
        assert b == dataset.min_block_size

    def test_sample_for_construction_ratio(self, dataset):
        sample, b = sample_for_construction(dataset, 0.1)
        assert sample.num_rows == dataset.table.num_rows // 10
        assert b == max(1, round(dataset.min_block_size * 0.1))

    def test_greedy_layout(self, dataset):
        layout = build_greedy_layout(dataset)
        assert layout.tree is not None
        assert layout.num_blocks >= 2
        assert layout.build_seconds > 0
        assert layout.store.logical_rows == dataset.table.num_rows

    def test_rl_layout(self, dataset):
        layout = build_rl_layout(dataset, episodes=5, hidden_dim=16)
        assert layout.rl_result is not None
        assert layout.rl_result.episodes_run == 5

    def test_baseline_layout(self, dataset):
        layout = build_baseline_layout(
            dataset, RandomPartitioner(block_size=1000)
        )
        assert layout.tree is None
        assert layout.label == "random"

    def test_logical_access_pct_qdtree_beats_random(self, dataset):
        greedy = build_greedy_layout(dataset)
        random = build_baseline_layout(
            dataset, RandomPartitioner(block_size=1000)
        )
        assert logical_access_pct(greedy, dataset.workload) < (
            logical_access_pct(random, dataset.workload)
        )

    def test_run_physical_routing_vs_no_route(self, dataset):
        layout = build_greedy_layout(dataset)
        routed = run_physical(layout, dataset.workload, SPARK_PARQUET)
        no_route = run_physical(
            layout, dataset.workload, SPARK_PARQUET, use_routing=False
        )
        assert routed.total_tuples_scanned <= no_route.total_tuples_scanned
        assert "no route" in no_route.label

    def test_run_physical_profiles_differ(self, dataset):
        layout = build_greedy_layout(dataset)
        parquet = run_physical(layout, dataset.workload, SPARK_PARQUET)
        dbms = run_physical(layout, dataset.workload, COMMERCIAL_DBMS)
        assert parquet.total_modeled_ms != dbms.total_modeled_ms


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(
            ["name", "value"], [["a", 1], ["long-name", 123.456]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_cdf(self):
        xs = np.linspace(0, 1, 100)
        ys = np.arange(1, 101) / 100
        out = format_cdf(xs, ys, label="latency")
        assert "p 50" in out and "p100" in out

    def test_format_cdf_empty(self):
        out = format_cdf(np.empty(0), np.empty(0))
        assert "empty" in out

    def test_format_series_subsamples(self):
        points = [(float(i), float(i * i)) for i in range(1000)]
        out = format_series(points, max_points=10)
        assert len(out.splitlines()) <= 13
        assert "999" in out  # last point always present

    def test_format_series_empty(self):
        assert "empty" in format_series([])
