"""Failure-injection and edge-case tests across the stack."""

import json

import numpy as np
import pytest

from repro.core import (
    CutRegistry,
    GreedyConfig,
    QdTree,
    Query,
    Workload,
    build_greedy_tree,
    column_eq,
    column_lt,
)
from repro.engine import SPARK_PARQUET, ScanEngine
from repro.storage import (
    BlockStore,
    Schema,
    Table,
    load_store,
    numeric,
    save_store,
)


class TestCorruptedCatalog:
    def test_missing_block_file(self, mixed_table, tmp_path):
        store = BlockStore.from_assignment(
            mixed_table, np.arange(mixed_table.num_rows) % 2
        )
        save_store(store, tmp_path / "s")
        (tmp_path / "s" / "block-1.npz").unlink()
        with pytest.raises(FileNotFoundError):
            load_store(tmp_path / "s")

    def test_truncated_catalog_json(self, mixed_table, tmp_path):
        store = BlockStore.from_assignment(
            mixed_table, np.zeros(mixed_table.num_rows, dtype=np.int64)
        )
        save_store(store, tmp_path / "s")
        (tmp_path / "s" / "catalog.json").write_text("{not json")
        with pytest.raises(json.JSONDecodeError):
            load_store(tmp_path / "s")


class TestTreeDeserializationGuards:
    def test_wrong_registry_order_detected(self, mixed_schema, mixed_table):
        reg = CutRegistry(mixed_schema)
        reg.add(column_lt("age", 40))
        reg.add(column_eq("city", 1))
        tree = QdTree(mixed_schema, reg)
        tree.apply_cut(tree.root, column_lt("age", 40))
        data = tree.to_dict()
        # A registry with different cut order: cut index 0 points at a
        # different predicate.  Deserialization must not silently build
        # a different tree when ids stop lining up.
        other = CutRegistry(mixed_schema)
        other.add(column_eq("city", 1))
        other.add(column_lt("age", 40))
        rebuilt = QdTree.from_dict(data, mixed_schema, other)
        # Ids still line up here (single cut), so the tree builds but
        # routes differently; verify the mismatch is observable.
        original = tree.route_table(mixed_table)
        swapped = rebuilt.route_table(mixed_table)
        assert (original != swapped).any()


class TestDegenerateWorkloads:
    def test_greedy_with_always_true_cut_space(self, mixed_schema, mixed_table):
        """Cuts that never discriminate leave the singleton tree."""
        wl = Workload([Query(column_lt("age", 10_000), name="all")])
        reg = CutRegistry.from_workload(mixed_schema, wl)
        tree = build_greedy_tree(
            mixed_schema, reg, mixed_table, wl, GreedyConfig(100)
        )
        assert len(tree.leaves()) == 1

    def test_greedy_with_empty_match_query(self, mixed_schema, mixed_table):
        wl = Workload([Query(column_lt("age", -5), name="none")])
        reg = CutRegistry.from_workload(mixed_schema, wl)
        tree = build_greedy_tree(
            mixed_schema, reg, mixed_table, wl, GreedyConfig(100)
        )
        # The cut age < -5 produces an empty child: illegal, no split.
        assert len(tree.leaves()) == 1

    def test_engine_on_empty_store(self, mixed_schema):
        store = BlockStore(mixed_schema, [])
        engine = ScanEngine(store, SPARK_PARQUET)
        q = Query(column_lt("age", 10), name="q")
        stats = engine.execute(q)
        assert stats.blocks_scanned == 0
        assert stats.rows_returned == 0

    def test_single_row_table_routing(self):
        schema = Schema([numeric("x", (0.0, 10.0))])
        table = Table(schema, {"x": np.array([5.0])})
        reg = CutRegistry(schema)
        reg.add(column_lt("x", 5))
        tree = QdTree(schema, reg)
        tree.apply_cut(tree.root, column_lt("x", 5))
        assignment = tree.route_table(table)
        # 5.0 fails x < 5: routed right.
        assert assignment[0] == tree.root.right.node_id

    def test_route_columns_empty_batch(self, mixed_schema):
        reg = CutRegistry(mixed_schema)
        reg.add(column_lt("age", 40))
        tree = QdTree(mixed_schema, reg)
        tree.apply_cut(tree.root, column_lt("age", 40))
        empty = {
            name: np.empty(0)
            for name in mixed_schema.column_names
        }
        out = tree.route_columns(empty, 0)
        assert len(out) == 0


class TestQueryEdgeCases:
    def test_query_outside_all_domains(self, mixed_schema, mixed_table):
        reg = CutRegistry(mixed_schema)
        reg.add(column_lt("age", 40))
        tree = QdTree(mixed_schema, reg)
        tree.apply_cut(tree.root, column_lt("age", 40))
        tree.assign_block_ids()
        bids = tree.route_query(column_lt("age", -100))
        assert bids == []  # domain-bounded root: nothing can match

    def test_unseen_categorical_code(self, mixed_schema, mixed_table):
        reg = CutRegistry(mixed_schema)
        reg.add(column_eq("city", 0))
        tree = QdTree(mixed_schema, reg)
        tree.apply_cut(tree.root, column_eq("city", 0))
        tree.assign_block_ids()
        # Code 99 is outside the dictionary: conservatively no block
        # may contain it.
        assert tree.route_query(column_eq("city", 99)) == []
