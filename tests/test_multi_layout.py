"""Differential suite for cost-arbitrated multi-layout serving.

The ISSUE 4 acceptance bar:

* ``db.serve_multi`` results are **bit-identical** (``result_key`` +
  row ids) to single-layout execution on the layout the arbiter
  picked;
* a skewed two-template workload shows the arbiter picking different
  winning layouts per template (win counts both > 0);
* total blocks scanned under arbitration ≤ the best single layout's
  total.

The fixture builds two deliberately complementary layouts over one
table: a range partition on ``x`` (tight x min-max per block, random
y) and a range partition on ``y`` — so x-template queries prune far
better on the first and y-template queries on the second.  A greedy
qd-tree layout joins as a third candidate in the routed test so the
arbiter also exercises tree routing.
"""

import numpy as np
import pytest

from repro.db import Database
from repro.sql import SqlPlanner
from repro.storage import Schema, Table, categorical, numeric

X_TEMPLATE = [f"SELECT x FROM t WHERE x >= {lo} AND x < {lo + 6}" for lo in (3, 17, 31, 45, 59, 73, 87)]
Y_TEMPLATE = [f"SELECT y FROM t WHERE y >= {lo:.2f} AND y < {lo + 0.06:.2f}" for lo in (0.03, 0.17, 0.31, 0.45, 0.59, 0.73, 0.87)]
WORKLOAD = [sql for pair in zip(X_TEMPLATE, Y_TEMPLATE) for sql in pair]


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(7)
    schema = Schema(
        [
            numeric("x", (0.0, 100.0)),
            numeric("y", (0.0, 1.0)),
            categorical("kind", ["a", "b", "c"]),
        ]
    )
    n = 8000
    table = Table(
        schema,
        {
            "x": rng.uniform(0, 100, n),
            "y": rng.uniform(0, 1, n),
            "kind": rng.integers(0, 3, n),
        },
    )
    return Database.from_table(table, min_block_size=400)


@pytest.fixture(scope="module")
def layouts(db):
    by_x = db.build_layout("range", column="x", label="by-x")
    by_y = db.build_layout("range", column="y", label="by-y", activate=False)
    return by_x, by_y


def ground_truth_ids(db, sql):
    query = SqlPlanner(db.schema).plan(sql).query
    mask = query.predicate.evaluate(db.table.columns())
    return np.flatnonzero(mask)


def single_layout_blocks(db, handle, statements):
    """Total blocks scanned executing every statement on ONE layout,
    uncached (the per-layout baseline the arbiter must beat or match)."""
    total = 0
    pipe_cacheless = None
    from repro.exec import serial_pipeline
    from repro.engine import ScanEngine
    from repro.core.router import QueryRouter

    engine = ScanEngine(
        handle.store, num_advanced_cuts=handle.num_advanced_cuts
    )
    router = QueryRouter(handle.tree) if handle.tree is not None else None
    pipe_cacheless = serial_pipeline(db.planner, engine, router, handle.store)
    for sql in statements:
        total += pipe_cacheless.execute(sql).stats.blocks_scanned
    return total


class TestMultiLayoutDifferential:
    def test_bit_identical_to_winning_single_layout(self, db, layouts):
        by_x, by_y = layouts
        handles = {"by-x": by_x, "by-y": by_y}
        with db.serve_multi([by_x, by_y], result_cache=False) as multi:
            for sql in WORKLOAD:
                served = multi.execute_sql(sql)
                assert served.winner in handles
                winner = handles[served.winner]
                # Single-layout execution on the winning layout (the
                # library path runs the identical pipeline stages).
                expected = db.execute(sql, layout=winner)
                assert served.stats.result_key() == expected.stats.result_key()
                # Row ids are layout-independent ground truth.
                np.testing.assert_array_equal(
                    multi.collect_row_ids(sql), ground_truth_ids(db, sql)
                )

    def test_skewed_templates_split_across_layouts(self, db, layouts):
        by_x, by_y = layouts
        with db.serve_multi([by_x, by_y], result_cache=False) as multi:
            x_winners = {multi.execute_sql(s).winner for s in X_TEMPLATE}
            y_winners = {multi.execute_sql(s).winner for s in Y_TEMPLATE}
            wins = multi.win_counts
            snapshot_wins = dict(multi.snapshot().layout_wins)
        # Each template is served by the layout partitioned on its
        # column; both layouts genuinely win queries.
        assert x_winners == {"by-x"}
        assert y_winners == {"by-y"}
        assert wins["by-x"] == len(X_TEMPLATE)
        assert wins["by-y"] == len(Y_TEMPLATE)
        assert snapshot_wins == wins
        assert all(count > 0 for count in wins.values())

    def test_total_blocks_scanned_le_best_single_layout(self, db, layouts):
        by_x, by_y = layouts
        with db.serve_multi([by_x, by_y], result_cache=False) as multi:
            arbitrated = sum(
                multi.execute_sql(sql).stats.blocks_scanned for sql in WORKLOAD
            )
        per_layout = {
            handle.label: single_layout_blocks(db, handle, WORKLOAD)
            for handle in (by_x, by_y)
        }
        best_single = min(per_layout.values())
        assert arbitrated <= best_single, (
            f"arbitration scanned {arbitrated} blocks, best single "
            f"layout {per_layout} scanned {best_single}"
        )
        # Non-vacuous: the skewed workload makes arbitration strictly
        # better than either layout alone.
        assert arbitrated < best_single

    def test_arbiter_scores_expose_the_decision(self, db, layouts):
        by_x, by_y = layouts
        with db.serve_multi([by_x, by_y], result_cache=False) as multi:
            scores = dict(multi.arbiter_scores(X_TEMPLATE[0]))
        # (blocks surviving, estimated bytes): the x-partitioned layout
        # survives strictly fewer blocks on an x-range query.
        assert scores["by-x"][0] < scores["by-y"][0]


class TestMultiLayoutService:
    def test_default_serves_every_built_layout(self, db, layouts):
        with db.serve_multi(result_cache=False) as multi:
            assert len(multi.bindings) == len(db.layouts())

    def test_requires_known_handles(self, db, layouts):
        other = Database.from_table(db.table, min_block_size=500)
        foreign = other.build_layout("range", column="x")
        with pytest.raises(ValueError, match="unknown layout handle"):
            db.serve_multi([foreign])

    def test_no_layouts_is_an_error(self, db):
        fresh = Database.from_table(db.table, min_block_size=500)
        with pytest.raises(ValueError, match="no layouts"):
            fresh.serve_multi()

    def test_stale_generations_excluded_after_ingest(self):
        """A pre-ingest layout is missing rows, so arbitrating over it
        would serve wrong (and arbiter-preferred!) results: the
        default candidate set excludes superseded data versions, and
        an explicit stale mix is refused outright."""
        schema = Schema([numeric("x", (0.0, 100.0))])

        def batch(n, seed):
            return Table(
                schema,
                {"x": np.random.default_rng(seed).uniform(0, 100, n)},
            )

        db = Database.from_table(batch(4000, 0), min_block_size=400)
        stale = db.build_layout("range", column="x", label="stale")
        db.build_layout("greedy", workload=["SELECT x FROM t WHERE x < 10"])
        db.ingest(batch(1000, 1))  # new generation; 'stale' lacks rows
        current = db.active_layout
        with db.serve_multi(result_cache=False) as multi:
            assert {b.generation for b in multi.bindings} == {
                current.generation
            }
            served = multi.execute_sql("SELECT x FROM t WHERE x < 10")
        truth = int((db.table.column("x") < 10).sum())
        assert served.stats.rows_returned == truth
        with pytest.raises(ValueError, match="different data versions"):
            db.serve_multi([stale, current])

    def test_tree_layout_participates_in_arbitration(self, db, layouts):
        by_x, by_y = layouts
        greedy = db.build_layout(
            "greedy", workload=WORKLOAD, label="greedy", activate=False
        )
        try:
            with db.serve_multi(
                [by_x, by_y, greedy], result_cache=False
            ) as multi:
                for sql in (X_TEMPLATE[0], Y_TEMPLATE[0]):
                    served = multi.execute_sql(sql)
                    np.testing.assert_array_equal(
                        multi.collect_row_ids(sql), ground_truth_ids(db, sql)
                    )
                    assert served.stats.rows_returned == len(
                        ground_truth_ids(db, sql)
                    )
        finally:
            db.drop_layout(greedy)

    def test_concurrent_submission_matches_serial(self, db, layouts):
        by_x, by_y = layouts
        with db.serve_multi([by_x, by_y], result_cache=False, max_workers=4) as multi:
            replay = multi.run_closed_loop(WORKLOAD, repeat=3)
        assert replay.completed == 3 * len(WORKLOAD)
        truth = {sql: len(ground_truth_ids(db, sql)) for sql in WORKLOAD}
        for result in replay.results:
            assert result.stats.rows_returned == truth[result.sql]

    def test_result_cache_keys_on_winning_generation(self, db, layouts):
        from repro.serve import ResultCache

        by_x, by_y = layouts
        cache = ResultCache()
        with db.serve_multi([by_x, by_y], result_cache=cache) as multi:
            multi.execute_sql(X_TEMPLATE[0])
            multi.execute_sql(Y_TEMPLATE[0])
            repeat = multi.execute_sql(X_TEMPLATE[0])
        assert repeat.cached
        assert sorted(cache.generations()) == sorted(
            {by_x.generation, by_y.generation}
        )

    def test_report_lists_wins(self, db, layouts):
        by_x, by_y = layouts
        with db.serve_multi([by_x, by_y], result_cache=False) as multi:
            multi.execute_sql(X_TEMPLATE[0])
            report = multi.report()
        assert "layout wins" in report
        assert "by-x" in report
        assert "arbiter" in report
