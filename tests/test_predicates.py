"""Unit tests for repro.core.predicates."""

import numpy as np
import pytest

from repro.core import (
    AdvancedCut,
    And,
    ColumnPredicate,
    Not,
    Op,
    Or,
    TruePredicate,
    column_eq,
    column_ge,
    column_gt,
    column_in,
    column_le,
    column_lt,
    conjunction,
    disjunction,
)

DATA = {
    "x": np.array([1.0, 5.0, 10.0, 15.0]),
    "y": np.array([0.0, 1.0, 0.0, 1.0]),
    "c": np.array([0, 1, 2, 1]),
}


class TestColumnPredicate:
    @pytest.mark.parametrize(
        "pred,expected",
        [
            (column_lt("x", 10), [True, True, False, False]),
            (column_le("x", 10), [True, True, True, False]),
            (column_gt("x", 5), [False, False, True, True]),
            (column_ge("x", 5), [False, True, True, True]),
            (column_eq("x", 5), [False, True, False, False]),
            (column_in("c", [0, 2]), [True, False, True, False]),
        ],
    )
    def test_evaluate(self, pred, expected):
        assert pred.evaluate(DATA).tolist() == expected

    def test_comparison_requires_one_literal(self):
        with pytest.raises(ValueError):
            ColumnPredicate("x", Op.LT, [1, 2])

    def test_in_requires_literals(self):
        with pytest.raises(ValueError):
            ColumnPredicate("x", Op.IN, [])

    @pytest.mark.parametrize(
        "pred",
        [
            column_lt("x", 10),
            column_le("x", 10),
            column_gt("x", 10),
            column_ge("x", 10),
            column_eq("c", 1),
            column_in("c", [0, 2]),
        ],
    )
    def test_negation_is_complement(self, pred):
        mask = pred.evaluate(DATA)
        neg = pred.negate().evaluate(DATA)
        assert (mask ^ neg).all()

    def test_double_negation_identity(self):
        pred = column_lt("x", 10)
        assert pred.negate().negate() == pred

    def test_equality_ignores_in_order(self):
        assert column_in("c", [0, 2]) == column_in("c", [2, 0])
        assert hash(column_in("c", [0, 2])) == hash(column_in("c", [2, 0]))

    def test_repr(self):
        assert repr(column_lt("x", 10)) == "x < 10"
        assert repr(column_in("c", [0, 2])) == "c IN (0,2)"

    def test_referenced_columns(self):
        assert column_lt("x", 1).referenced_columns() == {"x"}


class TestBooleanOperators:
    def test_and_evaluate(self):
        pred = And([column_ge("x", 5), column_lt("x", 15)])
        assert pred.evaluate(DATA).tolist() == [False, True, True, False]

    def test_or_evaluate(self):
        pred = Or([column_lt("x", 2), column_gt("x", 12)])
        assert pred.evaluate(DATA).tolist() == [True, False, False, True]

    def test_not_evaluate(self):
        pred = Not(column_eq("c", 1))
        assert pred.evaluate(DATA).tolist() == [True, False, True, False]

    def test_de_morgan_and(self):
        pred = And([column_ge("x", 5), column_eq("c", 1)])
        neg = pred.negate()
        assert isinstance(neg, Or)
        assert (pred.evaluate(DATA) ^ neg.evaluate(DATA)).all()

    def test_de_morgan_or(self):
        pred = Or([column_lt("x", 3), column_eq("c", 2)])
        neg = pred.negate()
        assert isinstance(neg, And)
        assert (pred.evaluate(DATA) ^ neg.evaluate(DATA)).all()

    def test_operator_sugar(self):
        both = column_ge("x", 5) & column_lt("x", 15)
        either = column_lt("x", 2) | column_gt("x", 12)
        inverted = ~column_eq("c", 1)
        assert both.evaluate(DATA).tolist() == [False, True, True, False]
        assert either.evaluate(DATA).tolist() == [True, False, False, True]
        assert inverted.evaluate(DATA).tolist() == [True, False, True, False]

    def test_empty_children_rejected(self):
        with pytest.raises(ValueError):
            And([])
        with pytest.raises(ValueError):
            Or([])

    def test_leaves_flattening(self):
        pred = And(
            [column_lt("x", 3), Or([column_eq("c", 1), column_gt("y", 0)])]
        )
        assert len(pred.leaves()) == 3

    def test_referenced_columns_union(self):
        pred = And([column_lt("x", 3), column_eq("c", 1)])
        assert pred.referenced_columns() == {"x", "c"}


class TestConjunctionDisjunction:
    def test_conjunction_flattens(self):
        pred = conjunction(
            [And([column_lt("x", 3), column_gt("y", 0)]), column_eq("c", 1)]
        )
        assert isinstance(pred, And)
        assert len(pred.children) == 3

    def test_conjunction_drops_true(self):
        pred = conjunction([TruePredicate(), column_lt("x", 3)])
        assert pred == column_lt("x", 3)

    def test_conjunction_empty_is_true(self):
        assert isinstance(conjunction([]), TruePredicate)

    def test_disjunction_flattens(self):
        pred = disjunction(
            [Or([column_lt("x", 3), column_gt("x", 12)]), column_eq("c", 1)]
        )
        assert isinstance(pred, Or)
        assert len(pred.children) == 3

    def test_disjunction_single(self):
        assert disjunction([column_lt("x", 3)]) == column_lt("x", 3)

    def test_disjunction_empty_raises(self):
        with pytest.raises(ValueError):
            disjunction([])


class TestAdvancedCut:
    def make(self, positive=True):
        return AdvancedCut(
            "x > y",
            0,
            lambda cols: cols["x"] > cols["y"],
            columns=("x", "y"),
            positive=positive,
        )

    def test_evaluate(self):
        assert self.make().evaluate(DATA).tolist() == [True, True, True, True]

    def test_negation(self):
        cut = self.make()
        neg = cut.negate()
        assert not neg.positive
        assert (cut.evaluate(DATA) ^ neg.evaluate(DATA)).all()
        assert neg.negate() == cut

    def test_equality_by_index_and_polarity(self):
        other = AdvancedCut("anything", 0, lambda c: c["x"] > 0)
        assert self.make() == other
        assert self.make() != self.make().negate()

    def test_referenced_columns(self):
        assert self.make().referenced_columns() == {"x", "y"}

    def test_repr_shows_index(self):
        assert "AC0" in repr(self.make())


class TestTruePredicate:
    def test_evaluate_all_true(self):
        assert TruePredicate().evaluate(DATA).all()

    def test_negate_roundtrip(self):
        t = TruePredicate()
        assert (~t).evaluate(DATA).sum() == 0
        assert (~~t) == t

    def test_no_leaves(self):
        assert TruePredicate().leaves() == ()
