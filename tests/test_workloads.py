"""Unit tests for repro.workloads generators."""

import numpy as np
import pytest

from repro.workloads import (
    disjunctive_dataset,
    errorlog_ext_dataset,
    errorlog_int_dataset,
    overlap_dataset,
    tpch_dataset,
)
from repro.workloads.tpch import (
    NATIONS,
    REGIONS,
    TPCH_TEMPLATES,
    advanced_cuts,
    generate_table,
    generate_workload,
)


class TestTpchTable:
    @pytest.fixture(scope="class")
    def table(self):
        return generate_table(num_rows=20_000, seed=0)

    def test_row_count_and_columns(self, table):
        assert table.num_rows == 20_000
        assert len(table.schema) == 27

    def test_date_consistency(self, table):
        """receiptdate follows shipdate; orderdate precedes it."""
        ship = table.column("l_shipdate")
        receipt = table.column("l_receiptdate")
        order = table.column("o_orderdate")
        assert (receipt > ship).all()
        assert (order < ship).all()

    def test_nation_region_join_consistent(self, table):
        """Denormalized cr_name matches c_nationkey's region."""
        nation_to_region = {
            i: REGIONS.index(region) for i, (_, region) in enumerate(NATIONS)
        }
        c_nation = table.column("c_nationkey").astype(int)
        cr = table.column("cr_name")
        expected = np.array([nation_to_region[k] for k in c_nation])
        np.testing.assert_array_equal(cr, expected)

    def test_nation_name_matches_key(self, table):
        cn = table.column("cn_name")
        key = table.column("c_nationkey").astype(int)
        np.testing.assert_array_equal(cn, key)

    def test_discounts_are_percents(self, table):
        discounts = np.unique(table.column("l_discount"))
        assert discounts.min() >= 0.0 and discounts.max() <= 0.10
        assert len(discounts) == 11

    def test_deterministic_by_seed(self):
        a = generate_table(1000, seed=3)
        b = generate_table(1000, seed=3)
        np.testing.assert_array_equal(
            a.column("l_shipdate"), b.column("l_shipdate")
        )


class TestTpchWorkload:
    @pytest.fixture(scope="class")
    def dataset(self):
        return tpch_dataset(num_rows=20_000, seeds_per_template=3, seed=0)

    def test_all_templates_present(self, dataset):
        assert set(dataset.workload.templates()) == set(TPCH_TEMPLATES)

    def test_instances_per_template(self, dataset):
        groups = dataset.workload.by_template()
        assert all(len(v) == 3 for v in groups.values())

    def test_advanced_cuts_registered(self, dataset):
        registry = dataset.registry()
        assert registry.num_advanced_cuts == 3
        names = {c.name for c in registry.advanced_cuts}
        assert "c_nationkey = s_nationkey" in names

    def test_advanced_cut_evaluation(self, dataset):
        ac0, ac1, ac2 = advanced_cuts()
        cols = dataset.table.columns()
        np.testing.assert_array_equal(
            ac0.evaluate(cols), cols["c_nationkey"] == cols["s_nationkey"]
        )
        np.testing.assert_array_equal(
            ac2.evaluate(cols), cols["l_commitdate"] < cols["l_receiptdate"]
        )

    def test_selectivity_in_plausible_band(self, dataset):
        """Paper reports 21.3%; shape check: between 5% and 40%."""
        sel = dataset.workload.selectivity(dataset.table)
        assert 0.05 < sel < 0.40

    def test_scan_all_templates_exist(self, dataset):
        """q1/q18 instances select most of the partition (paper)."""
        counts = dataset.workload.selected_counts(dataset.table)
        by_query = {
            q.template: c / dataset.table.num_rows
            for q, c in zip(dataset.workload, counts)
        }
        assert by_query["q1"] > 0.7
        assert by_query["q18"] > 0.7

    def test_some_instances_miss_partition(self, dataset):
        counts = dataset.workload.selected_counts(dataset.table)
        assert (counts == 0).sum() > 0

    def test_test_workload_generation(self):
        ds = tpch_dataset(
            num_rows=5000, seeds_per_template=2, test_seeds_per_template=3
        )
        assert ds.test_workload is not None
        assert len(ds.test_workload) == 3 * len(TPCH_TEMPLATES)

    def test_workload_reproducible(self, dataset):
        wl = generate_workload(dataset.schema, seeds_per_template=3, seed=1)
        assert repr(wl.queries[0].predicate) == repr(
            dataset.workload.queries[0].predicate
        )


class TestErrorLogInt:
    @pytest.fixture(scope="class")
    def dataset(self):
        return errorlog_int_dataset(num_rows=30_000, num_queries=200, seed=0)

    def test_shape(self, dataset):
        assert len(dataset.schema) == 50
        assert len(dataset.workload) == 200

    def test_event_type_domain(self, dataset):
        assert dataset.schema["event_type"].domain_size == 8

    def test_tiny_selectivity(self, dataset):
        sel = dataset.workload.selectivity(dataset.table)
        assert sel < 0.005  # well under 0.5%

    def test_queries_nonempty(self, dataset):
        """Seed-row anchoring guarantees at least one matching row."""
        counts = dataset.workload.selected_counts(dataset.table)
        assert (counts >= 1).all()

    def test_version_build_date_correlated(self, dataset):
        version = dataset.table.column("os_version")
        build = dataset.table.column("os_build_date")
        # Build dates fall inside the version's 25-day band.
        assert ((build >= version * 25) & (build < (version + 1) * 25)).all()


class TestErrorLogExt:
    @pytest.fixture(scope="class")
    def dataset(self):
        return errorlog_ext_dataset(
            num_rows=30_000, num_queries=200, num_apps=500, seed=0
        )

    def test_shape(self, dataset):
        assert len(dataset.schema) == 58
        assert dataset.schema["app_id"].domain_size == 500

    def test_selectivity_higher_than_int(self, dataset):
        int_ds = errorlog_int_dataset(num_rows=30_000, num_queries=200, seed=0)
        assert dataset.workload.selectivity(dataset.table) > (
            int_ds.workload.selectivity(int_ds.table)
        )

    def test_app_popularity_skewed(self, dataset):
        apps, counts = np.unique(
            dataset.table.column("app_id"), return_counts=True
        )
        assert counts.max() > 10 * counts.mean()


class TestMicrobench:
    def test_disjunctive_shape(self):
        ds = disjunctive_dataset(num_rows=5000, seed=0)
        assert ds.table.num_rows == 5000
        assert len(ds.workload) == 2
        assert len(ds.registry()) == 3

    def test_overlap_center_record_shared(self):
        ds = overlap_dataset(cluster_size=100, seed=0)
        counts = ds.workload.selected_counts(ds.table)
        assert counts.tolist() == [101, 101, 101, 101]
        # The four queries share exactly one row.
        columns = ds.table.columns()
        masks = [q.predicate.evaluate(columns) for q in ds.workload]
        shared = masks[0] & masks[1] & masks[2] & masks[3]
        assert shared.sum() == 1
