"""Unit tests for repro.sql (lexer, parser, planner)."""

import numpy as np
import pytest

from repro.core import (
    AdvancedCut,
    And,
    Not,
    Or,
    column_eq,
    column_ge,
    column_in,
    column_le,
    column_lt,
)
from repro.sql import (
    SqlPlanner,
    SqlSyntaxError,
    TokenType,
    like_to_regex,
    parse_predicate,
    tokenize,
)


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("a < 10 AND b = 'x'")
        kinds = [t.type for t in tokens]
        assert kinds == [
            TokenType.IDENT,
            TokenType.OPERATOR,
            TokenType.NUMBER,
            TokenType.KEYWORD,
            TokenType.IDENT,
            TokenType.OPERATOR,
            TokenType.STRING,
            TokenType.END,
        ]

    def test_multichar_operators(self):
        tokens = tokenize("a <= 1 b >= 2 c <> 3")
        ops = [t.value for t in tokens if t.type is TokenType.OPERATOR]
        assert ops == ["<=", ">=", "<>"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("name = 'O''Brien'")
        assert tokens[2].value == "O'Brien"

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a = 'oops")

    def test_negative_and_scientific_numbers(self):
        tokens = tokenize("x < -1.5 AND y > 2e3")
        nums = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert nums == ["-1.5", "2e3"]

    def test_qualified_identifier(self):
        tokens = tokenize("R.a < 10")
        assert tokens[0].value == "R.a"

    def test_keywords_case_insensitive(self):
        tokens = tokenize("a in (1) and b like 'x'")
        keywords = [t.value for t in tokens if t.type is TokenType.KEYWORD]
        assert keywords == ["IN", "AND", "LIKE"]

    def test_unexpected_character_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a ; b")


class TestParser:
    def test_simple_comparison(self, mixed_schema):
        pred = parse_predicate("age < 30", mixed_schema)
        assert pred == column_lt("age", 30)

    def test_flipped_comparison(self, mixed_schema):
        pred = parse_predicate("30 > age", mixed_schema)
        assert pred == column_lt("age", 30)

    def test_qualified_column(self, mixed_schema):
        pred = parse_predicate("t.age >= 18", mixed_schema)
        assert pred == column_ge("age", 18)

    def test_string_literal_encoded(self, mixed_schema):
        pred = parse_predicate("city = 'sf'", mixed_schema)
        assert pred == column_eq("city", 1)

    def test_unknown_literal_raises(self, mixed_schema):
        with pytest.raises(SqlSyntaxError):
            parse_predicate("city = 'tokyo'", mixed_schema)

    def test_unknown_column_raises(self, mixed_schema):
        with pytest.raises(SqlSyntaxError):
            parse_predicate("bogus < 1", mixed_schema)

    def test_in_list(self, mixed_schema):
        pred = parse_predicate("city IN ('sf', 'nyc')", mixed_schema)
        assert pred == column_in("city", [1, 0])

    def test_not_in(self, mixed_schema):
        pred = parse_predicate("city NOT IN ('sf')", mixed_schema)
        assert isinstance(pred, Not)

    def test_between(self, mixed_schema):
        pred = parse_predicate("age BETWEEN 20 AND 30", mixed_schema)
        assert isinstance(pred, And)
        assert column_ge("age", 20) in pred.children
        assert column_le("age", 30) in pred.children

    def test_and_or_precedence(self, mixed_schema):
        pred = parse_predicate(
            "age < 10 OR age > 90 AND city = 'sf'", mixed_schema
        )
        # AND binds tighter: OR(age<10, AND(age>90, city=sf)).
        assert isinstance(pred, Or)
        assert pred.children[0] == column_lt("age", 10)
        assert isinstance(pred.children[1], And)

    def test_parentheses_override(self, mixed_schema):
        pred = parse_predicate(
            "(age < 10 OR age > 90) AND city = 'sf'", mixed_schema
        )
        assert isinstance(pred, And)
        assert isinstance(pred.children[0], Or)

    def test_not_operator(self, mixed_schema):
        pred = parse_predicate("NOT age < 30", mixed_schema)
        assert pred == column_ge("age", 30)

    def test_neq_operator(self, mixed_schema):
        pred = parse_predicate("city <> 'sf'", mixed_schema)
        assert isinstance(pred, Not)

    def test_range_op_on_categorical_raises(self, mixed_schema):
        with pytest.raises(SqlSyntaxError):
            parse_predicate("city > 'sf'", mixed_schema)

    def test_trailing_garbage_raises(self, mixed_schema):
        with pytest.raises(SqlSyntaxError):
            parse_predicate("age < 30 age", mixed_schema)

    def test_binary_comparison_becomes_advanced_cut(self, mixed_schema):
        registry = {}
        pred = parse_predicate(
            "age > salary", mixed_schema, advanced_registry=registry
        )
        assert isinstance(pred, AdvancedCut)
        assert pred.index == 0
        data = {"age": np.array([10.0, 90.0]), "salary": np.array([50.0, 50.0])}
        assert pred.evaluate(data).tolist() == [False, True]

    def test_same_binary_comparison_shares_slot(self, mixed_schema):
        registry = {}
        p1 = parse_predicate("age > salary", mixed_schema, registry)
        p2 = parse_predicate("age > salary", mixed_schema, registry)
        assert p1.index == p2.index
        p3 = parse_predicate("salary > age", mixed_schema, registry)
        assert p3.index != p1.index

    def test_evaluation_matches_numpy(self, mixed_schema, mixed_table):
        pred = parse_predicate(
            "(age < 25 OR age >= 75) AND city IN ('sf','aus')", mixed_schema
        )
        age = mixed_table.column("age")
        city = mixed_table.column("city")
        expected = ((age < 25) | (age >= 75)) & np.isin(city, [1, 3])
        np.testing.assert_array_equal(
            pred.evaluate(mixed_table.columns()), expected
        )


class TestLike:
    def test_like_regex(self):
        regex = like_to_regex("ab%c_")
        assert regex.match("abXYZcQ")
        assert not regex.match("abXYZc")

    def test_like_compiles_to_in(self, mixed_schema):
        pred = parse_predicate("city LIKE 's%'", mixed_schema)
        assert pred == column_in("city", [1, 2])  # sf, sea

    def test_like_no_match_is_contradiction(self, mixed_schema, mixed_table):
        pred = parse_predicate("city LIKE 'zzz%'", mixed_schema)
        assert not pred.evaluate(mixed_table.columns()).any()

    def test_like_on_numeric_raises(self, mixed_schema):
        with pytest.raises(SqlSyntaxError):
            parse_predicate("age LIKE '1%'", mixed_schema)

    def test_not_like(self, mixed_schema, mixed_table):
        pred = parse_predicate("city NOT LIKE 's%'", mixed_schema)
        city = mixed_table.column("city")
        np.testing.assert_array_equal(
            pred.evaluate(mixed_table.columns()), ~np.isin(city, [1, 2])
        )


class TestPlanner:
    def test_plan_extracts_projection(self, mixed_schema):
        planner = SqlPlanner(mixed_schema)
        planned = planner.plan(
            "SELECT age, salary FROM t WHERE age < 30"
        )
        assert planned.projection == ("age", "salary")
        assert planned.table_name == "t"

    def test_plan_star_projection(self, mixed_schema):
        planner = SqlPlanner(mixed_schema)
        planned = planner.plan("SELECT * FROM t WHERE age < 30")
        assert planned.projection == mixed_schema.column_names

    def test_plan_unknown_projection_raises(self, mixed_schema):
        planner = SqlPlanner(mixed_schema)
        with pytest.raises(SqlSyntaxError):
            planner.plan("SELECT bogus FROM t WHERE age < 30")

    def test_plan_requires_where(self, mixed_schema):
        planner = SqlPlanner(mixed_schema)
        with pytest.raises(SqlSyntaxError):
            planner.plan("SELECT age FROM t")

    def test_plan_workload_and_cuts(self, mixed_schema):
        planner = SqlPlanner(mixed_schema)
        wl = planner.plan_workload(
            [
                "SELECT age FROM t WHERE age < 30 AND city = 'sf'",
                "SELECT age FROM t WHERE age < 30 OR salary > age",
            ]
        )
        assert len(wl) == 2
        registry = planner.candidate_cuts(wl)
        # age<30 dedups; city=sf; salary>age advanced cut.
        assert len(registry) == 3
        assert registry.num_advanced_cuts == 1

    def test_template_names(self, mixed_schema):
        planner = SqlPlanner(mixed_schema)
        wl = planner.plan_workload(
            ["SELECT age FROM t WHERE age < 30"], template_names=["t1"]
        )
        assert wl[0].template == "t1"
