"""Property-based tests (hypothesis) for core invariants.

These cover the load-bearing invariants of the system:

* interval algebra (intersection soundness, complements),
* columnar encodings (lossless roundtrips),
* predicate algebra (negation is complement, De Morgan),
* qd-tree routing (partition + completeness under random cut sequences),
* query routing (never misses a matching block),
* masked softmax (valid distribution over legal actions).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CutRegistry,
    Interval,
    QdTree,
    column_ge,
    column_gt,
    column_in,
    column_le,
    column_lt,
    conjunction,
    disjunction,
)
from repro.rl import masked_log_softmax
from repro.storage import Schema, Table, categorical, numeric
from repro.storage.columnar import decode_chunk, encode_column

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def intervals(draw):
    a = draw(finite_floats)
    b = draw(finite_floats)
    lo, hi = min(a, b), max(a, b)
    return Interval(lo, hi, draw(st.booleans()), draw(st.booleans()))


@st.composite
def unary_predicates(draw):
    column = draw(st.sampled_from(["x", "y"]))
    kind = draw(st.sampled_from(["lt", "le", "gt", "ge"]))
    value = draw(st.floats(min_value=0, max_value=100, allow_nan=False))
    builder = {
        "lt": column_lt,
        "le": column_le,
        "gt": column_gt,
        "ge": column_ge,
    }[kind]
    return builder(column, value)


@st.composite
def cat_predicates(draw):
    values = draw(st.lists(st.integers(0, 4), min_size=1, max_size=3))
    return column_in("c", sorted(set(values)))


@st.composite
def boolean_predicates(draw, depth=2):
    if depth == 0:
        return draw(st.one_of(unary_predicates(), cat_predicates()))
    kind = draw(st.sampled_from(["leaf", "and", "or", "not"]))
    if kind == "leaf":
        return draw(st.one_of(unary_predicates(), cat_predicates()))
    if kind == "not":
        return draw(boolean_predicates(depth=depth - 1)).negate()
    children = draw(
        st.lists(boolean_predicates(depth=depth - 1), min_size=2, max_size=3)
    )
    return conjunction(children) if kind == "and" else disjunction(children)


def make_schema() -> Schema:
    return Schema(
        [
            numeric("x", (0.0, 100.0)),
            numeric("y", (0.0, 100.0)),
            categorical("c", [0, 1, 2, 3, 4]),
        ]
    )


def make_table(seed: int, n: int = 400) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        make_schema(),
        {
            "x": rng.uniform(0, 100, n),
            "y": rng.uniform(0, 100, n),
            "c": rng.integers(0, 5, n),
        },
    )


# ----------------------------------------------------------------------
# Interval algebra
# ----------------------------------------------------------------------


class TestIntervalProperties:
    @given(intervals(), intervals(), finite_floats)
    def test_intersection_membership(self, a, b, point):
        both = a.intersect(b)
        assert both.contains(point) == (a.contains(point) and b.contains(point))

    @given(intervals(), intervals())
    def test_intersection_commutative(self, a, b):
        ab = a.intersect(b)
        ba = b.intersect(a)
        assert ab.is_empty == ba.is_empty
        if not ab.is_empty:
            assert (ab.lo, ab.hi, ab.lo_inclusive, ab.hi_inclusive) == (
                ba.lo,
                ba.hi,
                ba.lo_inclusive,
                ba.hi_inclusive,
            )

    @given(intervals(), finite_floats)
    def test_contains_interval_implies_membership(self, a, point):
        everything = Interval.everything()
        assert everything.contains_interval(a)
        if a.contains(point):
            assert everything.contains(point)

    @given(unary_predicates(), st.floats(0, 100, allow_nan=False))
    def test_from_predicate_matches_evaluation(self, pred, value):
        iv = Interval.from_predicate(pred)
        mask = pred.evaluate({pred.column: np.array([value])})
        assert iv.contains(value) == bool(mask[0])


# ----------------------------------------------------------------------
# Columnar encodings
# ----------------------------------------------------------------------


class TestEncodingProperties:
    @given(
        st.lists(st.integers(-(2**40), 2**40), min_size=0, max_size=300)
    )
    def test_int_roundtrip(self, values):
        arr = np.array(values, dtype=np.int64)
        np.testing.assert_array_equal(decode_chunk(encode_column(arr)), arr)

    @given(st.lists(finite_floats, min_size=0, max_size=300))
    def test_float_roundtrip(self, values):
        arr = np.array(values, dtype=np.float64)
        np.testing.assert_array_equal(decode_chunk(encode_column(arr)), arr)

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=500))
    def test_encoding_never_larger_than_plain(self, values):
        arr = np.array(values, dtype=np.int64)
        assert encode_column(arr).nbytes <= arr.nbytes


# ----------------------------------------------------------------------
# Predicate algebra
# ----------------------------------------------------------------------


class TestPredicateProperties:
    @given(boolean_predicates(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60)
    def test_negation_is_complement(self, pred, seed):
        table = make_table(seed % 100, n=150)
        mask = pred.evaluate(table.columns())
        neg = pred.negate().evaluate(table.columns())
        assert (mask ^ neg).all()

    @given(boolean_predicates())
    @settings(max_examples=60)
    def test_double_negation_semantics(self, pred):
        table = make_table(1, n=150)
        once = pred.evaluate(table.columns())
        twice = pred.negate().negate().evaluate(table.columns())
        np.testing.assert_array_equal(once, twice)


# ----------------------------------------------------------------------
# Qd-tree routing invariants
# ----------------------------------------------------------------------


def grow_random_tree(table, cuts, seed):
    """Apply a random sequence of legal cuts to build a tree."""
    registry = CutRegistry(table.schema)
    for cut in cuts:
        registry.add(cut)
    tree = QdTree(table.schema, registry)
    tree.attach_sample(table)
    rng = np.random.default_rng(seed)
    frontier = [tree.root]
    for _ in range(6):
        if not frontier:
            break
        node = frontier.pop(int(rng.integers(0, len(frontier))))
        candidates = list(registry.cuts)
        rng.shuffle(candidates)
        for cut in candidates:
            idx = node.sample_indices
            sub = {k: v[idx] for k, v in table.columns().items()}
            mask = cut.evaluate(sub)
            if 0 < mask.sum() < len(mask):
                left, right = tree.apply_cut(node, cut)
                frontier.extend([left, right])
                break
    tree.assign_block_ids()
    return tree


class TestRoutingProperties:
    @given(
        st.lists(
            st.one_of(unary_predicates(), cat_predicates()),
            min_size=1,
            max_size=6,
        ),
        st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_routing_is_a_partition(self, cuts, seed):
        table = make_table(seed % 7)
        tree = grow_random_tree(table, cuts, seed)
        assignment = tree.route_table(table)
        leaf_ids = {l.node_id for l in tree.leaves()}
        assert set(np.unique(assignment)) <= leaf_ids

    @given(
        st.lists(
            st.one_of(unary_predicates(), cat_predicates()),
            min_size=1,
            max_size=6,
        ),
        st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_completeness(self, cuts, seed):
        """Routed rows == rows matching the leaf description, exactly."""
        table = make_table(seed % 7)
        tree = grow_random_tree(table, cuts, seed)
        assignment = tree.route_table(table)
        columns = table.columns()
        for leaf in tree.leaves():
            desc_mask = leaf.description.matches_rows(columns)
            np.testing.assert_array_equal(
                desc_mask, assignment == leaf.node_id
            )

    @given(
        st.lists(
            st.one_of(unary_predicates(), cat_predicates()),
            min_size=1,
            max_size=5,
        ),
        boolean_predicates(),
        st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_query_routing_never_misses(self, cuts, query, seed):
        """Every row matching the query lives in a routed block."""
        table = make_table(seed % 7)
        tree = grow_random_tree(table, cuts, seed)
        bids = tree.route_to_blocks(table)
        routed = set(tree.route_query(query))
        matches = query.evaluate(table.columns())
        needed = set(np.unique(bids[matches]))
        assert needed <= routed

    @given(
        st.lists(
            st.one_of(unary_predicates(), cat_predicates()),
            min_size=1,
            max_size=5,
        ),
        boolean_predicates(),
        st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_freeze_preserves_soundness(self, cuts, query, seed):
        table = make_table(seed % 7)
        tree = grow_random_tree(table, cuts, seed)
        bids = tree.freeze(table)
        routed = set(tree.route_query(query))
        matches = query.evaluate(table.columns())
        needed = set(np.unique(bids[matches]))
        assert needed <= routed


# ----------------------------------------------------------------------
# Masked softmax
# ----------------------------------------------------------------------


class TestMaskedSoftmaxProperties:
    @given(
        st.lists(
            st.floats(-50, 50, allow_nan=False), min_size=2, max_size=10
        ),
        st.integers(0, 2**20),
    )
    def test_distribution_over_legal_actions(self, logits, mask_bits):
        logits_arr = np.array([logits])
        mask = np.array(
            [[(mask_bits >> i) & 1 == 1 for i in range(len(logits))]]
        )
        if not mask.any():
            mask[0, 0] = True
        lp = masked_log_softmax(logits_arr, mask)
        probs = np.exp(lp[0][mask[0]])
        np.testing.assert_allclose(probs.sum(), 1.0, rtol=1e-9)
        assert np.isfinite(lp[0][mask[0]]).all()
        assert (np.exp(lp[0][~mask[0]]) < 1e-30).all()


class TestDescentEquivalence:
    @given(
        st.lists(
            st.one_of(unary_predicates(), cat_predicates()),
            min_size=1,
            max_size=5,
        ),
        boolean_predicates(),
        st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_descent_equals_metadata_scan(self, cuts, query, seed):
        """Sec. 3.3's two query-routing implementations agree."""
        table = make_table(seed % 7)
        tree = grow_random_tree(table, cuts, seed)
        assert sorted(tree.route_query_descent(query)) == sorted(
            tree.route_query(query)
        )
