"""Differential suite: sharded ≡ unsharded ≡ serial execution.

Property-style: randomized SQL workloads are replayed through every
serving topology — ``ShardedLayoutService`` at N ∈ {1, 2, 4} shards
under both partition strategies, the single ``LayoutService``, and the
serial uncached baseline — and every pair must agree bit-for-bit on
``QueryStats.result_key()``, on row counts against ground truth
computed straight off the table, and on the exact matched row-id sets.

This is the partitioned-correctness bar: a scatter-gather plan is only
admissible if it is provably equivalent to the unpartitioned plan.
"""

import numpy as np
import pytest

from repro.bench import build_greedy_layout
from repro.core.router import subtree_shard_assignment
from repro.serve import LayoutService, ShardedLayoutService, run_serial_baseline
from repro.sql import SqlPlanner
from repro.storage import Schema, Table, categorical, numeric
from repro.workloads import Dataset

KINDS = ["alpha", "beta", "gamma", "delta"]

BUILD_STATEMENTS = [
    "SELECT * FROM t WHERE cpu < 25",
    "SELECT * FROM t WHERE cpu >= 25 AND cpu < 60",
    "SELECT * FROM t WHERE disk < 0.2",
    "SELECT * FROM t WHERE kind IN ('alpha','beta')",
    "SELECT * FROM t WHERE cpu >= 60 AND disk >= 0.5",
]


@pytest.fixture(scope="module")
def layout():
    rng = np.random.default_rng(42)
    n = 12_000
    schema = Schema(
        [
            numeric("cpu", (0.0, 100.0)),
            numeric("disk", (0.0, 1.0)),
            categorical("kind", KINDS),
        ]
    )
    table = Table(
        schema,
        {
            "cpu": rng.uniform(0.0, 100.0, n),
            "disk": rng.uniform(0.0, 1.0, n),
            "kind": rng.integers(0, len(KINDS), n),
        },
    )
    planner = SqlPlanner(schema)
    workload = planner.plan_workload(BUILD_STATEMENTS)
    dataset = Dataset(
        name="shard-diff",
        schema=schema,
        table=table,
        workload=workload,
        min_block_size=300,
    )
    return build_greedy_layout(dataset)


def random_statements(seed: int, count: int = 24):
    """Randomized workload: ranges, INs, conjunctions, disjunctions,
    with varying projections — same shapes the planner serves live."""
    rng = np.random.default_rng(seed)
    stmts = []
    for _ in range(count):
        kind = int(rng.integers(0, 5))
        if kind == 0:
            lo = rng.uniform(0.0, 80.0)
            hi = lo + rng.uniform(2.0, 30.0)
            stmts.append(
                f"SELECT * FROM t WHERE cpu >= {lo:.3f} AND cpu <= {hi:.3f}"
            )
        elif kind == 1:
            hi = rng.uniform(0.02, 0.9)
            stmts.append(f"SELECT disk FROM t WHERE disk < {hi:.4f}")
        elif kind == 2:
            a, b = rng.choice(KINDS, size=2, replace=False)
            stmts.append(f"SELECT cpu FROM t WHERE kind IN ('{a}','{b}')")
        elif kind == 3:
            lo = rng.uniform(50.0, 95.0)
            hi = rng.uniform(0.02, 0.3)
            stmts.append(
                f"SELECT * FROM t WHERE cpu > {lo:.3f} OR disk < {hi:.4f}"
            )
        else:
            a = rng.choice(KINDS)
            lo = rng.uniform(0.0, 70.0)
            stmts.append(
                f"SELECT disk FROM t WHERE kind = '{a}' AND cpu >= {lo:.3f}"
            )
    return stmts


def ground_truth(layout, sql):
    """(row count, sorted row ids) computed directly off the table —
    no blocks, no routing, no serving stack."""
    planner = SqlPlanner(layout.store.schema)
    query = planner.plan(sql).query
    ids = []
    for block in layout.store:
        data = block.read_columns(sorted(query.predicate.referenced_columns()))
        mask = query.predicate.evaluate(data)
        ids.append(block.row_ids[mask])
    ids = np.unique(np.concatenate(ids)) if ids else np.empty(0, dtype=np.int64)
    return len(ids), ids


TOPOLOGIES = [(1, "rr"), (2, "rr"), (4, "rr"), (1, "subtree"), (2, "subtree"), (4, "subtree")]


@pytest.mark.slow
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_differential_sharded_vs_unsharded_vs_serial(layout, seed):
    statements = random_statements(seed)

    base_qps, base_stats = run_serial_baseline(
        layout.store, layout.tree, statements
    )
    base_keys = sorted(s.result_key() for s in base_stats)

    with LayoutService(layout.store, layout.tree) as svc:
        unsharded = [svc.execute_sql(sql) for sql in statements]
        unsharded_ids = {sql: svc.collect_row_ids(sql) for sql in statements}
    assert sorted(r.stats.result_key() for r in unsharded) == base_keys

    truths = {sql: ground_truth(layout, sql) for sql in set(statements)}
    for result in unsharded:
        count, ids = truths[result.sql]
        assert result.stats.rows_returned == count
        np.testing.assert_array_equal(unsharded_ids[result.sql], ids)

    for num_shards, strategy in TOPOLOGIES:
        with ShardedLayoutService(
            layout.store,
            layout.tree,
            num_shards=num_shards,
            partition=strategy,
        ) as sharded:
            served = [sharded.execute_sql(sql) for sql in statements]
            assert sorted(r.stats.result_key() for r in served) == base_keys, (
                f"{num_shards} shards / {strategy} diverged from serial"
            )
            for sql in set(statements):
                count, ids = truths[sql]
                np.testing.assert_array_equal(
                    sharded.collect_row_ids(sql), ids,
                    err_msg=f"{num_shards}/{strategy}: row ids diverged",
                )


@pytest.mark.slow
@pytest.mark.parametrize("strategy", ["rr", "subtree"])
def test_differential_through_scheduler(layout, strategy):
    """The concurrent path (closed-loop replay through both scheduler
    layers) returns the same multiset of results as serial execution."""
    statements = random_statements(7, count=12)
    repeat = 4
    _, base_stats = run_serial_baseline(
        layout.store, layout.tree, statements, repeat=repeat
    )
    with ShardedLayoutService(
        layout.store, layout.tree, num_shards=4, partition=strategy
    ) as sharded:
        replay = sharded.run_closed_loop(statements, repeat=repeat)
    assert replay.completed == len(statements) * repeat
    assert sorted(s.result_key() for s in base_stats) == sorted(
        r.stats.result_key() for r in replay.results
    )


def test_differential_smoke(layout):
    """Fast unmarked slice of the suite so marker-filtered CI still
    exercises scatter-gather equivalence."""
    statements = random_statements(11, count=6)
    _, base_stats = run_serial_baseline(layout.store, layout.tree, statements)
    base_keys = sorted(s.result_key() for s in base_stats)
    with ShardedLayoutService(
        layout.store, layout.tree, num_shards=2, partition="subtree"
    ) as sharded:
        served = [sharded.execute_sql(sql) for sql in statements]
    assert sorted(r.stats.result_key() for r in served) == base_keys


# ----------------------------------------------------------------------
# Partitioning units (fast)
# ----------------------------------------------------------------------


def test_partition_disjoint_cover(layout):
    store = layout.store
    for strategy in ("rr",):
        shards = store.partition(4, strategy=strategy)
        seen = []
        for sub in shards:
            seen.extend(sub.block_ids)
        assert sorted(seen) == sorted(store.block_ids)
        assert sum(len(s) for s in shards) == store.num_blocks
        # Shards share the block objects, never copies.
        for sub in shards:
            for block in sub:
                assert block is store.block(block.block_id)


def test_partition_rr_balanced(layout):
    shards = layout.store.partition(3, strategy="rr")
    sizes = [len(s) for s in shards]
    assert max(sizes) - min(sizes) <= 1


def test_partition_rejects_bad_input(layout):
    store = layout.store
    with pytest.raises(ValueError):
        store.partition(0)
    with pytest.raises(ValueError):
        store.partition(2, strategy="nope")
    with pytest.raises(ValueError):
        store.partition(2, assignment={})  # missing BIDs
    full = {bid: 5 for bid in store.block_ids}
    with pytest.raises(ValueError):
        store.partition(2, assignment=full)  # shard index out of range


def test_subtree_assignment_contiguous_and_balanced(layout):
    weights = {b.block_id: b.num_rows for b in layout.store}
    assignment = subtree_shard_assignment(layout.tree, 4, weights=weights)
    assert set(assignment) == set(layout.store.block_ids)
    # Contiguity: walking leaves left-to-right, the shard index never
    # decreases (each shard owns one contiguous run of subtree leaves).
    order = []

    def visit(node):
        if node.is_leaf:
            order.append(assignment[node.block_id])
            return
        visit(node.left)
        visit(node.right)

    visit(layout.tree.root)
    assert order == sorted(order)
    assert set(order) == {0, 1, 2, 3}
    # Balance: no shard exceeds twice its fair row share.
    per_shard = [0, 0, 0, 0]
    for bid, shard in assignment.items():
        per_shard[shard] += weights[bid]
    fair = sum(weights.values()) / 4
    assert max(per_shard) <= 2 * fair


def test_subtree_assignment_skewed_weights_leave_no_empty_shard(layout):
    bids = list(layout.store.block_ids)
    weights = {bid: 1 for bid in bids}
    weights[bids[0]] = 10_000  # first leaf dwarfs everything
    assignment = subtree_shard_assignment(layout.tree, 4, weights=weights)
    assert set(assignment.values()) == {0, 1, 2, 3}


def test_subtree_partition_shrinks_fanout_for_selective_queries(layout):
    """The point of subtree locality, demonstrated non-vacuously:
    narrow range queries touch neighbouring qd-tree leaves, which the
    subtree partition co-locates — so they scatter to strictly fewer
    shards than under round-robin, and to fewer than all shards."""
    selective = [
        f"SELECT * FROM t WHERE cpu >= {lo} AND cpu <= {lo + 4}"
        for lo in (3, 11, 31, 47, 63, 82, 91)
    ]
    fanout = {}
    for strategy in ("rr", "subtree"):
        with ShardedLayoutService(
            layout.store, layout.tree, num_shards=4, partition=strategy
        ) as service:
            for sql in selective:
                service.execute_sql(sql)
            fanout[strategy] = service.mean_fanout
    assert fanout["subtree"] < fanout["rr"]
    assert fanout["subtree"] < 4.0


def test_mean_fanout_resets_with_replay_window(layout):
    """report()'s fan-out line must describe the current window, like
    every other number in the report."""
    with ShardedLayoutService(
        layout.store, layout.tree, num_shards=2, partition="rr"
    ) as service:
        service.run_closed_loop(random_statements(5, count=4), repeat=2)
        assert service.mean_fanout > 0.0
        service._reset_window()
        assert service.mean_fanout == 0.0


def test_row_id_provenance(layout):
    total = 0
    for block in layout.store:
        assert block.row_ids is not None
        assert len(block.row_ids) == block.num_rows
        assert not block.row_ids.flags.writeable
        total += len(block.row_ids)
    assert total == layout.store.logical_rows
