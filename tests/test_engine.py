"""Unit tests for repro.engine (executor, profiles, stats)."""

import numpy as np
import pytest

from repro.core import Query, column_eq, column_ge, column_lt
from repro.engine import (
    COMMERCIAL_DBMS,
    SPARK_PARQUET,
    CostProfile,
    ScanEngine,
    WorkloadReport,
    speedup_cdf,
)
from repro.storage import BlockStore


@pytest.fixture
def store(mixed_table):
    """Blocks range-partitioned on age: prunable by min-max."""
    order = np.argsort(mixed_table.column("age"), kind="stable")
    bids = np.empty(mixed_table.num_rows, dtype=np.int64)
    bids[order] = np.arange(mixed_table.num_rows) // 500
    return BlockStore.from_assignment(mixed_table, bids)


class TestProfiles:
    def test_modeled_ms_linear(self):
        p = CostProfile("t", block_open_ms=5.0, tuple_column_scan_ns=100.0,
                        columnar=True, block_dictionaries=True)
        assert p.modeled_ms(2, 0, 3) == pytest.approx(10.0)
        assert p.modeled_ms(0, 1_000_000, 2) == pytest.approx(200.0)

    def test_builtin_profiles_distinct(self):
        assert SPARK_PARQUET.columnar and SPARK_PARQUET.block_dictionaries
        assert not COMMERCIAL_DBMS.columnar
        assert not COMMERCIAL_DBMS.block_dictionaries


class TestExecution:
    def test_minmax_prunes_range_query(self, store):
        engine = ScanEngine(store, SPARK_PARQUET)
        q = Query(column_ge("age", 90), name="old")
        stats = engine.execute(q)
        assert stats.blocks_scanned < store.num_blocks
        assert stats.rows_returned > 0

    def test_result_counts_correct(self, store, mixed_table):
        engine = ScanEngine(store, SPARK_PARQUET)
        q = Query(column_lt("age", 30), name="young")
        stats = engine.execute(q)
        expected = int((mixed_table.column("age") < 30).sum())
        assert stats.rows_returned == expected

    def test_bid_filter_limits_scan(self, store):
        engine = ScanEngine(store, SPARK_PARQUET)
        q = Query(column_ge("age", 0), name="all")
        limited = engine.execute(q, block_ids=[0, 1])
        assert limited.blocks_scanned <= 2
        assert limited.blocks_considered == 2

    def test_categorical_dictionary_pruning(self, mixed_table):
        # Partition by city: each block holds one city code.
        bids = mixed_table.column("city").astype(np.int64)
        store = BlockStore.from_assignment(mixed_table, bids)
        engine = ScanEngine(store, SPARK_PARQUET)
        q = Query(column_eq("city", 2), name="sea")
        stats = engine.execute(q)
        assert stats.blocks_scanned == 1

    def test_no_dictionary_cannot_prune_categorical(self, mixed_table):
        bids = mixed_table.column("city").astype(np.int64)
        store = BlockStore.from_assignment(
            mixed_table, bids, with_dictionaries=False
        )
        engine = ScanEngine(store, COMMERCIAL_DBMS)
        q = Query(column_eq("city", 2), name="sea")
        stats = engine.execute(q)
        # Code ranges still prune the blocks whose [min,max] excludes 2.
        assert stats.blocks_scanned >= 1

    def test_row_store_charges_all_columns(self, store, mixed_schema):
        engine = ScanEngine(store, COMMERCIAL_DBMS)
        q = Query(column_lt("age", 30), name="young")
        stats = engine.execute(q)
        assert stats.columns_read == len(mixed_schema)

    def test_columnar_charges_referenced_columns(self, store):
        engine = ScanEngine(store, SPARK_PARQUET)
        q = Query(column_lt("age", 30), name="young", columns=("age", "salary"))
        stats = engine.execute(q)
        assert stats.columns_read == 2

    def test_execute_workload_alignment(self, store, mixed_workload):
        engine = ScanEngine(store, SPARK_PARQUET)
        stats = engine.execute_workload(mixed_workload)
        assert len(stats) == len(mixed_workload)
        with pytest.raises(ValueError):
            engine.execute_workload(mixed_workload, routed_bids=[None])

    def test_routed_none_falls_back_to_sma(self, store, mixed_workload):
        engine = ScanEngine(store, SPARK_PARQUET)
        routed = [None] * len(mixed_workload)
        stats = engine.execute_workload(mixed_workload, routed)
        assert all(s.blocks_scanned <= store.num_blocks for s in stats)


class TestWorkloadReport:
    def make_report(self, store, workload, label="r"):
        engine = ScanEngine(store, SPARK_PARQUET)
        return WorkloadReport(label, engine.execute_workload(workload))

    def test_totals(self, store, mixed_workload):
        report = self.make_report(store, mixed_workload)
        assert report.total_modeled_ms > 0
        assert report.total_tuples_scanned > 0
        assert len(report.per_query_modeled_ms()) == len(mixed_workload)

    def test_access_percentage_bounds(self, store, mixed_workload, mixed_table):
        report = self.make_report(store, mixed_workload)
        pct = report.access_percentage(mixed_table.num_rows)
        assert 0 < pct <= 100

    def test_per_template_grouping(self, store, mixed_workload):
        report = self.make_report(store, mixed_workload)
        per_template = report.per_template_modeled_ms()
        assert set(per_template) == {"age", "city", "comp"}

    def test_speedup_over_self_is_one(self, store, mixed_workload):
        report = self.make_report(store, mixed_workload)
        assert report.speedup_over(report) == pytest.approx(1.0)

    def test_speedup_cdf(self, store, mixed_workload):
        base = self.make_report(store, mixed_workload, "base")
        # A "faster" report: halve every modeled time.
        from dataclasses import replace

        fast = WorkloadReport(
            "fast", [replace(s, modeled_ms=s.modeled_ms / 2) for s in base.stats]
        )
        xs, ys = speedup_cdf(base, fast)
        assert np.allclose(xs, 2.0)
        assert ys[-1] == 1.0

    def test_speedup_cdf_mismatched_lengths(self, store, mixed_workload):
        base = self.make_report(store, mixed_workload)
        short = WorkloadReport("short", base.stats[:1])
        with pytest.raises(ValueError):
            speedup_cdf(base, short)

    def test_summary_keys(self, store, mixed_workload):
        report = self.make_report(store, mixed_workload)
        summary = report.summary()
        assert summary["queries"] == len(mixed_workload)
