"""Unit tests for repro.baselines.hash_part."""

import numpy as np
import pytest

from repro.baselines import HashPartitioner


class TestHashPartitioner:
    def test_bids_in_range(self, mixed_table):
        bids = HashPartitioner(columns=["city"], num_blocks=8).partition(
            mixed_table
        )
        assert bids.min() >= 0 and bids.max() < 8

    def test_equal_values_same_block(self, mixed_table):
        bids = HashPartitioner(columns=["city"], num_blocks=8).partition(
            mixed_table
        )
        city = mixed_table.column("city")
        for code in np.unique(city):
            assert len(np.unique(bids[city == code])) == 1

    def test_load_roughly_balanced(self, mixed_table):
        bids = HashPartitioner(
            columns=["age", "salary"], num_blocks=4
        ).partition(mixed_table)
        _, counts = np.unique(bids, return_counts=True)
        assert counts.min() > 0.5 * counts.mean()

    def test_deterministic(self, mixed_table):
        a = HashPartitioner(columns=["age"], num_blocks=4).partition(mixed_table)
        b = HashPartitioner(columns=["age"], num_blocks=4).partition(mixed_table)
        np.testing.assert_array_equal(a, b)

    def test_multi_column_differs_from_single(self, mixed_table):
        a = HashPartitioner(columns=["age"], num_blocks=8).partition(mixed_table)
        b = HashPartitioner(columns=["age", "city"], num_blocks=8).partition(
            mixed_table
        )
        assert (a != b).any()

    def test_invalid_args(self, mixed_table):
        with pytest.raises(ValueError):
            HashPartitioner(columns=[], num_blocks=4).partition(mixed_table)
        with pytest.raises(ValueError):
            HashPartitioner(columns=["age"], num_blocks=0).partition(mixed_table)

    def test_range_queries_cannot_prune(self, mixed_table):
        """The defining weakness: hashed blocks span full value ranges."""
        from repro.core import Query, column_lt
        from repro.engine import SPARK_PARQUET, ScanEngine
        from repro.storage import BlockStore

        bids = HashPartitioner(columns=["age"], num_blocks=6).partition(
            mixed_table
        )
        store = BlockStore.from_assignment(mixed_table, bids)
        engine = ScanEngine(store, SPARK_PARQUET)
        stats = engine.execute(Query(column_lt("salary", 50_000), name="q"))
        assert stats.blocks_scanned == store.num_blocks
