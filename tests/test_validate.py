"""Unit tests for repro.core.validate."""

import pytest

from repro.core import (
    CutRegistry,
    GreedyConfig,
    QdTree,
    build_greedy_tree,
    column_lt,
    validate_layout,
)
from repro.core.hypercube import Interval


class TestValidateLayout:
    def test_greedy_layout_is_valid(
        self, mixed_schema, mixed_table, mixed_workload
    ):
        registry = CutRegistry.from_workload(mixed_schema, mixed_workload)
        tree = build_greedy_tree(
            mixed_schema, registry, mixed_table, mixed_workload,
            GreedyConfig(100),
        )
        report = validate_layout(
            tree, mixed_table, min_block_size=100, workload=mixed_workload
        )
        assert report.ok
        report.raise_if_invalid()  # should not raise

    def test_singleton_tree_valid(self, mixed_schema, mixed_table):
        tree = QdTree(mixed_schema)
        report = validate_layout(tree, mixed_table)
        assert report.ok

    def test_detects_min_size_violation(self, mixed_schema, mixed_table):
        reg = CutRegistry(mixed_schema)
        reg.add(column_lt("age", 2))  # tiny left leaf
        tree = QdTree(mixed_schema, reg)
        tree.apply_cut(tree.root, column_lt("age", 2))
        report = validate_layout(tree, mixed_table, min_block_size=500)
        assert not report.meets_min_block_size
        assert not report.ok
        with pytest.raises(AssertionError):
            report.raise_if_invalid()

    def test_detects_completeness_violation(self, mixed_schema, mixed_table):
        reg = CutRegistry(mixed_schema)
        reg.add(column_lt("age", 50))
        tree = QdTree(mixed_schema, reg)
        left, _ = tree.apply_cut(tree.root, column_lt("age", 50))
        # Corrupt the leaf description: claim a narrower range than the
        # rows actually routed there.
        left.description.hypercube = left.description.hypercube.with_interval(
            "age", Interval(0, 10)
        )
        report = validate_layout(tree, mixed_table)
        assert not report.is_complete
        assert any("incomplete" in v for v in report.violations)

    def test_detects_routing_unsoundness(
        self, mixed_schema, mixed_table, mixed_workload
    ):
        reg = CutRegistry(mixed_schema)
        reg.add(column_lt("age", 50))
        tree = QdTree(mixed_schema, reg)
        left, _ = tree.apply_cut(tree.root, column_lt("age", 50))
        tree.assign_block_ids()
        # Corrupting the description after routing makes query routing
        # skip a block that still holds matching rows.
        left.description.hypercube = left.description.hypercube.with_interval(
            "age", Interval(45, 49)
        )
        report = validate_layout(tree, mixed_table, workload=mixed_workload)
        assert not report.routing_sound or not report.is_complete

    def test_max_queries_limits_work(
        self, mixed_schema, mixed_table, mixed_workload
    ):
        tree = QdTree(mixed_schema)
        report = validate_layout(
            tree, mixed_table, workload=mixed_workload, max_queries=1
        )
        assert report.ok
