"""Unit tests for repro.storage.catalog persistence."""

import numpy as np
import pytest

from repro.storage import (
    BlockStore,
    Schema,
    Table,
    categorical,
    load_store,
    load_table,
    save_store,
    save_table,
)


@pytest.fixture
def store(mixed_table):
    bids = np.arange(mixed_table.num_rows) % 3
    return BlockStore.from_assignment(
        mixed_table, bids, descriptions={0: "first", 2: "third"}
    )


class TestTablePersistence:
    def test_roundtrip(self, mixed_table, tmp_path):
        save_table(mixed_table, tmp_path / "t")
        loaded = load_table(tmp_path / "t")
        assert loaded.num_rows == mixed_table.num_rows
        for name in mixed_table.schema.column_names:
            np.testing.assert_array_equal(
                loaded.column(name), mixed_table.column(name)
            )

    def test_dictionary_preserved(self, tmp_path):
        schema = Schema([categorical("c", ["zeta", "alpha"])])
        t = Table(schema, {"c": np.array([1, 0, 1])})
        save_table(t, tmp_path / "t")
        loaded = load_table(tmp_path / "t")
        assert loaded.schema["c"].dictionary.values() == ("zeta", "alpha")
        assert loaded.row(0) == {"c": "alpha"}


class TestStorePersistence:
    def test_roundtrip_block_count(self, store, tmp_path):
        save_store(store, tmp_path / "s")
        loaded = load_store(tmp_path / "s")
        assert loaded.num_blocks == store.num_blocks
        assert loaded.logical_rows == store.logical_rows

    def test_roundtrip_block_contents(self, store, tmp_path):
        save_store(store, tmp_path / "s")
        loaded = load_store(tmp_path / "s")
        for block in store:
            reloaded = loaded.block(block.block_id)
            np.testing.assert_array_equal(
                reloaded.read_column("age"), block.read_column("age")
            )

    def test_descriptions_survive(self, store, tmp_path):
        save_store(store, tmp_path / "s")
        loaded = load_store(tmp_path / "s")
        assert loaded.block(0).description == "first"
        assert loaded.block(1).description is None
        assert loaded.block(2).description == "third"

    def test_minmax_rebuilt(self, store, tmp_path):
        save_store(store, tmp_path / "s")
        loaded = load_store(tmp_path / "s")
        for block in loaded:
            assert block.minmax.bounds("salary") is not None

    def test_load_without_dictionaries(self, store, tmp_path):
        save_store(store, tmp_path / "s")
        loaded = load_store(tmp_path / "s", with_dictionaries=False)
        stats = loaded.block(0).minmax.column_stats("city")
        assert stats.distinct is None

    def test_files_on_disk(self, store, tmp_path):
        save_store(store, tmp_path / "s")
        files = {p.name for p in (tmp_path / "s").iterdir()}
        assert "catalog.json" in files
        assert "block-0.npz" in files and "block-2.npz" in files
