"""Unit tests for repro.rl.ppo."""

import numpy as np
import pytest

from repro.rl import (
    PPOConfig,
    PPOTrainer,
    PolicyValueNet,
    masked_log_softmax,
    masked_sample,
)


class TestMaskedLogSoftmax:
    def test_legal_probs_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0, 4.0]])
        masks = np.array([[True, False, True, True]])
        lp = masked_log_softmax(logits, masks)
        probs = np.exp(lp[masks.nonzero()[0][0]][masks[0]])
        assert probs.sum() == pytest.approx(1.0)

    def test_illegal_actions_negligible(self):
        logits = np.array([[10.0, 0.0]])
        masks = np.array([[False, True]])
        lp = masked_log_softmax(logits, masks)
        assert lp[0, 0] < -1e8
        assert lp[0, 1] == pytest.approx(0.0)

    def test_matches_plain_softmax_when_all_legal(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 5))
        masks = np.ones((4, 5), dtype=bool)
        lp = masked_log_softmax(logits, masks)
        expected = logits - np.log(
            np.exp(logits - logits.max(axis=1, keepdims=True)).sum(
                axis=1, keepdims=True
            )
        ) - logits.max(axis=1, keepdims=True)
        np.testing.assert_allclose(lp, expected, atol=1e-10)

    def test_no_nans_with_extreme_logits(self):
        logits = np.array([[1e8, -1e8, 0.0]])
        masks = np.array([[True, True, True]])
        lp = masked_log_softmax(logits, masks)
        assert np.isfinite(lp[0, 0])


class TestMaskedSample:
    def test_never_samples_illegal(self):
        rng = np.random.default_rng(0)
        logits = np.array([5.0, 1.0, 1.0])
        mask = np.array([False, True, True])
        for _ in range(50):
            action, lp = masked_sample(logits, mask, rng)
            assert action in (1, 2)
            assert lp <= 0

    def test_prefers_high_logits(self):
        rng = np.random.default_rng(0)
        logits = np.array([10.0, 0.0])
        mask = np.array([True, True])
        actions = [masked_sample(logits, mask, rng)[0] for _ in range(100)]
        assert sum(a == 0 for a in actions) > 90


class TestPPOTrainer:
    def make_batch(self, net, n=64, seed=0):
        rng = np.random.default_rng(seed)
        states = rng.normal(size=(n, net.input_dim))
        masks = np.ones((n, net.num_actions), dtype=bool)
        logits, values = net.forward(states)
        lp = masked_log_softmax(logits, masks)
        actions = np.array(
            [masked_sample(logits[i], masks[i], rng)[0] for i in range(n)]
        )
        old_lp = lp[np.arange(n), actions]
        # Reward action 0, punish the others.
        rewards = (actions == 0).astype(float)
        return states, actions, masks, old_lp, rewards, values, rng

    def test_update_returns_stats(self):
        net = PolicyValueNet(4, 3, hidden_dim=16, seed=0)
        trainer = PPOTrainer(net, PPOConfig(epochs=2, minibatch_size=32))
        batch = self.make_batch(net)
        stats = trainer.update(*batch)
        assert set(stats) >= {"policy_loss", "value_loss", "entropy"}
        assert stats["updates"] > 0

    def test_policy_shifts_toward_reward(self):
        net = PolicyValueNet(4, 3, hidden_dim=16, seed=1)
        trainer = PPOTrainer(
            net, PPOConfig(learning_rate=5e-3, epochs=4, minibatch_size=64)
        )
        rng = np.random.default_rng(0)
        probe = rng.normal(size=(32, 4))
        masks = np.ones((32, 3), dtype=bool)

        def mean_p0() -> float:
            logits, _ = net.forward(probe)
            lp = masked_log_softmax(logits, masks)
            return float(np.exp(lp[:, 0]).mean())

        before = mean_p0()
        for seed in range(12):
            batch = self.make_batch(net, seed=seed)
            trainer.update(*batch)
        after = mean_p0()
        assert after > before

    def test_value_head_learns_rewards(self):
        net = PolicyValueNet(4, 3, hidden_dim=16, seed=2)
        trainer = PPOTrainer(
            net, PPOConfig(learning_rate=5e-3, epochs=4, value_coef=1.0)
        )
        rng = np.random.default_rng(1)
        states = rng.normal(size=(128, 4))
        masks = np.ones((128, 3), dtype=bool)
        rewards = np.full(128, 0.7)
        for _ in range(20):
            logits, values = net.forward(states)
            lp = masked_log_softmax(logits, masks)
            actions = np.zeros(128, dtype=np.int64)
            old_lp = lp[:, 0]
            trainer.update(states, actions, masks, old_lp, rewards, values, rng)
        _, values = net.forward(states)
        assert abs(values.mean() - 0.7) < 0.2

    def test_gradient_clipping_bounds_norm(self):
        net = PolicyValueNet(4, 3, hidden_dim=16, seed=3)
        config = PPOConfig(max_grad_norm=0.001)
        trainer = PPOTrainer(net, config)
        batch = self.make_batch(net, seed=5)
        trainer.update(*batch)
        total = sum(float((g**2).sum()) for _, g in net.parameters())
        assert np.sqrt(total) <= config.max_grad_norm * 1.01

    def test_single_sample_batch(self):
        """Degenerate batches must not crash (advantage normalization)."""
        net = PolicyValueNet(4, 3, hidden_dim=8, seed=4)
        trainer = PPOTrainer(net)
        rng = np.random.default_rng(0)
        stats = trainer.update(
            np.ones((1, 4)),
            np.array([0]),
            np.ones((1, 3), dtype=bool),
            np.array([-1.0]),
            np.array([0.5]),
            np.array([0.0]),
            rng,
        )
        assert np.isfinite(stats["policy_loss"])
