"""Tests for the repro.serve query-serving subsystem."""

import threading

import numpy as np
import pytest

from repro.bench import build_greedy_layout
from repro.engine import ScanEngine
from repro.serve import (
    AdmissionRejected,
    BlockCache,
    LayoutService,
    Scheduler,
    ServingMetrics,
)
from repro.sql import SqlPlanner
from repro.storage import BlockStore, Schema, Table, numeric
from repro.workloads import disjunctive_dataset


@pytest.fixture(scope="module")
def layout():
    return build_greedy_layout(disjunctive_dataset(num_rows=20_000, seed=0))


STATEMENTS = [
    "SELECT * FROM t WHERE cpu < 0.4",
    "SELECT cpu FROM t WHERE cpu >= 0.3 AND disk < 0.6",
    "SELECT disk FROM t WHERE disk >= 0.8",
    "SELECT * FROM t WHERE cpu < 0.2 OR disk < 0.1",
]


def service_for(layout, **kwargs):
    return LayoutService(layout.store, layout.tree, **kwargs)


class TestServiceCorrectness:
    def test_single_query_matches_engine(self, layout):
        planner = SqlPlanner(layout.store.schema)
        engine = ScanEngine(layout.store)
        with service_for(layout, cache_budget_bytes=None) as svc:
            served = svc.execute_sql(STATEMENTS[0])
        direct = engine.execute(
            planner.plan(STATEMENTS[0]).query, served.routed_block_ids
        )
        assert served.stats.rows_returned == direct.rows_returned
        assert served.stats.result_key()[2:] == direct.result_key()[2:]

    def test_concurrent_results_identical_to_serial(self, layout):
        """N threads x M repeats produce the same QueryStats aggregates
        (and per-query result keys) as serial uncached execution."""
        repeat = 6
        with service_for(layout, cache_budget_bytes=None, max_workers=1) as svc:
            serial = svc.run_closed_loop(STATEMENTS, repeat=repeat)
        with service_for(layout, max_workers=8) as svc:
            threaded = svc.run_closed_loop(STATEMENTS, repeat=repeat)

        serial_keys = sorted(r.stats.result_key() for r in serial.results)
        threaded_keys = sorted(r.stats.result_key() for r in threaded.results)
        assert serial_keys == threaded_keys

        s, t = serial.snapshot, threaded.snapshot
        assert (s.blocks_scanned, s.tuples_scanned, s.rows_returned) == (
            t.blocks_scanned,
            t.tuples_scanned,
            t.rows_returned,
        )

    def test_repeated_workload_hits_cache(self, layout):
        with service_for(layout) as svc:
            svc.run_closed_loop(STATEMENTS, repeat=5)
            snap = svc.snapshot()
        assert snap.cache is not None
        assert snap.cache_hit_rate > 0
        assert snap.cache.served_bytes > 0
        # Decoded work is bounded by the unique (block, column) pairs.
        assert snap.cache.decoded_bytes < snap.bytes_read

    def test_routing_memo_reused(self, layout):
        repeat = 4
        with service_for(layout) as svc:
            svc.run_closed_loop(STATEMENTS, repeat=repeat)
            assert len(svc._route_memo) == len(STATEMENTS)
            assert svc.router is not None
            # The tree was walked roughly once per unique predicate:
            # concurrent first arrivals may race the memo fill (benign
            # duplicate computation), but far fewer walks happen than
            # the total query count.
            walks = len(svc.router.latencies)
            assert len(STATEMENTS) <= walks < repeat * len(STATEMENTS)

    def test_routing_memo_serial_walks_once(self, layout):
        """Without concurrency the memo is deterministic: exactly one
        tree walk per unique predicate."""
        with service_for(layout) as svc:
            for _ in range(4):
                for sql in STATEMENTS:
                    svc.execute_sql(sql)
            assert svc.router is not None
            assert len(svc.router.latencies) == len(STATEMENTS)

    def test_replay_snapshot_covers_only_its_window(self, layout):
        """Back-to-back replays on one service: each ReplayResult's
        cache stats must describe that replay, not the service's
        lifetime, so bytes_decoded never exceeds the window's
        bytes_read."""
        with service_for(layout) as svc:
            first = svc.run_closed_loop(STATEMENTS, repeat=3)
            second = svc.run_closed_loop(STATEMENTS, repeat=3)
        assert first.snapshot.cache is not None
        assert second.snapshot.cache is not None
        assert second.snapshot.bytes_decoded <= second.snapshot.bytes_read
        # Everything was hot by the second replay: no decode work left.
        assert second.snapshot.cache.misses == 0
        assert second.snapshot.cache.hit_rate == 1.0

    def test_open_loop_sheds_or_completes(self, layout):
        with service_for(layout, max_workers=2, queue_depth=1) as svc:
            replay = svc.run_open_loop(
                STATEMENTS, target_qps=10_000.0, repeat=3
            )
        assert replay.completed + replay.rejected == replay.issued
        assert replay.completed >= 1


class TestAdvancedCutAlignment:
    def test_shared_planner_keeps_advanced_slots_aligned(self):
        """Serving a subset of an advanced-cut workload must reuse the
        build planner; a fresh planner would hand the same comparison a
        different slot index and prune on the wrong possibility bits."""
        import numpy as np

        from repro.bench import build_greedy_layout
        from repro.core.cuts import CutRegistry
        from repro.storage import Schema, Table, numeric
        from repro.workloads import Dataset

        rng = np.random.default_rng(7)
        schema = Schema(
            [
                numeric("a", (0.0, 1.0)),
                numeric("b", (0.0, 1.0)),
                numeric("c", (0.0, 1.0)),
            ]
        )
        table = Table(
            schema, {n: rng.uniform(size=8000) for n in ("a", "b", "c")}
        )
        build_statements = [
            "SELECT * FROM t WHERE a < b",
            "SELECT * FROM t WHERE b < c",
        ]
        planner = SqlPlanner(schema)
        workload = planner.plan_workload(build_statements)
        registry = CutRegistry.from_workload(schema, workload)
        dataset = Dataset("adv", schema, table, workload, min_block_size=500)
        layout = build_greedy_layout(dataset, registry=registry)

        # Serve ONLY the second statement — out of build order.
        served_sql = build_statements[1]
        truth = int(workload[1].predicate.evaluate(table.columns()).sum())
        with LayoutService(
            layout.store,
            layout.tree,
            num_advanced_cuts=registry.num_advanced_cuts,
            planner=planner,
        ) as svc:
            result = svc.execute_sql(served_sql)
        assert result.stats.rows_returned == truth


class TestBlockCache:
    @pytest.fixture()
    def store(self):
        schema = Schema([numeric("x", (0.0, 1.0)), numeric("y", (0.0, 1.0))])
        rng = np.random.default_rng(1)
        table = Table(
            schema,
            {"x": rng.uniform(size=4000), "y": rng.uniform(size=4000)},
        )
        return BlockStore.from_assignment(
            table, np.repeat(np.arange(8), 500)
        )

    def test_lru_eviction_respects_budget(self, store):
        one_column_bytes = store.block(0).decoded_nbytes(["x"])
        cache = BlockCache(budget_bytes=3 * one_column_bytes)
        for block in store:
            cache.read_columns(block, ["x"])
        stats = cache.stats()
        assert stats.cached_bytes <= cache.budget_bytes
        assert stats.entries == 3
        assert stats.evictions == len(store) - 3

    def test_lru_keeps_recently_used(self, store):
        one = store.block(0).decoded_nbytes(["x"])
        cache = BlockCache(budget_bytes=2 * one)
        cache.read_columns(store.block(0), ["x"])
        cache.read_columns(store.block(1), ["x"])
        cache.read_columns(store.block(0), ["x"])  # refresh 0
        cache.read_columns(store.block(2), ["x"])  # evicts 1
        hits_before = cache.stats().hits
        cache.read_columns(store.block(0), ["x"])
        assert cache.stats().hits == hits_before + 1
        misses_before = cache.stats().misses
        cache.read_columns(store.block(1), ["x"])
        assert cache.stats().misses == misses_before + 1

    def test_oversized_entry_is_decode_through(self, store):
        cache = BlockCache(budget_bytes=10)  # smaller than any column
        out = cache.read_columns(store.block(0), ["x"])
        assert len(out["x"]) == 500
        assert cache.stats().entries == 0

    def test_cached_arrays_are_readonly_and_correct(self, store):
        cache = BlockCache(budget_bytes=1 << 20)
        first = cache.read_columns(store.block(0), ["x", "y"])
        again = cache.read_columns(store.block(0), ["x", "y"])
        assert not again["x"].flags.writeable
        np.testing.assert_array_equal(first["x"], again["x"])
        np.testing.assert_array_equal(
            again["y"], store.block(0).read_column("y")
        )

    def test_cache_does_not_freeze_block_payload(self, store):
        """Freezing must apply to the cache's view only — for PLAIN
        chunks the decoded array IS the block's payload, and freezing
        it would poison reads outside the cache."""
        cache = BlockCache(budget_bytes=1 << 20)
        cache.read_columns(store.block(0), ["x"])
        fresh = store.block(0).read_column("x")
        fresh[0] = 0.5  # must stay writable
        assert fresh[0] == 0.5

    def test_invalidate(self, store):
        cache = BlockCache(budget_bytes=1 << 20)
        cache.read_columns(store.block(0), ["x", "y"])
        cache.read_columns(store.block(1), ["x"])
        assert cache.invalidate(0) == 2
        assert cache.stats().entries == 1
        assert cache.invalidate() == 1
        assert cache.stats().cached_bytes == 0

    def test_eviction_deterministic_under_equal_recency_ties(self, store):
        """Columns read by one call are equally recent; eviction among
        them must not depend on the order the caller listed the names,
        so two runs of the same workload leave identical cache state."""
        one = store.block(0).decoded_nbytes(["x"])

        def run(names_first_call):
            cache = BlockCache(budget_bytes=3 * one)
            cache.read_columns(store.block(0), names_first_call)
            cache.read_columns(store.block(1), ["x"])  # forces 1 eviction
            cache.read_columns(store.block(2), ["x"])  # forces another
            stats = cache.stats()
            survivors = sorted(cache._entries)
            return stats.evictions, survivors, stats.cached_bytes

        forward = run(["x", "y"])
        backward = run(["y", "x"])
        assert forward == backward
        # The tie-break is sorted-name order: within block 0's batch,
        # "x" is older than "y", so "x" is the first LRU victim.
        evictions, survivors, _ = forward
        assert evictions == 1
        assert (0, "x") not in survivors
        assert (0, "y") in survivors

    def test_duplicate_names_counted_once(self, store):
        cache = BlockCache(budget_bytes=1 << 20)
        out = cache.read_columns(store.block(0), ["x", "x", "y"])
        assert set(out) == {"x", "y"}
        stats = cache.stats()
        assert stats.hits + stats.misses == 2

    def test_concurrent_readers_consistent(self, store):
        cache = BlockCache(budget_bytes=1 << 20)
        errors = []

        def work():
            try:
                for block in store:
                    out = cache.read_columns(block, ["x"])
                    expected = block.read_column("x")
                    np.testing.assert_array_equal(out["x"], expected)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats.hits + stats.misses == 8 * len(store)


class TestScheduler:
    def test_bounded_admission_rejects_when_full(self):
        release = threading.Event()
        with Scheduler(max_workers=1, queue_depth=1) as sched:
            f1 = sched.submit(release.wait)
            f2 = sched.submit(release.wait)
            with pytest.raises(AdmissionRejected):
                sched.submit(release.wait, block=False)
            release.set()
            f1.result(timeout=5)
            f2.result(timeout=5)
        stats = sched.stats()
        assert stats.submitted == 2
        assert stats.completed == 2
        assert stats.rejected == 1

    def test_slots_recycle_after_completion(self):
        with Scheduler(max_workers=2, queue_depth=0) as sched:
            futures = [sched.submit(lambda: 42) for _ in range(20)]
            assert [f.result(timeout=5) for f in futures] == [42] * 20
        assert sched.stats().completed == 20

    def test_submit_after_shutdown_raises(self):
        sched = Scheduler(max_workers=1)
        sched.shutdown()
        with pytest.raises(RuntimeError):
            sched.submit(lambda: None)


class TestServingMetrics:
    def test_empty_window_snapshot_is_all_zeros(self):
        """snapshot() before any query must return zeros (percentiles
        included), never raise on the zero-length latency sample."""
        metrics = ServingMetrics()
        snap = metrics.snapshot()
        assert snap.queries == 0
        assert snap.qps == 0.0
        assert snap.window_seconds == 0.0
        assert (
            snap.latency_mean_ms,
            snap.latency_p50_ms,
            snap.latency_p95_ms,
            snap.latency_p99_ms,
        ) == (0.0, 0.0, 0.0, 0.0)
        assert "p95" in snap.report()  # report renders the zeros too

    def test_empty_window_snapshot_keeps_cache_stats(self):
        cache = BlockCache(budget_bytes=1 << 20)
        snap = ServingMetrics().snapshot(cache.stats())
        assert snap.cache is not None
        assert snap.cache_hit_rate == 0.0

    def test_percentiles_and_counts(self):
        metrics = ServingMetrics()
        from repro.engine import QueryStats

        for i, ms in enumerate([1.0, 2.0, 3.0, 4.0]):
            metrics.record(
                ms / 1000.0,
                QueryStats(
                    query_name=f"q{i}",
                    template="",
                    blocks_considered=4,
                    blocks_scanned=2,
                    tuples_scanned=100,
                    rows_returned=10,
                    columns_read=1,
                    modeled_ms=1.0,
                    wall_seconds=ms / 1000.0,
                    bytes_read=800,
                ),
            )
        snap = metrics.snapshot()
        assert snap.queries == 4
        assert snap.latency_p50_ms == pytest.approx(2.5)
        assert snap.latency_p99_ms <= 4.0
        assert snap.tuples_scanned == 400
        assert snap.bytes_read == 3200
        assert snap.bytes_decoded == 3200  # no cache attached
        assert "p95" in snap.report()

    def test_reset_starts_new_window(self):
        metrics = ServingMetrics()
        from repro.engine import QueryStats

        stats = QueryStats("q", "", 1, 1, 1, 1, 1, 1.0, 0.001)
        metrics.record(0.001, stats)
        metrics.reset()
        assert metrics.snapshot().queries == 0


class TestPlannerReuse:
    def test_repeated_statements_memoized(self, layout):
        planner = SqlPlanner(layout.store.schema)
        a = planner.plan(STATEMENTS[0])
        b = planner.plan(STATEMENTS[0])
        assert a is b

    def test_advanced_registry_stable_across_replans(self, layout):
        planner = SqlPlanner(layout.store.schema)
        sql = "SELECT * FROM t WHERE cpu < disk"
        planner.plan(sql)
        size = len(planner.advanced_registry)
        planner.plan(sql)
        assert len(planner.advanced_registry) == size

    def test_concurrent_planning_consistent(self, layout):
        planner = SqlPlanner(layout.store.schema)
        results = []

        def work():
            for sql in STATEMENTS:
                results.append(planner.plan(sql))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8 * len(STATEMENTS)
        by_sql = {}
        for planned in results:
            by_sql.setdefault(planned.query.name, set()).add(id(planned))
        # Each distinct statement resolved to exactly one planned object.
        assert all(len(ids) == 1 for ids in by_sql.values())


class TestStoreFixes:
    def test_block_lookup_and_membership(self, layout):
        store = layout.store
        first = store.block_ids[0]
        assert store.block(first).block_id == first
        assert first in store
        assert -1 not in store
        assert store.bid_set == frozenset(store.block_ids)
        with pytest.raises(KeyError):
            store.block(10_000)

    def test_blocks_ignores_unknown_bids(self, layout):
        store = layout.store
        got = store.blocks([store.block_ids[0], 10_000])
        assert [b.block_id for b in got] == [store.block_ids[0]]

    def test_blocks_considered_deduped_against_store(self, layout):
        engine = ScanEngine(layout.store)
        planner = SqlPlanner(layout.store.schema)
        query = planner.plan(STATEMENTS[0]).query
        present = list(layout.store.block_ids[:2])
        stats = engine.execute(query, present + [10_000, 10_001, 10_000])
        assert stats.blocks_considered == len(present)
