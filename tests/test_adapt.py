"""The repro.adapt control plane: log capture, drift detection,
learned arbitration, background re-optimization with hot swap.

Acceptance proofs (ISSUE 5):

* **Closed loop** — under a drifting replay the adaptive service
  performs ≥1 background rebuild + generation swap with bit-identical
  query results throughout, and blocks scanned on the post-drift mix
  drop to ≤70% of the frozen layout (avoided work, not wall-clock).
* **Learned arbiter differential** — on a stationary workload it
  converges to the same winners as the static (blocks, bytes) score;
  on a skewed two-template workload its cumulative blocks scanned is
  ≤ the static arbiter's.
"""

import numpy as np
import pytest

from repro.adapt import (
    AdaptPolicy,
    DriftDetector,
    LearnedArbiter,
    QueryLog,
    WorkloadSignature,
    divergence,
    offline_blocks_cost,
    template_key,
)
from repro.db import Database
from repro.serve import run_serial_baseline
from repro.storage import Schema, Table, categorical, numeric

X_SQL = [
    f"SELECT x FROM t WHERE x >= {lo} AND x < {lo + 5}"
    for lo in (5, 20, 35, 50, 65, 80)
]
Y_SQL = [
    f"SELECT y FROM t WHERE y >= {lo:.2f} AND y < {lo + 0.05:.2f}"
    for lo in (0.05, 0.20, 0.35, 0.50, 0.65, 0.80)
]


@pytest.fixture(scope="module")
def schema():
    return Schema(
        [
            numeric("x", (0.0, 100.0)),
            numeric("y", (0.0, 1.0)),
            categorical("kind", ["a", "b", "c"]),
        ]
    )


def make_table(schema, n, seed=0):
    rng = np.random.default_rng(seed)
    return Table(
        schema,
        {
            "x": rng.uniform(0, 100, n),
            "y": rng.uniform(0, 1, n),
            "kind": rng.integers(0, 3, n),
        },
    )


def make_db(schema, rows=12_000, seed=0, block=500):
    return Database.from_table(
        make_table(schema, rows, seed), min_block_size=block
    )


# ----------------------------------------------------------------------
# Signatures & divergence
# ----------------------------------------------------------------------


class TestSignature:
    def test_template_key_ignores_literals(self, schema):
        db = make_db(schema, rows=1000)
        q1 = db.planner.plan(X_SQL[0]).query
        q2 = db.planner.plan(X_SQL[3]).query
        assert template_key(q1) == template_key(q2) == "x < & x >="
        qy = db.planner.plan(Y_SQL[0]).query
        assert template_key(qy) != template_key(q1)

    def test_labelled_build_workload_matches_unlabelled_live_traffic(
        self, schema
    ):
        """Regression: workload generators label their queries
        (``template=``) but live SQL-planned traffic never does; the
        template key must come from the predicate shape on BOTH sides
        or identical statements would read as permanently drifted."""
        db = make_db(schema, rows=1000)
        labelled = [
            db.planner.plan(sql, template=f"T{i}").query
            for i, sql in enumerate(X_SQL)
        ]
        unlabelled = [db.planner.plan(sql).query for sql in X_SQL]
        assert (
            divergence(
                WorkloadSignature.from_queries(labelled),
                WorkloadSignature.from_queries(unlabelled),
            )
            == 0.0
        )

    def test_signature_normalizes_and_weights(self, schema):
        db = make_db(schema, rows=1000)
        queries = [db.planner.plan(sql).query for sql in X_SQL[:2] + Y_SQL[:1]]
        sig = WorkloadSignature.from_queries(queries)
        assert sig.weight == 3
        assert abs(sum(sig.templates.values()) - 1.0) < 1e-9
        assert abs(sig.templates["x < & x >="] - 2 / 3) < 1e-9
        assert abs(sig.columns["y"] - 1 / 3) < 1e-9

    def test_divergence_bounds(self, schema):
        db = make_db(schema, rows=1000)
        x_sig = WorkloadSignature.from_queries(
            [db.planner.plan(sql).query for sql in X_SQL]
        )
        y_sig = WorkloadSignature.from_queries(
            [db.planner.plan(sql).query for sql in Y_SQL]
        )
        assert divergence(x_sig, x_sig) == 0.0
        assert divergence(x_sig, y_sig) == 1.0  # disjoint templates
        assert divergence(x_sig, WorkloadSignature()) == 0.0  # no evidence

    def test_json_round_trip(self, schema):
        db = make_db(schema, rows=1000)
        sig = WorkloadSignature.from_queries(
            [db.planner.plan(sql).query for sql in X_SQL + Y_SQL]
        )
        back = WorkloadSignature.from_json(sig.to_json())
        assert back == sig

    def test_signature_persists_through_save_open(self, schema, tmp_path):
        db = make_db(schema, rows=2000)
        handle = db.build_layout("greedy", workload=X_SQL)
        assert handle.workload_signature is not None
        db.save(tmp_path / "layout")
        reopened = Database.open(tmp_path / "layout")
        restored = reopened.active_layout.workload_signature
        assert restored == handle.workload_signature
        assert divergence(restored, handle.workload_signature) == 0.0


# ----------------------------------------------------------------------
# The query log and its RecordStage feeds
# ----------------------------------------------------------------------


class TestQueryLog:
    def test_ring_is_bounded(self):
        from repro.adapt import QueryRecord

        log = QueryLog(capacity=4)
        for i in range(10):
            log.append(
                QueryRecord(
                    sql=f"q{i}",
                    template="t",
                    filter_columns=("x",),
                    generation=1,
                    blocks_considered=1,
                    blocks_scanned=1,
                    tuples_scanned=1,
                    bytes_read=1,
                    rows_returned=1,
                )
            )
        assert len(log) == 4
        assert log.total_recorded == 10
        assert [r.sql for r in log.window()] == ["q6", "q7", "q8", "q9"]

    def test_generation_attributed_without_result_cache(self, schema):
        """Regression: the answering generation must be stamped on
        results and log records even when result caching is off —
        attribution is what makes hot swaps auditable."""
        db = make_db(schema, rows=2000)
        db.build_layout("greedy", workload=X_SQL)
        log = QueryLog()
        with db.serve(result_cache=False, record_sink=log) as service:
            result = service.execute_sql(X_SQL[0])
        assert result.generation == db.generation == 1
        assert log.window()[0].generation == 1

    def test_serial_baseline_populates_log(self, schema):
        db = make_db(schema, rows=3000)
        handle = db.build_layout("greedy", workload=X_SQL)
        log = QueryLog()
        run_serial_baseline(
            handle.store,
            handle.tree,
            X_SQL,
            planner=db.planner,
            num_advanced_cuts=handle.num_advanced_cuts,
            record_sink=log,
        )
        assert len(log) == len(X_SQL)
        record = log.window()[0]
        assert record.template == "x < & x >="
        assert record.blocks_scanned > 0 and not record.cached

    def test_single_layout_service_populates_log(self, schema):
        db = make_db(schema, rows=3000)
        db.build_layout("greedy", workload=X_SQL)
        log = QueryLog()
        with db.serve(record_sink=log) as service:
            service.run_closed_loop(X_SQL, repeat=2)
        assert len(log) == 2 * len(X_SQL)
        # The repeat pass hit the result cache; records say so and
        # still carry the original realized costs.
        cached = [r for r in log.window() if r.cached]
        assert cached and all(r.blocks_scanned > 0 for r in cached)
        assert all(r.generation == db.generation for r in log.window())

    def test_sharded_coordinator_populates_log(self, schema):
        db = make_db(schema, rows=3000)
        db.build_layout("greedy", workload=X_SQL)
        log = QueryLog()
        with db.serve(shards=2, record_sink=log) as service:
            service.run_closed_loop(X_SQL, repeat=1)
        assert len(log) == len(X_SQL)  # coordinator records once

    def test_multi_layout_service_populates_log(self, schema):
        db = make_db(schema, rows=3000)
        db.build_layout("range", column="x", label="by-x")
        db.build_layout("range", column="y", label="by-y", activate=False)
        log = QueryLog()
        with db.serve_multi(record_sink=log) as service:
            for sql in X_SQL + Y_SQL:
                service.execute_sql(sql)
        assert len(log) == len(X_SQL) + len(Y_SQL)
        assert {r.winner for r in log.window()} == {"by-x", "by-y"}

    def test_signature_and_statements_views(self, schema):
        db = make_db(schema, rows=3000)
        db.build_layout("greedy", workload=X_SQL)
        log = QueryLog()
        with db.serve(record_sink=log) as service:
            service.run_closed_loop(X_SQL + X_SQL[:1], repeat=1)
        sig = log.signature()
        assert set(sig.templates) == {"x < & x >="}
        top_sql, top_count = log.statements()[0]
        assert top_sql == X_SQL[0] and top_count == 2


# ----------------------------------------------------------------------
# Drift detection
# ----------------------------------------------------------------------


class TestDriftDetector:
    def test_fires_only_past_threshold_and_evidence(self, schema):
        db = make_db(schema, rows=3000)
        handle = db.build_layout("greedy", workload=X_SQL)
        detector = DriftDetector(
            handle.workload_signature,
            window=32,
            threshold=0.5,
            min_records=8,
        )
        log = QueryLog()
        with db.serve(record_sink=log) as service:
            for sql in X_SQL:
                service.execute_sql(sql)
            assert not detector.drifted(log)  # same mix, and < min_records? (6 < 8)
            service.run_closed_loop(X_SQL, repeat=2)
            assert not detector.drifted(log)  # same mix, enough evidence
            assert detector.last_score < 0.1
            # Now the mix shifts entirely onto y templates.
            service.run_closed_loop(Y_SQL, repeat=6)
        assert detector.drifted(log)
        assert detector.last_score > 0.5

    def test_rebase_rearms(self, schema):
        db = make_db(schema, rows=3000)
        handle = db.build_layout("greedy", workload=X_SQL)
        detector = DriftDetector(
            handle.workload_signature, window=32, threshold=0.4, min_records=8
        )
        log = QueryLog()
        with db.serve(record_sink=log) as service:
            service.run_closed_loop(Y_SQL, repeat=6)
        assert detector.drifted(log)
        detector.rebase(log.signature(32))
        assert not detector.drifted(log)
        assert detector.last_score < 0.1


# ----------------------------------------------------------------------
# The closed adaptation loop (ISSUE acceptance)
# ----------------------------------------------------------------------


ADAPT_POLICY = AdaptPolicy(
    log_capacity=1024,
    window=60,
    threshold=0.4,
    min_records=24,
    check_every=6,
    min_improvement=0.1,
    strategy="greedy",
)


@pytest.mark.adapt
class TestClosedLoop:
    def test_drift_triggers_rebuild_swap_and_saves_blocks(self, schema):
        """The tentpole proof: shift the filter-column distribution
        mid-replay; the detector fires, a background rebuild + swap
        happens, results stay bit-identical, and post-swap blocks
        scanned on the new mix is ≤70% of the frozen layout's."""
        db = make_db(schema, rows=20_000, seed=3)
        frozen = db.build_layout("greedy", workload=X_SQL)

        # Ground truth rows per statement (layout-independent).
        expected_rows = {
            sql: int(
                db.planner.plan(sql)
                .query.predicate.evaluate(db.table.columns())
                .sum()
            )
            for sql in X_SQL + Y_SQL
        }

        with db.auto_adapt(policy=ADAPT_POLICY) as service:
            before = service.run_closed_loop(X_SQL, repeat=5)
            assert service.generation == frozen.generation
            assert not service.events  # stationary: no rebuild
            after = service.run_closed_loop(Y_SQL, repeat=12)
            service.join_adaptation(timeout=120)
            swaps = [e for e in service.events if e.kind == "swap"]
            assert swaps, (
                f"no swap happened: drift={service.detector.last_score}, "
                f"events={service.events}"
            )
            assert service.generation != frozen.generation
            final = service.run_closed_loop(Y_SQL, repeat=2)

        # Bit-identical results throughout: every replayed result
        # returned exactly the rows the table says it should, before,
        # during and after the background swap.
        for replay, statements in (
            (before, X_SQL),
            (after, Y_SQL),
            (final, Y_SQL),
        ):
            for i, result in enumerate(replay.results):
                sql = statements[i % len(statements)]
                assert result.stats.rows_returned == expected_rows[sql]

        # Avoided-work acceptance: the post-drift mix on the adapted
        # layout costs ≤ 70% of the frozen layout's blocks.
        adapted = db.active_layout
        y_queries = [(db.planner.plan(sql).query, 1) for sql in Y_SQL]
        frozen_cost = offline_blocks_cost(frozen, y_queries)
        adapted_cost = offline_blocks_cost(adapted, y_queries)
        assert adapted_cost <= 0.70 * frozen_cost, (
            f"adapted layout scans {adapted_cost} blocks on the "
            f"post-drift mix vs frozen {frozen_cost}"
        )
        # The swap really went through the generation lifecycle: the
        # result cache holds only the new generation.
        assert db.result_cache.generations() in (
            (),
            (adapted.generation,),
        )
        # And the displaced incumbent was dropped from the database
        # (each generation pins a full table copy; a long-running
        # loop must not grow one per swap).  The caller-held `frozen`
        # handle stays usable, as exercised above.
        assert frozen not in db.layouts()

    def test_insufficient_improvement_discards_candidate(self, schema):
        """A drift whose rebuilt candidate cannot beat the incumbent
        is rejected, the candidate generation is dropped, and serving
        stays on the incumbent."""
        db = make_db(schema, rows=8_000, seed=4)
        frozen = db.build_layout("greedy", workload=X_SQL)
        # Impossible bar: no candidate wins by 99%.
        policy = AdaptPolicy(
            log_capacity=1024,
            window=48,
            threshold=0.4,
            min_records=24,
            check_every=6,
            min_improvement=0.99,
        )
        with db.auto_adapt(policy=policy) as service:
            service.run_closed_loop(Y_SQL, repeat=10)
            service.join_adaptation(timeout=120)
            stats = service.reoptimizer.stats()
            assert stats.rebuilds >= 1
            assert stats.swaps == 0
            assert all(e.kind == "rejected" for e in stats.events)
            assert service.generation == frozen.generation
        assert db.active_layout is frozen
        assert len(db.layouts()) == 1  # rejected candidates dropped

    def test_result_cache_false_disables_caching(self, schema):
        db = make_db(schema, rows=4_000, seed=11)
        db.build_layout("greedy", workload=X_SQL)
        with db.auto_adapt(result_cache=False) as service:
            service.run_closed_loop(X_SQL, repeat=3)
            assert service.service.result_cache is None
        assert len(db.result_cache) == 0

    def test_window_snapshot_survives_mid_replay_cache_swap(self, schema):
        """A hot swap replaces the buffer pool mid-window; the replay
        snapshot must fall back to the new pool's stats instead of
        reporting negative deltas against the retired pool's."""
        db = make_db(schema, rows=4_000, seed=12)
        db.build_layout("greedy", workload=X_SQL)
        with db.auto_adapt() as service:
            service.run_closed_loop(X_SQL, repeat=3)
            stale_before = service._cache_stats()  # big counters
            service._install(db.active_layout)  # fresh pool, zeroed
            snap = service._window_snapshot(stale_before)
            assert snap.cache.hits >= 0 and snap.cache.misses >= 0

    def test_report_carries_adapt_counters(self, schema):
        db = make_db(schema, rows=6_000, seed=5)
        db.build_layout("greedy", workload=X_SQL)
        with db.auto_adapt(policy=ADAPT_POLICY) as service:
            service.run_closed_loop(Y_SQL, repeat=12)
            service.join_adaptation(timeout=120)
            report = service.report()
        assert "drift score" in report
        assert "adaptation" in report
        assert "swaps" in report
        snap = service.snapshot()
        assert snap.adapt is not None
        assert snap.adapt.swaps == sum(
            1 for e in service.events if e.kind == "swap"
        )


# ----------------------------------------------------------------------
# Learned arbiter differential (ISSUE acceptance)
# ----------------------------------------------------------------------


class TestLearnedArbiter:
    def _two_layout_db(self, schema, rows=12_000, seed=6):
        db = make_db(schema, rows=rows, seed=seed)
        db.build_layout("range", column="x", label="by-x")
        db.build_layout("range", column="y", label="by-y", activate=False)
        return db

    def test_stationary_converges_to_static_winners(self, schema):
        db = self._two_layout_db(schema)
        statements = [s for pair in zip(X_SQL, Y_SQL) for s in pair]

        with db.serve_multi(result_cache=False) as static:
            static_winners = {
                sql: static.execute_sql(sql).winner for sql in statements
            }
            static_blocks = static.snapshot().blocks_scanned

        learned_policy = LearnedArbiter(epsilon=0.0)
        with db.serve_multi(
            result_cache=False, arbiter=learned_policy
        ) as learned:
            # Warm-up pass (posteriors fill), then the measured pass.
            for sql in statements:
                learned.execute_sql(sql)
            learned_winners = {
                sql: learned.execute_sql(sql).winner for sql in statements
            }
        assert learned_winners == static_winners
        stats = learned_policy.stats()
        assert stats.decisions == 2 * len(statements)
        assert stats.agreements == stats.decisions  # full agreement
        # Cumulative blocks over both passes == 2x the static pass:
        # the learned arbiter never leaves the blocks-minimal set.
        with db.serve_multi(
            result_cache=False, arbiter=LearnedArbiter(epsilon=0.0)
        ) as fresh:
            for sql in statements:
                fresh.execute_sql(sql)
            learned_blocks_one_pass = fresh.snapshot().blocks_scanned
        assert learned_blocks_one_pass == static_blocks

    def test_skewed_two_template_cumulative_blocks_le_static(self, schema):
        db = self._two_layout_db(schema, seed=7)
        # Skewed: 90% x-template, 10% y-template.
        statements = X_SQL * 3 + Y_SQL[:2]

        def total_blocks(arbiter):
            with db.serve_multi(
                result_cache=False, arbiter=arbiter
            ) as service:
                for _ in range(3):
                    for sql in statements:
                        service.execute_sql(sql)
                return service.snapshot().blocks_scanned

        static_total = total_blocks("static")
        learned_total = total_blocks(LearnedArbiter(epsilon=0.1, seed=0))
        assert learned_total <= static_total

    def test_learned_arbiter_observes_through_pipeline(self, schema):
        db = self._two_layout_db(schema, seed=8)
        policy = LearnedArbiter(epsilon=0.0)
        with db.serve_multi(result_cache=False, arbiter=policy) as service:
            result = service.execute_sql(X_SQL[0])
        template = "x < & x >="
        posterior = policy.posterior(result.generation, template)
        assert posterior is not None
        count, mean_bytes = posterior
        assert count == 1
        assert mean_bytes == float(result.stats.bytes_read)
        # Report surfaces the bandit counters.
        report = service.report()
        assert "learned arbiter" in report

    def test_unknown_arbiter_name_rejected(self, schema):
        db = self._two_layout_db(schema, seed=9)
        with pytest.raises(Exception):
            with db.serve_multi(arbiter=object()) as service:
                service.execute_sql(X_SQL[0])


# ----------------------------------------------------------------------
# Drift stress (slow CI job)
# ----------------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.adapt
def test_drift_stress_concurrent_submissions(schema):
    """The closed loop under concurrent scheduler traffic: drifting
    load submitted through the pool while the rebuild thread swaps
    generations — every future resolves, every result is row-exact,
    and at least one swap lands."""
    db = make_db(schema, rows=30_000, seed=10)
    db.build_layout("greedy", workload=X_SQL)
    expected_rows = {
        sql: int(
            db.planner.plan(sql)
            .query.predicate.evaluate(db.table.columns())
            .sum()
        )
        for sql in X_SQL + Y_SQL
    }
    policy = AdaptPolicy(
        log_capacity=2048,
        window=80,
        threshold=0.4,
        min_records=32,
        check_every=8,
        min_improvement=0.1,
    )
    with db.auto_adapt(policy=policy, max_workers=4) as service:
        futures = []
        for _ in range(4):
            for sql in X_SQL:
                futures.append((sql, service.submit_sql(sql)))
        # Drifted traffic keeps flowing in waves (a first check may
        # fire on a window still mixed with x-queries and get its
        # candidate rejected; sustained drift must still converge to
        # a swap).
        for _ in range(5):
            for _ in range(10):
                for sql in Y_SQL:
                    futures.append((sql, service.submit_sql(sql)))
            for sql, future in futures:
                result = future.result(timeout=120)
                assert result.stats.rows_returned == expected_rows[sql]
            futures.clear()
            service.join_adaptation(timeout=120)
            if any(e.kind == "swap" for e in service.events):
                break
        swaps = [e for e in service.events if e.kind == "swap"]
        assert swaps, f"no swap under sustained drift: {service.events}"
        # Post-swap traffic still row-exact and served by the new gen.
        late = service.execute_sql(Y_SQL[0])
        assert late.stats.rows_returned == expected_rows[Y_SQL[0]]
        assert late.generation == service.generation
