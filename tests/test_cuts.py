"""Unit tests for repro.core.cuts (registry + extraction)."""

import numpy as np
import pytest

from repro.core import (
    AdvancedCut,
    CutRegistry,
    Query,
    Workload,
    column_eq,
    column_gt,
    column_lt,
    conjunction,
    disjunction,
    extract_candidate_cuts,
)


class TestExtraction:
    def test_extracts_all_unary_predicates(self, mixed_schema):
        wl = Workload(
            [
                Query(
                    conjunction([column_lt("age", 30), column_eq("city", 1)]),
                    name="a",
                )
            ]
        )
        cuts = extract_candidate_cuts(wl, mixed_schema)
        assert column_lt("age", 30) in cuts
        assert column_eq("city", 1) in cuts
        assert len(cuts) == 2

    def test_duplicates_collapsed(self, mixed_schema):
        q = Query(column_lt("age", 30), name="a")
        wl = Workload([q, q, Query(column_lt("age", 30), name="b")])
        assert len(extract_candidate_cuts(wl, mixed_schema)) == 1

    def test_disjunction_leaves_extracted(self, mixed_schema):
        wl = Workload(
            [
                Query(
                    disjunction([column_lt("age", 10), column_gt("age", 90)]),
                    name="a",
                )
            ]
        )
        cuts = extract_candidate_cuts(wl, mixed_schema)
        assert len(cuts) == 2

    def test_unknown_column_raises(self, mixed_schema):
        wl = Workload([Query(column_lt("bogus", 1), name="a")])
        with pytest.raises(ValueError):
            extract_candidate_cuts(wl, mixed_schema)

    def test_advanced_cut_canonicalized_positive(self, mixed_schema):
        cut = AdvancedCut("a", 0, lambda c: c["age"] > 0, positive=False)
        wl = Workload([Query(cut, name="a")])
        cuts = extract_candidate_cuts(wl, mixed_schema)
        assert len(cuts) == 1
        assert cuts[0].positive


class TestRegistry:
    def test_add_idempotent(self, mixed_schema):
        reg = CutRegistry(mixed_schema)
        i = reg.add(column_lt("age", 30))
        j = reg.add(column_lt("age", 30))
        assert i == j
        assert len(reg) == 1

    def test_index_roundtrip(self, mixed_schema):
        reg = CutRegistry(mixed_schema)
        cut = column_eq("city", 2)
        idx = reg.add(cut)
        assert reg.cut(idx) == cut
        assert reg.index_of(cut) == idx

    def test_index_of_unregistered_raises(self, mixed_schema):
        reg = CutRegistry(mixed_schema)
        with pytest.raises(KeyError):
            reg.index_of(column_lt("age", 99))

    def test_unknown_column_rejected(self, mixed_schema):
        reg = CutRegistry(mixed_schema)
        with pytest.raises(ValueError):
            reg.add(column_lt("bogus", 1))

    def test_range_cut_on_categorical_rejected(self, mixed_schema):
        reg = CutRegistry(mixed_schema)
        with pytest.raises(ValueError):
            reg.add(column_lt("city", 2))

    def test_boolean_predicate_rejected(self, mixed_schema):
        reg = CutRegistry(mixed_schema)
        with pytest.raises(TypeError):
            reg.add(conjunction([column_lt("age", 1), column_lt("age", 2)]))

    def test_advanced_cut_indices_preserved(self, mixed_schema):
        cut0 = AdvancedCut("a", 0, lambda c: c["age"] > 0)
        cut2 = AdvancedCut("b", 2, lambda c: c["age"] > 1)
        reg = CutRegistry(mixed_schema, [cut0, cut2])
        assert reg.num_advanced_cuts == 3  # sized by max index + 1

    def test_conflicting_advanced_index_rejected(self, mixed_schema):
        cut0 = AdvancedCut("a", 0, lambda c: c["age"] > 0)
        other = AdvancedCut("b", 0, lambda c: c["age"] > 1)
        reg = CutRegistry(mixed_schema, [cut0])
        with pytest.raises(ValueError):
            reg.add(other)

    def test_from_workload(self, mixed_schema, mixed_workload):
        reg = CutRegistry.from_workload(mixed_schema, mixed_workload)
        assert len(reg) == 5  # age>=30, age<40, city=sf, level=senior, salary>=150k

    def test_evaluate_all_shape(self, mixed_schema, mixed_workload, mixed_table):
        reg = CutRegistry.from_workload(mixed_schema, mixed_workload)
        masks = reg.evaluate_all(mixed_table.columns(), mixed_table.num_rows)
        assert masks.shape == (len(reg), mixed_table.num_rows)
        assert masks.dtype == bool

    def test_evaluate_all_matches_individual(self, mixed_schema, mixed_table):
        reg = CutRegistry(mixed_schema)
        reg.add(column_lt("age", 40))
        masks = reg.evaluate_all(mixed_table.columns(), mixed_table.num_rows)
        np.testing.assert_array_equal(
            masks[0], mixed_table.column("age") < 40
        )

    def test_columns_used(self, mixed_schema, mixed_workload):
        reg = CutRegistry.from_workload(mixed_schema, mixed_workload)
        assert set(reg.columns_used()) == {"age", "city", "level", "salary"}
