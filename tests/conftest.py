"""Shared fixtures: small schemas, tables and workloads."""

import numpy as np
import pytest

from repro.core import Query, Workload, column_eq, column_ge, column_lt, conjunction
from repro.storage import Schema, Table, categorical, numeric


@pytest.fixture
def two_col_schema() -> Schema:
    return Schema([numeric("cpu", (0.0, 100.0)), numeric("disk", (0.0, 1.0))])


@pytest.fixture
def two_col_table(two_col_schema: Schema) -> Table:
    rng = np.random.default_rng(0)
    return Table(
        two_col_schema,
        {
            "cpu": rng.uniform(0.0, 100.0, 5000),
            "disk": rng.uniform(0.0, 1.0, 5000),
        },
    )


@pytest.fixture
def mixed_schema() -> Schema:
    return Schema(
        [
            numeric("age", (0, 100)),
            numeric("salary", (0.0, 200_000.0)),
            categorical("city", ["nyc", "sf", "sea", "aus"]),
            categorical("level", ["junior", "mid", "senior"]),
        ]
    )


@pytest.fixture
def mixed_table(mixed_schema: Schema) -> Table:
    rng = np.random.default_rng(1)
    n = 2000
    return Table(
        mixed_schema,
        {
            "age": rng.integers(0, 100, n).astype(float),
            "salary": rng.uniform(0, 200_000, n),
            "city": rng.integers(0, 4, n),
            "level": rng.integers(0, 3, n),
        },
    )


@pytest.fixture
def mixed_workload(mixed_schema: Schema) -> Workload:
    sf = mixed_schema.encode_literal("city", "sf")
    senior = mixed_schema.encode_literal("level", "senior")
    return Workload(
        [
            Query(
                conjunction([column_ge("age", 30), column_lt("age", 40)]),
                name="age-band",
                template="age",
            ),
            Query(column_eq("city", sf), name="sf", template="city"),
            Query(
                conjunction(
                    [column_eq("level", senior), column_ge("salary", 150_000)]
                ),
                name="senior-high",
                template="comp",
            ),
        ]
    )
