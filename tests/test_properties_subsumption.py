"""Property-based tests for predicate subsumption and BU features.

`implies(q, f)` drives Bottom-Up's skipping correctness: if it ever
returned a false positive, blocks would be skipped that still contain
matching rows.  These tests verify soundness on randomly generated
predicates against randomly generated data.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import implies, unary_implies
from repro.core import (
    column_eq,
    column_ge,
    column_gt,
    column_in,
    column_le,
    column_lt,
    conjunction,
    disjunction,
)

_BUILDERS = {
    "lt": column_lt,
    "le": column_le,
    "gt": column_gt,
    "ge": column_ge,
    "eq": column_eq,
}


@st.composite
def unary(draw, column="x"):
    kind = draw(st.sampled_from(["lt", "le", "gt", "ge", "eq", "in"]))
    if kind == "in":
        values = draw(st.lists(st.integers(0, 20), min_size=1, max_size=4))
        return column_in(column, sorted(set(values)))
    value = draw(st.integers(0, 20))
    return _BUILDERS[kind](column, value)


@st.composite
def query_predicates(draw):
    kind = draw(st.sampled_from(["unary", "and", "or"]))
    if kind == "unary":
        return draw(unary())
    children = draw(st.lists(unary(), min_size=2, max_size=3))
    return conjunction(children) if kind == "and" else disjunction(children)


_GRID = {"x": np.arange(-5, 27).astype(np.float64)}


class TestSubsumptionSoundness:
    @given(unary(), unary())
    @settings(max_examples=300)
    def test_unary_implies_sound(self, p, f):
        """unary_implies(p, f) -> rows(p) subset of rows(f)."""
        if unary_implies(p, f):
            pm = p.evaluate(_GRID)
            fm = f.evaluate(_GRID)
            assert not (pm & ~fm).any(), (p, f)

    @given(query_predicates(), unary())
    @settings(max_examples=300)
    def test_implies_sound(self, q, f):
        """implies(q, f) -> rows(q) subset of rows(f)."""
        if implies(q, f):
            qm = q.evaluate(_GRID)
            fm = f.evaluate(_GRID)
            assert not (qm & ~fm).any(), (q, f)

    @given(unary())
    @settings(max_examples=100)
    def test_implies_reflexive(self, p):
        assert implies(p, p)

    @given(unary(), unary(), unary())
    @settings(max_examples=200)
    def test_implies_transitive_on_unaries(self, a, b, c):
        if unary_implies(a, b) and unary_implies(b, c):
            assert unary_implies(a, c), (a, b, c)
