"""Unit tests for the repro.db Database facade.

Covers the strategy registry, layout generations, persistence
round-trips, ingest/swap semantics and the library execution path.
The differential guarantees (strategy parity with legacy entry
points, result-cache bit-identity and staleness) live in
``tests/test_db_differential.py``.
"""

import numpy as np
import pytest

from repro.db import (
    BuildContext,
    BuiltLayout,
    Database,
    LayoutStrategy,
    UnknownStrategyError,
    get_strategy,
    register_strategy,
    strategy_names,
)
from repro.db.registry import _REGISTRY
from repro.storage import Schema, Table, categorical, numeric

STATEMENTS = [
    "SELECT x FROM t WHERE x < 20",
    "SELECT x FROM t WHERE kind = 'b' AND y < 0.2",
    "SELECT x FROM t WHERE x >= 80 AND kind IN ('a','c')",
]


@pytest.fixture
def schema():
    return Schema(
        [
            numeric("x", (0.0, 100.0)),
            numeric("y", (0.0, 1.0)),
            categorical("kind", ["a", "b", "c"]),
        ]
    )


def make_table(schema, n, seed=0):
    rng = np.random.default_rng(seed)
    return Table(
        schema,
        {
            "x": rng.uniform(0, 100, n),
            "y": rng.uniform(0, 1, n),
            "kind": rng.integers(0, 3, n),
        },
    )


@pytest.fixture
def table(schema):
    return make_table(schema, 5000)


@pytest.fixture
def db(table):
    return Database.from_table(table, min_block_size=200)


class TestRegistry:
    def test_builtin_strategies_registered(self):
        names = strategy_names()
        for expected in (
            "greedy",
            "woodblock",
            "kdtree",
            "hash",
            "range",
            "random",
            "bottom_up",
        ):
            assert expected in names

    def test_unknown_strategy_lists_names(self):
        with pytest.raises(UnknownStrategyError) as excinfo:
            get_strategy("nope")
        message = str(excinfo.value)
        for name in strategy_names():
            assert name in message

    def test_unknown_strategy_is_value_error(self):
        with pytest.raises(ValueError):
            get_strategy("nope")

    def test_register_custom_strategy(self, db):
        class EveryOther(LayoutStrategy):
            name = "every-other"

            def build(self, ctx: BuildContext) -> BuiltLayout:
                bids = np.arange(ctx.table.num_rows) % 2
                return BuiltLayout(assignment=bids)

        register_strategy(EveryOther())
        try:
            handle = db.build_layout("every-other")
            assert handle.num_blocks == 2
            assert handle.strategy == "every-other"
        finally:
            del _REGISTRY["every-other"]

    def test_duplicate_registration_rejected(self):
        class Dup(LayoutStrategy):
            name = "greedy"

            def build(self, ctx):
                raise AssertionError

        with pytest.raises(ValueError):
            register_strategy(Dup())

    def test_unknown_options_rejected(self, db):
        with pytest.raises(ValueError, match="unknown options"):
            db.build_layout("kdtree", colums=["x"])

    def test_workload_required_strategies(self, db):
        with pytest.raises(ValueError, match="workload-driven"):
            db.build_layout("greedy")


class TestGenerations:
    def test_generations_monotonic(self, db):
        g1 = db.build_layout("greedy", workload=STATEMENTS)
        g2 = db.build_layout("kdtree", activate=False)
        g3 = db.build_layout("random")
        assert (g1.generation, g2.generation, g3.generation) == (1, 2, 3)
        assert db.layouts() == (g1, g2, g3)

    def test_activation(self, db):
        g1 = db.build_layout("greedy", workload=STATEMENTS)
        assert db.active_layout is g1 and db.generation == 1
        g2 = db.build_layout("kdtree", activate=False)
        assert db.active_layout is g1
        db.swap_layout(g2)
        assert db.active_layout is g2 and db.generation == 2

    def test_swap_unknown_handle_rejected(self, db, table):
        other = Database.from_table(table, min_block_size=500)
        foreign = other.build_layout("random")
        with pytest.raises(ValueError, match="unknown layout handle"):
            db.swap_layout(foreign)

    def test_ingest_bumps_generation_and_merges(self, db, schema):
        g1 = db.build_layout("greedy", workload=STATEMENTS)
        batch = make_table(schema, 1500, seed=7)
        g2 = db.ingest(batch)
        assert g2.generation == g1.generation + 1
        assert db.active_layout is g2
        assert g2.store.logical_rows == g1.store.logical_rows + 1500
        # The old generation's store is untouched (immutability).
        assert g1.store.logical_rows == 5000
        # Row counts reflect the merged data.
        expected = int((db.table.column("x") < 20).sum())
        assert db.execute(STATEMENTS[0]).stats.rows_returned == expected

    def test_ingest_preserves_row_id_provenance(self, db, schema):
        db.build_layout("greedy", workload=STATEMENTS)
        before = db.collect_row_ids(STATEMENTS[0])
        batch = make_table(schema, 1000, seed=11)
        db.ingest(batch)
        after = db.collect_row_ids(STATEMENTS[0])
        mask = db.table.column("x") < 20
        np.testing.assert_array_equal(after, np.flatnonzero(mask))
        # Old rows keep their original ids.
        assert set(before) <= set(after)

    def test_ingest_requires_tree(self, db):
        db.build_layout("random")
        with pytest.raises(ValueError, match="tree-backed"):
            db.ingest(make_table(db.schema, 100, seed=3))

    def test_execute_before_build_rejected(self, db):
        with pytest.raises(ValueError, match="no layout yet"):
            db.execute(STATEMENTS[0])


class TestPersistence:
    def test_roundtrip_generation_strategy_tree(self, db, tmp_path):
        db.build_layout("greedy", workload=STATEMENTS)
        db.build_layout("greedy", workload=STATEMENTS)  # generation 2
        db.save(tmp_path / "layout")
        reopened = Database.open(tmp_path / "layout")
        handle = reopened.active_layout
        assert handle is not None
        assert handle.generation == 2
        assert handle.strategy == "greedy"
        assert handle.tree is not None
        assert handle.statements == tuple(STATEMENTS)
        # The tree survives: same leaf descriptions, same routing.
        original = db.active_layout
        assert (
            handle.tree.leaf_descriptions()
            == original.tree.leaf_descriptions()
        )
        for sql in STATEMENTS:
            a = db.execute(sql).stats.result_key()
            b = reopened.execute(sql).stats.result_key()
            assert a == b

    def test_roundtrip_treeless_strategy(self, db, tmp_path):
        db.build_layout("kdtree")
        db.save(tmp_path / "layout")
        reopened = Database.open(tmp_path / "layout")
        handle = reopened.active_layout
        assert handle.strategy == "kdtree"
        assert handle.tree is None
        assert handle.num_blocks == db.active_layout.num_blocks

    def test_next_generation_continues_after_open(self, db, tmp_path, schema):
        db.build_layout("greedy", workload=STATEMENTS)
        db.ingest(make_table(schema, 500, seed=5))  # generation 2
        db.save(tmp_path / "layout", include_table=True)
        reopened = Database.open(tmp_path / "layout")
        assert reopened.generation == 2
        g3 = reopened.build_layout("range", column="x")
        assert g3.generation == 3

    def test_include_table_roundtrip(self, db, tmp_path):
        db.build_layout("greedy", workload=STATEMENTS)
        db.save(tmp_path / "layout", include_table=True)
        reopened = Database.open(tmp_path / "layout")
        assert reopened.table is not None
        np.testing.assert_array_equal(
            reopened.table.column("x"), db.table.column("x")
        )

    def test_open_without_table_cannot_build(self, db, tmp_path):
        db.build_layout("greedy", workload=STATEMENTS)
        db.save(tmp_path / "layout")
        reopened = Database.open(tmp_path / "layout")
        assert reopened.table is None
        with pytest.raises(ValueError, match="no logical table"):
            reopened.build_layout("kdtree")

    def test_tree_layout_from_workload_object_refuses_save(
        self, db, tmp_path
    ):
        from repro.sql.planner import SqlPlanner

        workload = SqlPlanner(db.schema).plan_workload(STATEMENTS)
        db.build_layout("greedy", workload=workload)
        with pytest.raises(ValueError, match="cannot persist"):
            db.save(tmp_path / "layout")


class TestServe:
    def test_serve_shares_result_cache(self, db):
        db.build_layout("greedy", workload=STATEMENTS)
        with db.serve(max_workers=2) as service:
            service.run_closed_loop(STATEMENTS, repeat=3)
        stats = db.result_cache.stats()
        assert stats.entries == len(STATEMENTS)
        # Racing workers may duplicate a miss per statement, but every
        # lookup either hits or misses, and at most the first wave of
        # in-flight duplicates (bounded by the pool) can miss.
        assert stats.hits + stats.misses == 3 * len(STATEMENTS)
        assert stats.hits >= len(STATEMENTS)
        # The library path hits entries the service populated.
        before = db.result_cache.stats().hits
        db.execute(STATEMENTS[0])
        assert db.result_cache.stats().hits == before + 1

    def test_serve_sharded(self, db):
        db.build_layout("greedy", workload=STATEMENTS)
        with db.serve(shards=2, partition="subtree", max_workers=1) as service:
            replay = service.run_closed_loop(STATEMENTS, repeat=2)
        assert replay.completed == 2 * len(STATEMENTS)

    def test_serve_private_result_cache(self, db):
        from repro.serve import ResultCache

        db.build_layout("greedy", workload=STATEMENTS)
        private = ResultCache()
        with db.serve(max_workers=2, result_cache=private) as service:
            service.run_closed_loop(STATEMENTS, repeat=2)
        assert len(private) == len(STATEMENTS)
        assert len(db.result_cache) == 0

    def test_serve_without_result_cache(self, db):
        db.build_layout("greedy", workload=STATEMENTS)
        with db.serve(max_workers=2, result_cache=False) as service:
            service.run_closed_loop(STATEMENTS, repeat=2)
            assert "result cache" not in service.report()
        assert len(db.result_cache) == 0

    def test_serve_rejects_unknown_options_unsharded(self, db):
        db.build_layout("greedy", workload=STATEMENTS)
        with pytest.raises(TypeError, match="coordinator_workers"):
            db.serve(max_workers=2, coordinator_workers=8)

    def test_result_cache_keyed_by_profile(self, db):
        from repro.engine.profiles import SPARK_PARQUET, CostProfile

        db.build_layout("greedy", workload=STATEMENTS)
        row_store = CostProfile(
            name="row-store",
            block_open_ms=SPARK_PARQUET.block_open_ms,
            tuple_column_scan_ns=SPARK_PARQUET.tuple_column_scan_ns,
            columnar=False,
            block_dictionaries=SPARK_PARQUET.block_dictionaries,
        )
        with db.serve(max_workers=1) as columnar:
            a = columnar.execute_sql(STATEMENTS[0]).stats
        with db.serve(max_workers=1, profile=row_store) as rows:
            b = rows.execute_sql(STATEMENTS[0]).stats
        # A non-columnar profile reads every schema column; a hit on
        # the columnar entry would have returned columns_read=1.
        assert a.columns_read == 1
        assert b.columns_read == len(db.schema.column_names)

    def test_cached_hits_do_not_inflate_scan_metrics(self, db):
        db.build_layout("greedy", workload=STATEMENTS)
        with db.serve(max_workers=1) as service:
            replay = service.run_closed_loop(STATEMENTS, repeat=10)
        once = sum(
            r.stats.tuples_scanned
            for r in replay.results[: len(STATEMENTS)]
        )
        # Scan-work counters reflect the single real execution per
        # statement, not 10x; queries/rows count all served results.
        assert replay.snapshot.tuples_scanned == once
        assert replay.snapshot.queries == 10 * len(STATEMENTS)
        assert replay.snapshot.rows_returned == sum(
            r.stats.rows_returned for r in replay.results
        )

    def test_drop_layout(self, db):
        g1 = db.build_layout("greedy", workload=STATEMENTS)
        g2 = db.build_layout("kdtree")
        with pytest.raises(ValueError, match="cannot drop the active"):
            db.drop_layout(g2)
        db.drop_layout(g1)
        assert db.layouts() == (g2,)
        with pytest.raises(ValueError, match="unknown layout handle"):
            db.drop_layout(g1)
