"""Unit tests for the repro CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.storage import Schema, Table, categorical, numeric, save_table


@pytest.fixture
def table_dir(tmp_path):
    rng = np.random.default_rng(0)
    schema = Schema(
        [
            numeric("x", (0.0, 100.0)),
            numeric("y", (0.0, 1.0)),
            categorical("kind", ["a", "b", "c"]),
        ]
    )
    table = Table(
        schema,
        {
            "x": rng.uniform(0, 100, 5000),
            "y": rng.uniform(0, 1, 5000),
            "kind": rng.integers(0, 3, 5000),
        },
    )
    path = tmp_path / "table"
    save_table(table, path)
    return path


@pytest.fixture
def queries_file(tmp_path):
    path = tmp_path / "wl.sql"
    path.write_text(
        "-- workload\n"
        "SELECT x FROM t WHERE x < 20\n"
        "\n"
        "SELECT x FROM t WHERE kind = 'b' AND y < 0.2\n"
        "SELECT x FROM t WHERE x >= 80 AND kind IN ('a','c')\n"
    )
    return path


@pytest.fixture
def layout_dir(table_dir, queries_file, tmp_path, capsys):
    out = tmp_path / "layout"
    code = main(
        [
            "build",
            "--table", str(table_dir),
            "--queries", str(queries_file),
            "--out", str(out),
            "--min-block-size", "200",
        ]
    )
    assert code == 0
    capsys.readouterr()
    return out


class TestBuild:
    def test_build_writes_artifacts(self, layout_dir):
        assert (layout_dir / "catalog.json").exists()
        assert (layout_dir / "qdtree.json").exists()
        meta = json.loads((layout_dir / "layout-meta.json").read_text())
        assert meta["method"] == "greedy"
        assert meta["num_blocks"] >= 2

    def test_build_woodblock(self, table_dir, queries_file, tmp_path, capsys):
        out = tmp_path / "layout-rl"
        code = main(
            [
                "build",
                "--table", str(table_dir),
                "--queries", str(queries_file),
                "--out", str(out),
                "--method", "woodblock",
                "--episodes", "4",
                "--hidden-dim", "16",
                "--min-block-size", "200",
            ]
        )
        assert code == 0
        assert "trained 4 episodes" in capsys.readouterr().out

    def test_build_empty_queries_fails(self, table_dir, tmp_path, capsys):
        empty = tmp_path / "empty.sql"
        empty.write_text("-- nothing\n")
        # Helpers raise ValueError (library-friendly); main converts to
        # a nonzero exit code at the top level instead of SystemExit.
        code = main(
            [
                "build",
                "--table", str(table_dir),
                "--queries", str(empty),
                "--out", str(tmp_path / "x"),
            ]
        )
        assert code == 2
        assert "no queries found" in capsys.readouterr().err


class TestStrategyFlag:
    def test_build_via_registry_strategy(
        self, table_dir, queries_file, tmp_path, capsys
    ):
        out = tmp_path / "layout-kd"
        code = main(
            [
                "build",
                "--table", str(table_dir),
                "--queries", str(queries_file),
                "--out", str(out),
                "--strategy", "kdtree",
                "--min-block-size", "500",
            ]
        )
        assert code == 0
        assert "kdtree, generation 1" in capsys.readouterr().out
        meta = json.loads((out / "layout-meta.json").read_text())
        assert meta["strategy"] == "kdtree"
        assert meta["generation"] == 1
        # Tree-less layouts still inspect and route.
        assert main(["inspect", "--layout", str(out)]) == 0
        assert "kdtree" in capsys.readouterr().out
        code = main(
            [
                "route",
                "--layout", str(out),
                "--sql", "SELECT x FROM t WHERE x < 5",
            ]
        )
        assert code == 0
        assert "returned" in capsys.readouterr().out

    def test_strategy_typo_lists_registered_names(
        self, table_dir, queries_file, tmp_path, capsys
    ):
        # Registry validation (not argparse choices): main() returns
        # exit code 2 and stderr names every registered strategy.
        code = main(
            [
                "build",
                "--table", str(table_dir),
                "--queries", str(queries_file),
                "--out", str(tmp_path / "x"),
                "--strategy", "greedyy",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown layout strategy 'greedyy'" in err
        from repro.db import strategy_names

        for name in strategy_names():
            assert name in err

    def test_late_registered_strategy_accepted(
        self, table_dir, queries_file, tmp_path
    ):
        """A strategy registered AFTER parser construction builds fine
        (the old argparse ``choices`` list would have rejected it)."""
        from repro.db import register_strategy
        from repro.db.registry import _REGISTRY, RandomStrategy

        class LateStrategy(RandomStrategy):
            name = "late-test-strategy"

        register_strategy(LateStrategy())
        try:
            code = main(
                [
                    "build",
                    "--table", str(table_dir),
                    "--queries", str(queries_file),
                    "--out", str(tmp_path / "late"),
                    "--strategy", "late-test-strategy",
                    "--min-block-size", "500",
                ]
            )
            assert code == 0
        finally:
            _REGISTRY.pop("late-test-strategy", None)

    def test_help_lists_registered_strategies(self, capsys):
        with pytest.raises(SystemExit):
            main(["build", "--help"])
        out = capsys.readouterr().out
        from repro.db import strategy_names

        for name in strategy_names():
            assert name in out

    def test_method_alias_still_works_but_warns(
        self, table_dir, queries_file, tmp_path, capsys
    ):
        out = tmp_path / "layout-alias"
        with pytest.warns(DeprecationWarning, match="--method is deprecated"):
            code = main(
                [
                    "build",
                    "--table", str(table_dir),
                    "--queries", str(queries_file),
                    "--out", str(out),
                    "--method", "greedy",
                    "--min-block-size", "200",
                ]
            )
        assert code == 0
        meta = json.loads((out / "layout-meta.json").read_text())
        assert meta["method"] == "greedy"
        # DeprecationWarning is invisible under default CLI warning
        # filters, so the alias also tells the user on stderr.
        assert "--method is deprecated" in capsys.readouterr().err

    def test_strategy_flag_does_not_warn(
        self, table_dir, queries_file, tmp_path
    ):
        import warnings

        out = tmp_path / "layout-nowarn"
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            code = main(
                [
                    "build",
                    "--table", str(table_dir),
                    "--queries", str(queries_file),
                    "--out", str(out),
                    "--strategy", "greedy",
                    "--min-block-size", "200",
                ]
            )
        assert code == 0


class TestInspect:
    def test_inspect_prints_blocks(self, layout_dir, capsys):
        assert main(["inspect", "--layout", str(layout_dir)]) == 0
        out = capsys.readouterr().out
        assert "cut histogram" in out
        assert "block 0" in out


class TestRoute:
    def test_route_prunes_blocks(self, layout_dir, capsys):
        code = main(
            [
                "route",
                "--layout", str(layout_dir),
                "--sql", "SELECT x FROM t WHERE x < 5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "BID IN (" in out
        assert "returned" in out

    def test_route_counts_match_table(self, layout_dir, table_dir, capsys):
        from repro.storage import load_table

        table = load_table(table_dir)
        expected = int((table.column("x") < 5).sum())
        main(
            [
                "route",
                "--layout", str(layout_dir),
                "--sql", "SELECT x FROM t WHERE x < 5",
            ]
        )
        out = capsys.readouterr().out
        assert f"returned {expected} rows" in out


class TestServeBench:
    def test_replays_layout_workload(self, layout_dir, capsys):
        code = main(
            [
                "serve-bench",
                "--layout", str(layout_dir),
                "--threads", "2",
                "--repeat", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "qps" in out
        assert "cache hit rate" in out
        assert "scheduler" in out

    def test_compare_prints_speedup(self, layout_dir, queries_file, capsys):
        code = main(
            [
                "serve-bench",
                "--layout", str(layout_dir),
                "--queries", str(queries_file),
                "--threads", "2",
                "--repeat", "5",
                "--compare",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serial uncached baseline" in out
        assert "serving speedup" in out

    @pytest.mark.parametrize("partition", ["rr", "subtree"])
    def test_sharded_replay_and_compare(self, layout_dir, partition, capsys):
        code = main(
            [
                "serve-bench",
                "--layout", str(layout_dir),
                "--shards", "2",
                "--partition", partition,
                "--threads", "2",
                "--repeat", "3",
                "--compare",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"topology           2 shards ({partition})" in out
        assert "shard 0" in out and "shard 1" in out
        assert "1-shard service" in out
        assert "sharded (2 shards) speedup" in out
        assert "serial uncached baseline" in out

    def test_no_cache_and_open_loop(self, layout_dir, capsys):
        code = main(
            [
                "serve-bench",
                "--layout", str(layout_dir),
                "--no-cache",
                "--mode", "open",
                "--target-qps", "500",
                "--repeat", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cache hit rate" not in out
        assert "rejected" in out


@pytest.fixture
def adaptive_layout_dir(table_dir, queries_file, tmp_path, capsys):
    """A layout saved with its logical table, so reopening it can
    rebuild (the adapt loop's requirement)."""
    out = tmp_path / "layout-adapt"
    code = main(
        [
            "build",
            "--table", str(table_dir),
            "--queries", str(queries_file),
            "--out", str(out),
            "--min-block-size", "200",
            "--include-table",
        ]
    )
    assert code == 0
    capsys.readouterr()
    return out


class TestAdaptCommands:
    def test_build_include_table_persists_table(self, adaptive_layout_dir):
        assert (adaptive_layout_dir / "table" / "table.npz").exists()
        meta = json.loads(
            (adaptive_layout_dir / "layout-meta.json").read_text()
        )
        assert "workload_signature" in meta

    def test_serve_bench_adapt(self, adaptive_layout_dir, capsys):
        code = main(
            [
                "serve-bench",
                "--layout", str(adaptive_layout_dir),
                "--adapt",
                "--admission", "lfu",
                "--repeat", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "drift score" in out
        assert "adaptation" in out

    def test_serve_bench_adapt_rejects_shards(
        self, adaptive_layout_dir, capsys
    ):
        code = main(
            [
                "serve-bench",
                "--layout", str(adaptive_layout_dir),
                "--adapt",
                "--shards", "2",
            ]
        )
        assert code == 2
        assert "--adapt" in capsys.readouterr().err

    def test_adapt_report_with_drift(
        self, adaptive_layout_dir, tmp_path, capsys
    ):
        drift = tmp_path / "drift.sql"
        drift.write_text(
            "\n".join(
                f"SELECT y FROM t WHERE y >= {lo:.2f} AND y < {lo + 0.05:.2f}"
                for lo in (0.05, 0.20, 0.35, 0.50, 0.65, 0.80)
            )
        )
        code = main(
            [
                "adapt-report",
                "--layout", str(adaptive_layout_dir),
                "--drift-queries", str(drift),
                "--repeat", "12",
                "--window", "48",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline queries" in out
        assert "drifted queries" in out
        assert "drift score" in out
        assert "adaptation" in out

    def test_adapt_report_without_table_fails_helpfully(
        self, layout_dir, capsys
    ):
        code = main(["adapt-report", "--layout", str(layout_dir)])
        assert code == 2
        assert "logical table" in capsys.readouterr().err


class TestObservabilityFlags:
    def test_json_output_is_one_parseable_document(
        self, layout_dir, capsys
    ):
        code = main(
            [
                "serve-bench",
                "--layout", str(layout_dir),
                "--repeat", "3",
                "--json",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)  # stdout is pure JSON
        assert doc["command"] == "serve-bench"
        assert doc["replay"]["completed"] == doc["replay"]["issued"] == 9
        assert doc["metrics"]["queries"] == 9
        # The human report moved to stderr, untouched.
        assert "cache hit rate" in captured.err

    def test_emit_bench_writes_schema_valid_file(
        self, layout_dir, tmp_path, capsys
    ):
        from repro.obs import validate_bench

        bench_dir = tmp_path / "bench-out"
        code = main(
            [
                "serve-bench",
                "--layout", str(layout_dir),
                "--repeat", "3",
                "--emit-bench", str(bench_dir),
                "--scenario", "cli_smoke",
            ]
        )
        assert code == 0
        path = bench_dir / "BENCH_cli_smoke.json"
        assert path.exists()
        doc = json.loads(path.read_text())
        validate_bench(doc)  # no raise
        assert doc["source"] == "serve-bench"
        assert doc["replay"]["completed"] == 9

    def test_trace_flag_writes_both_exports(
        self, layout_dir, tmp_path, capsys
    ):
        prefix = tmp_path / "run"
        code = main(
            [
                "serve-bench",
                "--layout", str(layout_dir),
                "--shards", "2",
                "--repeat", "2",
                "--trace", str(prefix),
            ]
        )
        assert code == 0
        assert "Perfetto" in capsys.readouterr().out
        jsonl = (tmp_path / "run.jsonl").read_text().splitlines()
        assert len(jsonl) == 6  # one trace per admitted query
        for line in jsonl:
            assert json.loads(line)["kind"] == "query"
        chrome = json.loads((tmp_path / "run.trace.json").read_text())
        assert chrome["traceEvents"]

    def test_metrics_export_prometheus(self, layout_dir, capsys):
        code = main(
            [
                "metrics-export",
                "--layout", str(layout_dir),
                "--repeat", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_serve_queries_total counter" in out
        assert 'repro_serve_queries_total{service="cli"} 6' in out
        assert "repro_scheduler_submitted_total" in out
        assert "repro_cache_hits_total" in out

    def test_metrics_export_json(self, layout_dir, capsys):
        code = main(
            [
                "metrics-export",
                "--layout", str(layout_dir),
                "--repeat", "2",
                "--format", "json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        fam = doc["repro_serve_queries_total"]
        assert fam["type"] == "counter"
        assert fam["samples"][0]["value"] == 6

    def test_adapt_report_json_carries_ledger(
        self, adaptive_layout_dir, capsys
    ):
        code = main(
            [
                "adapt-report",
                "--layout", str(adaptive_layout_dir),
                "--repeat", "3",
                "--json",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        assert doc["command"] == "adapt-report"
        assert doc["extra"]["generation"] >= 1
        assert "drift_score" in doc["extra"]
        assert doc["metrics"]["adapt"] is not None
        assert "adaptation" in captured.err
