"""Concurrency stress tests for the serving tier.

Hammers :class:`ShardedLayoutService` (both scheduler layers) and
:class:`BlockCache` from many client threads mixing repeated and
unique statements, and asserts the invariants that make concurrent
serving trustworthy:

* no lost or duplicated results — every submission produces exactly
  one result, and every result's row count matches ground truth;
* the buffer pool never exceeds its byte budget, sampled live while
  writers are racing, not just at the end;
* scheduler counters reconcile: admitted = completed + in-flight, and
  everything offered is either admitted or shed.
"""

import threading
import time

import numpy as np
import pytest

from repro.bench import build_greedy_layout
from repro.serve import (
    AdmissionRejected,
    BlockCache,
    SchedulerStats,
    ShardedLayoutService,
)
from repro.sql import SqlPlanner
from repro.storage import BlockStore, Schema, Table, numeric
from repro.workloads import disjunctive_dataset

NUM_CLIENTS = 8


@pytest.fixture(scope="module")
def layout():
    return build_greedy_layout(disjunctive_dataset(num_rows=20_000, seed=0))


REPEATED = [
    "SELECT * FROM t WHERE cpu < 0.4",
    "SELECT cpu FROM t WHERE cpu >= 0.3 AND disk < 0.6",
    "SELECT disk FROM t WHERE disk >= 0.8",
    "SELECT * FROM t WHERE cpu < 0.2 OR disk < 0.1",
]


def unique_statement(client: int, i: int) -> str:
    """A statement no other client issues (fresh literals -> fresh
    predicate fingerprint -> routing-memo miss path)."""
    lo = 1.0 + client * 7.0 + (i % 5) * 0.9
    return f"SELECT * FROM t WHERE cpu >= {lo:.3f} AND cpu <= {lo + 6.5:.3f}"


def drain(service, timeout: float = 5.0) -> None:
    """Wait for both scheduler layers' done-callbacks to settle: a
    future's result can be observable a beat before its completion
    callback has decremented the in-flight counter."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        coord, agg = service.scheduler_stats()
        if coord.in_flight == 0 and agg.in_flight == 0:
            return
        time.sleep(0.002)
    raise AssertionError("scheduler counters did not drain")


def ground_truth_rows(layout, sql: str) -> int:
    query = SqlPlanner(layout.store.schema).plan(sql).query
    ids = []
    for block in layout.store:
        data = block.read_columns(sorted(query.predicate.referenced_columns()))
        ids.append(block.row_ids[query.predicate.evaluate(data)])
    return len(np.unique(np.concatenate(ids))) if ids else 0


@pytest.mark.slow
@pytest.mark.parametrize("partition", ["rr", "subtree"])
def test_hammer_sharded_service(layout, partition):
    """>= 8 client threads through the scatter-gather stack: no lost or
    duplicated results, truth-exact row counts, reconciled counters."""
    rounds = 6
    # Budget small enough that eviction happens under load.
    budget = 256 * 1024
    with ShardedLayoutService(
        layout.store,
        layout.tree,
        num_shards=4,
        partition=partition,
        cache_budget_bytes=budget,
        max_workers_per_shard=2,
    ) as service:
        per_shard_budget = budget // 4
        results = [None] * NUM_CLIENTS
        errors = []
        over_budget = []
        stop_sampling = threading.Event()

        def sample_cache():
            while not stop_sampling.is_set():
                for shard in service.shards:
                    stats = shard.cache.stats()
                    if stats.cached_bytes > per_shard_budget:
                        over_budget.append(stats)
                stop_sampling.wait(0.001)

        def client(idx: int):
            try:
                futures = []
                for r in range(rounds):
                    for sql in REPEATED:
                        futures.append((sql, service.submit_sql(sql)))
                    sql = unique_statement(idx, r)
                    futures.append((sql, service.submit_sql(sql)))
                results[idx] = [(sql, f.result(timeout=30)) for sql, f in futures]
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        sampler = threading.Thread(target=sample_cache)
        sampler.start()
        clients = [
            threading.Thread(target=client, args=(i,))
            for i in range(NUM_CLIENTS)
        ]
        for t in clients:
            t.start()
        for t in clients:
            t.join()
        stop_sampling.set()
        sampler.join()

        assert not errors
        # No lost results: every client got one result per submission.
        per_client = rounds * (len(REPEATED) + 1)
        assert all(len(r) == per_client for r in results)
        # No duplicated/corrupted results: row counts are truth-exact
        # for every statement, repeated and unique alike.
        truth = {}
        for client_results in results:
            for sql, served in client_results:
                if sql not in truth:
                    truth[sql] = ground_truth_rows(layout, sql)
                assert served.stats.rows_returned == truth[sql], sql

        # Cache stayed under budget at every sampled instant and at rest.
        assert not over_budget
        for shard in service.shards:
            assert shard.cache.stats().cached_bytes <= per_shard_budget

        # Counters reconcile on both scheduler layers.
        drain(service)
        coord, agg = service.scheduler_stats()
        total = NUM_CLIENTS * per_client
        assert coord.submitted == total
        assert coord.submitted == coord.completed + coord.in_flight
        assert coord.in_flight == 0
        assert coord.offered == coord.submitted + coord.rejected
        assert agg.submitted == agg.completed
        assert agg.in_flight == 0
        # Coordinator metrics saw every query exactly once.
        assert service.snapshot().queries == total


@pytest.mark.slow
def test_open_loop_admitted_equals_completed_plus_shed(layout):
    """Open-loop overload: every offered query is either admitted (and
    then completed) or shed — never lost, never double-counted."""
    with ShardedLayoutService(
        layout.store,
        layout.tree,
        num_shards=2,
        partition="rr",
        max_workers_per_shard=1,
        queue_depth=1,
        coordinator_workers=2,
    ) as service:
        replay = service.run_open_loop(
            REPEATED, target_qps=10_000.0, repeat=20
        )
        drain(service)
        coord, _ = service.scheduler_stats()
    offered = len(REPEATED) * 20
    assert replay.issued == offered
    assert replay.completed + replay.rejected == offered
    assert replay.completed >= 1
    assert coord.submitted == replay.completed  # admitted == completed
    assert coord.rejected == replay.rejected  # shed
    assert coord.in_flight == 0


@pytest.mark.slow
def test_hammer_block_cache_budget_never_exceeded():
    """Raw BlockCache under 8 racing readers with a tiny budget: the
    byte budget holds at every sampled instant, and hit/miss counters
    account for every read exactly once."""
    schema = Schema([numeric("x", (0.0, 1.0)), numeric("y", (0.0, 1.0))])
    rng = np.random.default_rng(3)
    n = 16_000
    table = Table(
        schema, {"x": rng.uniform(size=n), "y": rng.uniform(size=n)}
    )
    store = BlockStore.from_assignment(table, np.repeat(np.arange(16), n // 16))
    one_column = store.block(0).decoded_nbytes(["x"])
    cache = BlockCache(budget_bytes=3 * one_column)

    iterations = 40
    errors = []
    over_budget = []
    column_reads = [0] * NUM_CLIENTS
    stop = threading.Event()

    def sampler():
        while not stop.is_set():
            stats = cache.stats()
            if stats.cached_bytes > cache.budget_bytes:
                over_budget.append(stats)
            stop.wait(0.0005)

    def reader(seed: int):
        local = np.random.default_rng(seed)
        try:
            for _ in range(iterations):
                block = store.block(int(local.integers(0, 16)))
                names = ["x", "y"] if local.integers(0, 2) else ["x"]
                out = cache.read_columns(block, names)
                column_reads[seed] += len(names)
                for name in names:
                    np.testing.assert_array_equal(
                        out[name], block.read_column(name)
                    )
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    sampling = threading.Thread(target=sampler)
    sampling.start()
    readers = [
        threading.Thread(target=reader, args=(i,)) for i in range(NUM_CLIENTS)
    ]
    for t in readers:
        t.start()
    for t in readers:
        t.join()
    stop.set()
    sampling.join()

    assert not errors
    assert not over_budget
    stats = cache.stats()
    assert stats.cached_bytes <= cache.budget_bytes
    # Every (read, column) accounted exactly once as hit or miss.
    assert stats.hits + stats.misses == sum(column_reads)


def small_layout():
    """A tiny tree-less layout: enough blocks to scan, fast to build."""
    from repro.db import Database

    schema = Schema([numeric("x", (0.0, 1.0)), numeric("y", (0.0, 1.0))])
    rng = np.random.default_rng(9)
    n = 6_000
    table = Table(
        schema, {"x": rng.uniform(size=n), "y": rng.uniform(size=n)}
    )
    db = Database.from_table(table, min_block_size=300)
    db.build_layout("range", column="x")
    return db


def saturate(service, statements, burst: int) -> int:
    """Fire a non-blocking burst; returns how many were shed."""
    futures = []
    shed = 0
    for i in range(burst):
        try:
            futures.append(
                service.submit_sql(statements[i % len(statements)], block=False)
            )
        except AdmissionRejected:
            shed += 1
    for f in futures:
        f.result(timeout=30)
    return shed


SHED_STATEMENTS = [
    "SELECT * FROM t WHERE x < 0.7",
    "SELECT y FROM t WHERE y >= 0.2 AND x < 0.9",
]


def test_shed_counters_reconcile_single_service():
    """Saturating burst through the pipeline-backed LayoutService:
    every offered query is admitted or shed, admitted == completed
    after the drain, and nothing stays in flight."""
    db = small_layout()
    burst = 120
    with db.serve(
        max_workers=1, queue_depth=2, result_cache=False
    ) as service:
        shed = saturate(service, SHED_STATEMENTS, burst)
        drain_single(service)
        stats = service.scheduler.stats()
    assert shed > 0, "burst never saturated the queue"
    assert stats.rejected == shed
    assert stats.in_flight == 0
    assert stats.submitted == stats.completed  # admitted == completed
    assert stats.offered == stats.completed + stats.rejected
    assert stats.offered == burst


def test_shed_counters_reconcile_sharded_service():
    """Same reconciliation through the sharded coordinator: the
    coordinator sheds, shard pools complete everything scattered to
    them (the scatter stage's deferred pass blocks, never sheds)."""
    db = small_layout()
    burst = 120
    with db.serve(
        shards=2,
        partition="rr",
        max_workers=1,
        queue_depth=1,
        coordinator_workers=2,
        result_cache=False,
    ) as service:
        shed = saturate(service, SHED_STATEMENTS, burst)
        drain(service)
        coord, agg = service.scheduler_stats()
    assert shed > 0, "burst never saturated the coordinator queue"
    assert coord.rejected == shed
    assert coord.in_flight == 0
    assert coord.submitted == coord.completed  # admitted == completed
    assert coord.offered == coord.completed + coord.rejected
    assert coord.offered == burst
    # Shard pools never shed scattered work and fully drained too.
    assert agg.in_flight == 0
    assert agg.submitted == agg.completed


def drain_single(service, timeout: float = 5.0) -> None:
    """Single-service variant of :func:`drain`."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if service.scheduler.stats().in_flight == 0:
            return
        time.sleep(0.002)
    raise AssertionError("scheduler counters did not drain")


def test_scheduler_stats_merge_reconciles():
    parts = [
        SchedulerStats(
            submitted=10, completed=8, rejected=2, max_in_flight=4, in_flight=2
        ),
        SchedulerStats(
            submitted=5, completed=5, rejected=0, max_in_flight=2, in_flight=0
        ),
    ]
    merged = SchedulerStats.merged(parts)
    assert merged.submitted == 15
    assert merged.completed == 13
    assert merged.in_flight == 2
    assert merged.submitted == merged.completed + merged.in_flight
    assert merged.offered == 17
