"""Unit tests for repro.baselines (random, range, kd-tree, subsumption)."""

import numpy as np
import pytest

from repro.baselines import (
    KdTreePartitioner,
    RandomPartitioner,
    RangePartitioner,
    implies,
    unary_implies,
)
from repro.core import (
    column_eq,
    column_ge,
    column_gt,
    column_in,
    column_le,
    column_lt,
    conjunction,
    disjunction,
)


class TestRandomPartitioner:
    def test_block_sizes(self, mixed_table):
        bids = RandomPartitioner(block_size=300, seed=0).partition(mixed_table)
        _, counts = np.unique(bids, return_counts=True)
        assert counts.max() <= 300
        assert counts.min() >= mixed_table.num_rows % 300 or counts.min() == 300

    def test_deterministic_by_seed(self, mixed_table):
        a = RandomPartitioner(block_size=100, seed=5).partition(mixed_table)
        b = RandomPartitioner(block_size=100, seed=5).partition(mixed_table)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, mixed_table):
        a = RandomPartitioner(block_size=100, seed=1).partition(mixed_table)
        b = RandomPartitioner(block_size=100, seed=2).partition(mixed_table)
        assert (a != b).any()

    def test_invalid_block_size(self, mixed_table):
        with pytest.raises(ValueError):
            RandomPartitioner(block_size=0).partition(mixed_table)


class TestRangePartitioner:
    def test_blocks_are_sorted_runs(self, mixed_table):
        bids = RangePartitioner(column="age", block_size=250).partition(
            mixed_table
        )
        ages = mixed_table.column("age")
        # Max of block i <= min of block i+1.
        num_blocks = bids.max() + 1
        maxes = [ages[bids == i].max() for i in range(num_blocks)]
        mins = [ages[bids == i].min() for i in range(num_blocks)]
        for i in range(num_blocks - 1):
            assert maxes[i] <= mins[i + 1]

    def test_covers_all_rows(self, mixed_table):
        bids = RangePartitioner(column="salary", block_size=128).partition(
            mixed_table
        )
        assert len(bids) == mixed_table.num_rows

    def test_invalid_block_size(self, mixed_table):
        with pytest.raises(ValueError):
            RangePartitioner(column="age", block_size=-1).partition(mixed_table)


class TestKdTree:
    def test_respects_min_block_size(self, mixed_table):
        part = KdTreePartitioner(columns=["age", "salary"], min_block_size=100)
        bids = part.partition(mixed_table)
        _, counts = np.unique(bids, return_counts=True)
        assert counts.min() >= 100

    def test_produces_multiple_blocks(self, mixed_table):
        part = KdTreePartitioner(columns=["age", "salary"], min_block_size=100)
        bids = part.partition(mixed_table)
        assert bids.max() > 0

    def test_constant_column_terminates(self, mixed_schema):
        from repro.storage import Table

        table = Table(
            mixed_schema,
            {
                "age": np.full(1000, 50.0),
                "salary": np.full(1000, 1.0),
                "city": np.zeros(1000, dtype=np.int64),
                "level": np.zeros(1000, dtype=np.int64),
            },
        )
        part = KdTreePartitioner(columns=["age", "salary"], min_block_size=10)
        bids = part.partition(table)
        assert bids.max() == 0  # single block, no infinite recursion

    def test_no_columns_rejected(self, mixed_table):
        with pytest.raises(ValueError):
            KdTreePartitioner(columns=[], min_block_size=10).partition(
                mixed_table
            )


class TestUnaryImplies:
    @pytest.mark.parametrize(
        "p,f,expected",
        [
            (column_lt("x", 5), column_lt("x", 10), True),
            (column_lt("x", 10), column_lt("x", 5), False),
            (column_le("x", 5), column_lt("x", 6), True),
            (column_lt("x", 5), column_le("x", 5), True),
            (column_ge("x", 10), column_gt("x", 5), True),
            (column_gt("x", 5), column_ge("x", 10), False),
            (column_eq("x", 5), column_lt("x", 10), True),
            (column_eq("x", 50), column_lt("x", 10), False),
            (column_in("x", [1, 2]), column_in("x", [1, 2, 3]), True),
            (column_in("x", [1, 4]), column_in("x", [1, 2, 3]), False),
            (column_eq("x", 2), column_in("x", [1, 2]), True),
            (column_lt("y", 5), column_lt("x", 5), False),
        ],
    )
    def test_cases(self, p, f, expected):
        assert unary_implies(p, f) is expected

    def test_identity(self):
        p = column_in("x", [1, 2])
        assert unary_implies(p, p)


class TestImplies:
    def test_conjunct_implies(self):
        q = conjunction([column_lt("x", 5), column_eq("c", 1)])
        assert implies(q, column_lt("x", 10))
        assert implies(q, column_eq("c", 1))
        assert not implies(q, column_eq("c", 2))

    def test_disjunction_requires_all_branches(self):
        q = disjunction([column_lt("x", 3), column_lt("x", 7)])
        assert implies(q, column_lt("x", 10))
        assert not implies(q, column_lt("x", 5))

    def test_advanced_cut_syntactic(self):
        from repro.core import AdvancedCut

        ac = AdvancedCut("a", 0, lambda c: c["x"] > 0)
        assert implies(ac, ac)
        assert not implies(ac, column_lt("x", 5))

    def test_soundness_empirically(self, mixed_table):
        """If implies(q, f) then rows(q) is a subset of rows(f)."""
        candidates = [
            column_lt("age", 30),
            column_lt("age", 60),
            column_ge("age", 20),
            column_eq("city", 1),
            column_in("city", [0, 1]),
            conjunction([column_lt("age", 30), column_eq("city", 1)]),
            disjunction([column_lt("age", 10), column_lt("age", 25)]),
        ]
        columns = mixed_table.columns()
        for q in candidates:
            for f in candidates:
                if implies(q, f):
                    qm = q.evaluate(columns)
                    fm = f.evaluate(columns)
                    assert not (qm & ~fm).any(), (q, f)
