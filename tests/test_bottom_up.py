"""Unit tests for repro.baselines.bottom_up (Sun et al.)."""

import numpy as np
import pytest

from repro.baselines import BottomUpConfig, BottomUpPartitioner, select_features
from repro.core import CutRegistry, Query, Workload, column_eq, column_lt
from repro.storage import BlockStore


@pytest.fixture
def setup(mixed_schema, mixed_table, mixed_workload):
    registry = CutRegistry.from_workload(mixed_schema, mixed_workload)
    return registry, mixed_table, mixed_workload


class TestFeatureSelection:
    def test_selects_up_to_max(self, setup):
        registry, table, workload = setup
        config = BottomUpConfig(min_block_size=50, max_features=2)
        chosen = select_features(registry, workload, table, config)
        assert 0 < len(chosen) <= 2

    def test_selectivity_threshold_filters(self, setup):
        registry, table, workload = setup
        # Threshold 0 rejects everything (every cut selects > 0%).
        config = BottomUpConfig(min_block_size=50, selectivity_threshold=0.0)
        chosen = select_features(registry, workload, table, config)
        assert chosen == []

    def test_untuned_keeps_unselective_features(self, setup):
        registry, table, workload = setup
        untuned = select_features(
            registry, workload, table, BottomUpConfig(min_block_size=50)
        )
        tuned = select_features(
            registry,
            workload,
            table,
            BottomUpConfig(min_block_size=50, selectivity_threshold=0.3),
        )
        assert set(tuned) <= set(untuned) or len(tuned) <= len(untuned)

    def test_frequency_threshold(self, setup):
        registry, table, workload = setup
        config = BottomUpConfig(min_block_size=50, frequency_threshold=10**9)
        chosen = select_features(registry, workload, table, config)
        assert chosen == []


class TestPartition:
    def test_blocks_meet_min_size(self, setup):
        registry, table, workload = setup
        part = BottomUpPartitioner(
            registry, workload, BottomUpConfig(min_block_size=150)
        )
        bids = part.partition(table)
        _, counts = np.unique(bids, return_counts=True)
        # All blocks >= b (unless merging collapsed everything).
        if len(counts) > 1:
            assert counts.min() >= 150

    def test_all_rows_assigned(self, setup):
        registry, table, workload = setup
        part = BottomUpPartitioner(
            registry, workload, BottomUpConfig(min_block_size=100)
        )
        bids = part.partition(table)
        assert len(bids) == table.num_rows
        assert bids.min() >= 0

    def test_no_features_single_block(self, setup):
        registry, table, workload = setup
        part = BottomUpPartitioner(
            registry,
            workload,
            BottomUpConfig(min_block_size=100, selectivity_threshold=0.0),
        )
        bids = part.partition(table)
        assert (bids == 0).all()

    def test_skipping_beats_random(self, mixed_schema, mixed_table):
        """Bottom-Up should group rows so some queries skip blocks."""
        from repro.baselines import RandomPartitioner
        from repro.core import column_ge
        from repro.engine import SPARK_PARQUET, ScanEngine, WorkloadReport

        wl = Workload(
            [
                Query(column_lt("age", 25), name="young"),
                Query(column_eq("city", 1), name="sf"),
                Query(column_ge("age", 75), name="old"),
            ]
        )
        registry = CutRegistry.from_workload(mixed_schema, wl)
        bu = BottomUpPartitioner(
            registry, wl, BottomUpConfig(min_block_size=100)
        )
        bu_bids = bu.partition(mixed_table)
        rnd_bids = RandomPartitioner(block_size=200, seed=0).partition(
            mixed_table
        )

        def scanned(bids):
            store = BlockStore.from_assignment(mixed_table, bids)
            engine = ScanEngine(store, SPARK_PARQUET)
            report = WorkloadReport("x", engine.execute_workload(wl))
            return report.total_tuples_scanned

        assert scanned(bu_bids) < scanned(rnd_bids)

    def test_selected_features_exposed(self, setup):
        registry, table, workload = setup
        part = BottomUpPartitioner(
            registry, workload, BottomUpConfig(min_block_size=100)
        )
        part.partition(table)
        assert part.selected_features
        assert all(0 <= f < len(registry) for f in part.selected_features)
