"""Tests for repro.obs: clock, metrics registry, bench trajectories."""

import json
import threading
import time

import numpy as np
import pytest

from repro.obs import (
    BENCH_SCHEMA_VERSION,
    MetricsRegistry,
    Sample,
    bench_document,
    bench_path,
    now,
    plain,
    validate_bench,
    wall_time,
    write_bench,
)
from repro.obs.bench import main as bench_main
from repro.serve.metrics import ServingMetrics


# ----------------------------------------------------------------------
# Clock
# ----------------------------------------------------------------------


class TestClock:
    def test_now_is_monotonic(self):
        samples = [now() for _ in range(100)]
        assert all(b >= a for a, b in zip(samples, samples[1:]))

    def test_wall_time_is_epoch(self):
        assert abs(wall_time() - time.time()) < 5.0


# ----------------------------------------------------------------------
# Registry primitives
# ----------------------------------------------------------------------


class TestPrimitives:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "help text")
        c.inc()
        c.inc(2, shard=0)
        c.inc(3, shard=0)
        c.inc(7, shard=1)
        assert c.value() == 1
        assert c.value(shard=0) == 5
        assert c.value(shard=1) == 7

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("repro_test_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("repro_depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value() == 13

    def test_histogram_cumulative_buckets(self):
        h = MetricsRegistry().histogram(
            "repro_lat", buckets=(0.01, 0.1, 1.0)
        )
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        series = h.series()
        assert series.count == 4
        assert series.sum == pytest.approx(5.555)
        # Cumulative: each bucket counts everything <= its bound.
        assert series.bucket_counts == [1, 2, 3]

    def test_histogram_samples_carry_inf_bucket(self):
        h = MetricsRegistry().histogram("repro_lat", buckets=(0.1,))
        h.observe(10.0)
        names = {(s.name, s.labels) for s in h.samples()}
        assert ("repro_lat_bucket", (("le", "+Inf"),)) in names
        assert ("repro_lat_sum", ()) in names
        assert ("repro_lat_count", ()) in names

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("0bad")
        c = reg.counter("repro_ok_total")
        with pytest.raises(ValueError):
            c.inc(1, **{"bad-label": 1})

    def test_get_or_create_is_idempotent_but_kind_checked(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total")
        assert reg.counter("repro_x_total") is a
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_x_total")

    def test_concurrent_increments_reconcile(self):
        """8 threads x 1000 increments: no lost updates."""
        reg = MetricsRegistry()
        c = reg.counter("repro_hammer_total")
        h = reg.histogram("repro_hammer_lat", buckets=(0.5,))
        barrier = threading.Barrier(8)

        def work(tid):
            barrier.wait()
            for _ in range(1000):
                c.inc(1, thread=tid % 2)
                h.observe(0.1)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(thread=0) + c.value(thread=1) == 8000
        assert h.series().count == 8000


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------


class TestExports:
    def test_prometheus_text_shape(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_q_total", "Queries served")
        c.inc(3, service="a")
        text = reg.to_prometheus_text()
        assert "# HELP repro_q_total Queries served" in text
        assert "# TYPE repro_q_total counter" in text
        assert 'repro_q_total{service="a"} 3' in text
        assert text.endswith("\n")

    def test_prometheus_histogram_family_shares_type_line(self):
        reg = MetricsRegistry()
        reg.histogram("repro_lat", "Latency", buckets=(0.1,)).observe(0.05)
        text = reg.to_prometheus_text()
        assert text.count("# TYPE repro_lat histogram") == 1
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_count 1" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("repro_q_total").inc(1, q='say "hi"\n')
        text = reg.to_prometheus_text()
        assert 'q="say \\"hi\\"\\n"' in text

    def test_untouched_metric_still_exported(self):
        reg = MetricsRegistry()
        reg.gauge("repro_idle", "never set")
        assert "repro_idle 0" in reg.to_prometheus_text()

    def test_json_export_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("repro_q_total", "Queries").inc(2, s="x")
        doc = json.loads(json.dumps(reg.to_json()))
        fam = doc["repro_q_total"]
        assert fam["type"] == "counter"
        assert fam["samples"] == [
            {"name": "repro_q_total", "labels": {"s": "x"}, "value": 2.0}
        ]

    def test_collector_yields_samples_at_export(self):
        reg = MetricsRegistry()
        state = {"v": 1}
        reg.register_collector(
            lambda: [Sample.of("repro_live", state["v"], kind="gauge")]
        )
        assert "repro_live 1" in reg.to_prometheus_text()
        state["v"] = 9
        assert "repro_live 9" in reg.to_prometheus_text()

    def test_failing_collector_is_counted_not_fatal(self):
        reg = MetricsRegistry()

        def boom():
            raise RuntimeError("collector bug")

        reg.register_collector(boom, name="boom")
        text = reg.to_prometheus_text()
        assert "repro_collector_errors 1" in text

    def test_serving_metrics_publish_is_a_thin_view(self):
        """ServingMetrics stays authoritative; the registry reflects
        the live snapshot at each export."""
        from repro.engine.executor import QueryStats

        stats = QueryStats(
            query_name="q",
            template="t",
            blocks_considered=3,
            blocks_scanned=2,
            tuples_scanned=100,
            rows_returned=10,
            columns_read=1,
            modeled_ms=0.0,
            wall_seconds=0.01,
            bytes_read=800,
        )
        metrics = ServingMetrics()
        reg = MetricsRegistry()
        metrics.publish(reg, service="t")
        metrics.record(latency_seconds=0.01, stats=stats)
        text = reg.to_prometheus_text()
        assert 'repro_serve_queries_total{service="t"} 1' in text
        assert 'repro_serve_blocks_scanned_total{service="t"} 2' in text
        metrics.record(latency_seconds=0.01, stats=stats)
        assert (
            'repro_serve_queries_total{service="t"} 2'
            in reg.to_prometheus_text()
        )


# ----------------------------------------------------------------------
# Bench trajectories
# ----------------------------------------------------------------------


def _snapshot_like() -> dict:
    return {
        "queries": 9,
        "latency_mean_ms": 1.5,
        "latency_p95_ms": 3.0,
    }


class TestBench:
    def test_document_shape(self):
        doc = bench_document(
            "smoke", "serve-bench", _snapshot_like(),
            replay={"qps": 100.0},
        )
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION
        assert doc["scenario"] == "smoke"
        assert doc["created_unix"] > 0
        validate_bench(doc)  # no raise

    def test_plain_flattens_numpy_and_dataclasses(self):
        from repro.serve.cache import CacheStats

        flattened = plain(
            {
                "n": np.int64(3),
                "f": np.float64(0.5),
                "stats": CacheStats(1, 2, 0, 3, 4, 5, 6, 7, 0),
                "seq": (np.int64(1), 2),
            }
        )
        assert flattened["n"] == 3
        assert flattened["f"] == 0.5
        assert flattened["stats"]["hits"] == 1
        assert flattened["seq"] == [1, 2]
        json.dumps(flattened)  # everything is serializable

    def test_invalid_scenario_rejected(self):
        with pytest.raises(ValueError, match="scenario"):
            bench_document("no spaces", "x", _snapshot_like())

    def test_validate_reports_all_errors_at_once(self):
        doc = bench_document("ok", "serve-bench", _snapshot_like())
        doc["schema_version"] = 99
        doc["source"] = ""
        doc["surprise"] = {}
        with pytest.raises(ValueError) as err:
            validate_bench(doc)
        message = str(err.value)
        assert "schema_version" in message
        assert "source" in message
        assert "surprise" in message

    def test_validate_requires_metric_keys(self):
        doc = bench_document("ok", "serve-bench", _snapshot_like())
        del doc["metrics"]["latency_p95_ms"]
        with pytest.raises(ValueError, match="latency_p95_ms"):
            validate_bench(doc)

    def test_write_bench_lands_named_file(self, tmp_path):
        doc = bench_document("smoke", "serve-bench", _snapshot_like())
        path = write_bench(tmp_path, doc)
        assert path == bench_path(tmp_path, "smoke")
        assert json.loads(path.read_text())["scenario"] == "smoke"

    def test_cli_validator_exit_codes(self, tmp_path, capsys):
        good = write_bench(
            tmp_path, bench_document("g", "serve-bench", _snapshot_like())
        )
        assert bench_main([str(good)]) == 0
        assert "ok" in capsys.readouterr().out

        bad = tmp_path / "BENCH_bad.json"
        bad.write_text('{"schema_version": 0}')
        assert bench_main([str(bad)]) == 2
        assert "INVALID" in capsys.readouterr().err

        assert bench_main([str(tmp_path / "missing.json")]) == 2
