"""Unit tests for repro.bench.ascii_plot."""

import numpy as np

from repro.bench import bar_chart, cdf_chart, line_chart


class TestLineChart:
    def test_renders_extremes(self):
        out = line_chart([0, 1, 2], [10.0, 5.0, 1.0], title="t")
        assert "t" in out
        assert "10" in out and "1" in out
        assert "*" in out

    def test_empty(self):
        assert "empty" in line_chart([], [])

    def test_constant_series(self):
        out = line_chart([0, 1, 2], [3.0, 3.0, 3.0])
        assert "*" in out

    def test_width_respected(self):
        out = line_chart(list(range(100)), list(range(100)), width=30)
        body = [l for l in out.splitlines() if "│" in l or "┤" in l]
        assert all(len(l) <= 31 + 31 for l in body)


class TestBarChart:
    def test_peak_has_longest_bar(self):
        out = bar_chart({"small": 1.0, "big": 10.0})
        lines = {l.split("│")[0].strip(): l for l in out.splitlines()}
        assert lines["big"].count("█") > lines["small"].count("█")

    def test_zero_value(self):
        out = bar_chart({"zero": 0.0, "one": 1.0})
        assert "zero" in out

    def test_empty(self):
        assert "empty" in bar_chart({})

    def test_unit_suffix(self):
        out = bar_chart({"a": 2.0}, unit="ms")
        assert "2ms" in out


class TestCdfChart:
    def test_step_chart(self):
        xs = np.array([1.0, 2.0, 3.0])
        ys = np.array([0.33, 0.66, 1.0])
        out = cdf_chart(xs, ys)
        assert "▒" in out
        assert "1.00" in out and "0.00" in out

    def test_log_scale_label(self):
        xs = np.array([1.0, 10.0, 1000.0])
        ys = np.array([0.3, 0.6, 1.0])
        out = cdf_chart(xs, ys, log_x=True)
        assert "log x" in out

    def test_infinite_values_dropped(self):
        xs = np.array([1.0, np.inf, 3.0])
        ys = np.array([0.3, 0.6, 1.0])
        out = cdf_chart(xs, ys)
        assert "▒" in out

    def test_empty(self):
        assert "empty" in cdf_chart(np.array([]), np.array([]))
