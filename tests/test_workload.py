"""Unit tests for repro.core.workload."""

import numpy as np
import pytest

from repro.core import Query, Workload, column_lt


class TestQuery:
    def test_scan_columns_explicit(self):
        q = Query(column_lt("age", 30), columns=("age", "salary"))
        assert q.scan_columns() == ("age", "salary")

    def test_scan_columns_fallback_to_predicate(self):
        q = Query(column_lt("age", 30))
        assert q.scan_columns() == ("age",)

    def test_repr_uses_name(self):
        q = Query(column_lt("age", 30), name="young")
        assert "young" in repr(q)


class TestWorkload:
    def test_len_iter_getitem(self, mixed_workload):
        assert len(mixed_workload) == 3
        assert mixed_workload[0].name == "age-band"
        assert [q.name for q in mixed_workload] == [
            "age-band",
            "sf",
            "senior-high",
        ]

    def test_templates_order(self, mixed_workload):
        assert mixed_workload.templates() == ["age", "city", "comp"]

    def test_by_template(self, mixed_workload):
        groups = mixed_workload.by_template()
        assert set(groups) == {"age", "city", "comp"}
        assert len(groups["age"]) == 1

    def test_selectivity_matches_manual(self, mixed_workload, mixed_table):
        sel = mixed_workload.selectivity(mixed_table)
        counts = mixed_workload.selected_counts(mixed_table)
        expected = counts.sum() / (3 * mixed_table.num_rows)
        assert sel == pytest.approx(expected)

    def test_selectivity_empty_workload(self, mixed_table):
        assert Workload([]).selectivity(mixed_table) == 0.0

    def test_selected_counts_nonnegative(self, mixed_workload, mixed_table):
        counts = mixed_workload.selected_counts(mixed_table)
        assert (counts >= 0).all()
        assert counts.dtype == np.int64

    def test_split_partitions_queries(self, mixed_workload):
        rng = np.random.default_rng(0)
        train, test = mixed_workload.split(0.5, rng)
        assert len(train) + len(test) == len(mixed_workload)
        names = {q.name for q in train} | {q.name for q in test}
        assert names == {q.name for q in mixed_workload}

    def test_split_bad_fraction(self, mixed_workload):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            mixed_workload.split(0.0, rng)
        with pytest.raises(ValueError):
            mixed_workload.split(1.0, rng)

    def test_predicates_list(self, mixed_workload):
        assert len(mixed_workload.predicates()) == 3
