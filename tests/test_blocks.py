"""Unit tests for repro.storage.blocks."""

import numpy as np
import pytest

from repro.storage import Block, BlockStore, SchemaError


class TestBlock:
    def test_roundtrip_columns(self, mixed_table):
        block = Block(0, mixed_table)
        np.testing.assert_array_equal(
            block.read_column("age"), mixed_table.column("age")
        )

    def test_unknown_column_raises(self, mixed_table):
        block = Block(0, mixed_table)
        with pytest.raises(SchemaError):
            block.read_column("nope")

    def test_to_table_roundtrip(self, mixed_table):
        block = Block(0, mixed_table)
        out = block.to_table()
        for name in mixed_table.schema.column_names:
            np.testing.assert_array_equal(
                out.column(name), mixed_table.column(name)
            )

    def test_encoded_smaller_than_raw(self, mixed_table):
        block = Block(0, mixed_table)
        assert block.encoded_nbytes <= mixed_table.nbytes()

    def test_column_nbytes_subset(self, mixed_table):
        block = Block(0, mixed_table)
        some = block.column_nbytes(["age", "city"])
        assert 0 < some < block.encoded_nbytes

    def test_minmax_present(self, mixed_table):
        block = Block(0, mixed_table)
        assert block.minmax.bounds("age") is not None

    def test_len(self, mixed_table):
        assert len(Block(3, mixed_table)) == mixed_table.num_rows


class TestBlockStore:
    def test_from_assignment_partitions_rows(self, mixed_table):
        bids = (mixed_table.column("age") >= 50).astype(np.int64)
        store = BlockStore.from_assignment(mixed_table, bids)
        assert store.num_blocks == 2
        assert store.stored_rows == mixed_table.num_rows
        young = store.block(0).read_column("age")
        assert (young < 50).all()

    def test_from_assignment_length_mismatch(self, mixed_table):
        with pytest.raises(ValueError):
            BlockStore.from_assignment(mixed_table, np.zeros(3, dtype=np.int64))

    def test_from_assignment_negative_bid(self, mixed_table):
        bids = np.zeros(mixed_table.num_rows, dtype=np.int64)
        bids[0] = -1
        with pytest.raises(ValueError):
            BlockStore.from_assignment(mixed_table, bids)

    def test_descriptions_attached(self, mixed_table):
        bids = np.zeros(mixed_table.num_rows, dtype=np.int64)
        store = BlockStore.from_assignment(
            mixed_table, bids, descriptions={0: "everything"}
        )
        assert store.block(0).description == "everything"

    def test_duplicate_block_ids_rejected(self, mixed_table):
        b1 = Block(0, mixed_table)
        b2 = Block(0, mixed_table)
        with pytest.raises(ValueError):
            BlockStore(mixed_table.schema, [b1, b2])

    def test_block_lookup_missing(self, mixed_table):
        store = BlockStore.from_assignment(
            mixed_table, np.zeros(mixed_table.num_rows, dtype=np.int64)
        )
        with pytest.raises(KeyError):
            store.block(99)

    def test_blocks_subset(self, mixed_table):
        bids = np.arange(mixed_table.num_rows) % 4
        store = BlockStore.from_assignment(mixed_table, bids)
        subset = store.blocks([1, 3])
        assert [b.block_id for b in subset] == [1, 3]

    def test_min_block_size(self, mixed_table):
        bids = np.arange(mixed_table.num_rows) % 3
        store = BlockStore.from_assignment(mixed_table, bids)
        assert store.min_block_size() >= mixed_table.num_rows // 3 - 1

    def test_storage_overhead_without_replication(self, mixed_table):
        store = BlockStore.from_assignment(
            mixed_table, np.zeros(mixed_table.num_rows, dtype=np.int64)
        )
        assert store.storage_overhead() == 1.0

    def test_storage_overhead_with_replication(self, mixed_table):
        # Two blocks both holding all rows: logical rows stays the same.
        b1 = Block(0, mixed_table)
        b2 = Block(1, mixed_table)
        store = BlockStore(
            mixed_table.schema, [b1, b2], logical_rows=mixed_table.num_rows
        )
        assert store.storage_overhead() == 2.0

    def test_iteration_in_bid_order(self, mixed_table):
        blocks = [Block(2, mixed_table), Block(0, mixed_table), Block(1, mixed_table)]
        store = BlockStore(mixed_table.schema, blocks)
        assert [b.block_id for b in store] == [0, 1, 2]
