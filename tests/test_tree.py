"""Unit tests for repro.core.tree (QdTree)."""

import numpy as np
import pytest

from repro.core import (
    CutRegistry,
    QdTree,
    column_eq,
    column_ge,
    column_lt,
)


@pytest.fixture
def registry(mixed_schema):
    reg = CutRegistry(mixed_schema)
    reg.add(column_lt("age", 40))
    reg.add(column_ge("salary", 100_000))
    reg.add(column_eq("city", 1))
    return reg


@pytest.fixture
def small_tree(mixed_schema, registry):
    tree = QdTree(mixed_schema, registry)
    left, right = tree.apply_cut(tree.root, column_lt("age", 40))
    tree.apply_cut(left, column_eq("city", 1))
    return tree


class TestStructure:
    def test_singleton_tree(self, mixed_schema, registry):
        tree = QdTree(mixed_schema, registry)
        assert tree.num_nodes == 1
        assert tree.root.is_leaf
        assert tree.depth() == 0

    def test_apply_cut_creates_children(self, mixed_schema, registry):
        tree = QdTree(mixed_schema, registry)
        left, right = tree.apply_cut(tree.root, column_lt("age", 40))
        assert tree.num_nodes == 3
        assert not tree.root.is_leaf
        assert left.depth == right.depth == 1
        assert left.parent is tree.root

    def test_cannot_cut_internal_node(self, small_tree):
        with pytest.raises(ValueError):
            small_tree.apply_cut(small_tree.root, column_ge("salary", 100_000))

    def test_leaves_count(self, small_tree):
        assert len(small_tree.leaves()) == 3
        assert len(small_tree.internal_nodes()) == 2

    def test_bfs_order(self, small_tree):
        ids = [n.node_id for n in small_tree.iter_bfs()]
        assert ids[0] == 0
        assert len(ids) == small_tree.num_nodes

    def test_path_predicate(self, small_tree):
        leaf = small_tree.root.left.left
        pred = leaf.path_predicate()
        assert "age < 40" in repr(pred)
        assert "city = 1" in repr(pred)

    def test_path_predicate_negated_side(self, small_tree):
        leaf = small_tree.root.right
        assert "age >= 40" in repr(leaf.path_predicate())


class TestDataRouting:
    def test_every_row_reaches_exactly_one_leaf(self, small_tree, mixed_table):
        assignment = small_tree.route_table(mixed_table)
        leaf_ids = {leaf.node_id for leaf in small_tree.leaves()}
        assert set(np.unique(assignment)) <= leaf_ids
        assert len(assignment) == mixed_table.num_rows

    def test_routing_respects_cuts(self, small_tree, mixed_table):
        assignment = small_tree.route_table(mixed_table)
        right_leaf = small_tree.root.right
        rows = assignment == right_leaf.node_id
        assert (mixed_table.column("age")[rows] >= 40).all()

    def test_route_to_blocks_dense_bids(self, small_tree, mixed_table):
        bids = small_tree.route_to_blocks(mixed_table)
        assert set(np.unique(bids)) == {0, 1, 2}

    def test_completeness_property(self, small_tree, mixed_table):
        """Every record in a leaf satisfies the leaf's description and
        no record satisfying it lands elsewhere (paper Sec. 3.2)."""
        assignment = small_tree.route_table(mixed_table)
        columns = mixed_table.columns()
        for leaf in small_tree.leaves():
            desc_mask = leaf.description.matches_rows(columns)
            routed_mask = assignment == leaf.node_id
            np.testing.assert_array_equal(desc_mask, routed_mask)


class TestQueryRouting:
    def test_route_query_returns_intersecting_leaves(
        self, small_tree, mixed_table
    ):
        small_tree.assign_block_ids()
        bids = small_tree.route_query(column_ge("age", 80))
        # Only the age >= 40 leaf intersects.
        right_bid = small_tree.root.right.block_id
        assert bids == [right_bid]

    def test_route_query_superset_of_matches(self, small_tree, mixed_table):
        """Routed blocks contain every matching row (no false negatives)."""
        small_tree.assign_block_ids()
        bids_per_row = small_tree.route_to_blocks(mixed_table)
        query = column_ge("salary", 150_000)
        matching_rows = query.evaluate(mixed_table.columns())
        routed = set(small_tree.route_query(query))
        needed = set(np.unique(bids_per_row[matching_rows]))
        assert needed <= routed

    def test_route_query_leaves(self, small_tree):
        leaves = small_tree.route_query_leaves(column_lt("age", 10))
        assert all(l.is_leaf for l in leaves)


class TestFreeze:
    def test_freeze_tightens(self, small_tree, mixed_table):
        small_tree.freeze(mixed_table)
        right = small_tree.root.right
        iv = right.description.hypercube.interval("age")
        ages = mixed_table.column("age")
        assert iv.lo == ages[ages >= 40].min()
        assert iv.hi == ages.max()

    def test_freeze_improves_or_preserves_pruning(
        self, small_tree, mixed_table, mixed_workload
    ):
        before = {
            q.name: len(small_tree.route_query(q.predicate))
            for q in mixed_workload
        }
        small_tree.freeze(mixed_table)
        for q in mixed_workload:
            after = len(small_tree.route_query(q.predicate))
            assert after <= before[q.name]

    def test_frozen_tree_rejects_growth(self, small_tree, mixed_table):
        small_tree.freeze(mixed_table)
        leaf = small_tree.leaves()[0]
        with pytest.raises(RuntimeError):
            small_tree.apply_cut(leaf, column_ge("salary", 100_000))


class TestSample:
    def test_attach_sample_propagates(self, mixed_schema, registry, mixed_table):
        tree = QdTree(mixed_schema, registry)
        tree.attach_sample(mixed_table)
        left, right = tree.apply_cut(tree.root, column_lt("age", 40))
        n_young = int((mixed_table.column("age") < 40).sum())
        assert len(left.sample_indices) == n_young
        assert len(right.sample_indices) == mixed_table.num_rows - n_young

    def test_sample_indices_partition(self, mixed_schema, registry, mixed_table):
        tree = QdTree(mixed_schema, registry)
        tree.attach_sample(mixed_table)
        left, right = tree.apply_cut(tree.root, column_lt("age", 40))
        merged = np.sort(np.concatenate([left.sample_indices, right.sample_indices]))
        np.testing.assert_array_equal(merged, np.arange(mixed_table.num_rows))


class TestSerialization:
    def test_roundtrip_structure(self, small_tree, mixed_schema, registry):
        small_tree.assign_block_ids()
        data = small_tree.to_dict()
        rebuilt = QdTree.from_dict(data, mixed_schema, registry)
        assert rebuilt.num_nodes == small_tree.num_nodes
        assert len(rebuilt.leaves()) == len(small_tree.leaves())

    def test_roundtrip_routing_identical(
        self, small_tree, mixed_schema, registry, mixed_table
    ):
        small_tree.assign_block_ids()
        rebuilt = QdTree.from_dict(small_tree.to_dict(), mixed_schema, registry)
        np.testing.assert_array_equal(
            small_tree.route_table(mixed_table), rebuilt.route_table(mixed_table)
        )

    def test_roundtrip_block_ids(self, small_tree, mixed_schema, registry):
        small_tree.assign_block_ids()
        rebuilt = QdTree.from_dict(small_tree.to_dict(), mixed_schema, registry)
        original = {l.node_id: l.block_id for l in small_tree.leaves()}
        for leaf in rebuilt.leaves():
            assert leaf.block_id == original[leaf.node_id]

    def test_save_load_file(self, small_tree, mixed_schema, registry, tmp_path):
        small_tree.assign_block_ids()
        path = str(tmp_path / "tree.json")
        small_tree.save(path)
        loaded = QdTree.load(path, mixed_schema, registry)
        assert loaded.num_nodes == small_tree.num_nodes


class TestIntrospection:
    def test_cut_histogram(self, small_tree):
        hist = small_tree.cut_histogram()
        assert hist == {"age": 1, "city": 1}

    def test_cuts_by_depth(self, small_tree):
        by_depth = small_tree.cuts_by_depth()
        assert by_depth[0] == {"age": 1}
        assert by_depth[1] == {"city": 1}

    def test_leaf_descriptions_keyed_by_bid(self, small_tree):
        small_tree.assign_block_ids()
        descs = small_tree.leaf_descriptions()
        assert set(descs) == {0, 1, 2}
        assert any("age" in d for d in descs.values())


class TestDescentRouting:
    def test_matches_metadata_scan(self, small_tree, mixed_table):
        small_tree.assign_block_ids()
        for pred in (
            column_ge("age", 80),
            column_eq("city", 1),
            column_lt("age", 10),
        ):
            assert sorted(small_tree.route_query_descent(pred)) == sorted(
                small_tree.route_query(pred)
            )

    def test_matches_after_freeze(self, small_tree, mixed_table):
        small_tree.freeze(mixed_table)
        for pred in (
            column_ge("age", 80),
            column_eq("city", 2),
            column_lt("salary", 1000),
        ):
            assert sorted(small_tree.route_query_descent(pred)) == sorted(
                small_tree.route_query(pred)
            )

    def test_descent_on_singleton_tree(self, mixed_schema):
        tree = QdTree(mixed_schema)
        tree.assign_block_ids()
        assert tree.route_query_descent(column_lt("age", 10)) == [0]
