"""Unit tests for repro.storage.schema."""

import numpy as np
import pytest

from repro.storage import (
    Column,
    ColumnKind,
    Dictionary,
    Schema,
    SchemaError,
)
from repro.storage.schema import categorical, numeric


class TestDictionary:
    def test_add_assigns_dense_codes(self):
        d = Dictionary()
        assert d.add("a") == 0
        assert d.add("b") == 1
        assert d.add("a") == 0  # idempotent
        assert len(d) == 2

    def test_encode_decode_roundtrip(self):
        d = Dictionary(["x", "y", "z"])
        for value in ("x", "y", "z"):
            assert d.decode(d.encode(value)) == value

    def test_encode_unknown_raises(self):
        d = Dictionary(["x"])
        with pytest.raises(KeyError):
            d.encode("nope")

    def test_encode_many(self):
        d = Dictionary(["a", "b"])
        out = d.encode_many(["b", "a", "b"])
        assert out.tolist() == [1, 0, 1]
        assert out.dtype == np.int64

    def test_contains_and_iter(self):
        d = Dictionary(["a", "b"])
        assert "a" in d and "c" not in d
        assert list(d) == ["a", "b"]

    def test_values_ordered_by_code(self):
        d = Dictionary()
        d.add("z")
        d.add("a")
        assert d.values() == ("z", "a")

    def test_non_string_values(self):
        d = Dictionary([10, 20, True])
        assert d.encode(20) == 1


class TestColumn:
    def test_numeric_column(self):
        c = numeric("x", (0, 10))
        assert c.is_numeric and not c.is_categorical
        assert c.encode(3) == 3.0
        assert c.decode(3.0) == 3.0

    def test_categorical_column(self):
        c = categorical("c", ["lo", "hi"])
        assert c.is_categorical
        assert c.domain_size == 2
        assert c.encode("hi") == 1
        assert c.decode(1) == "hi"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", ColumnKind.NUMERIC)

    def test_inverted_domain_rejected(self):
        with pytest.raises(SchemaError):
            numeric("x", (10, 0))

    def test_domain_size_on_numeric_raises(self):
        with pytest.raises(SchemaError):
            _ = numeric("x").domain_size

    def test_categorical_gets_dictionary_lazily(self):
        c = Column("c", ColumnKind.CATEGORICAL)
        assert c.dictionary is not None
        assert len(c.dictionary) == 0


class TestSchema:
    def test_lookup_by_name(self, mixed_schema):
        assert mixed_schema["age"].name == "age"
        assert "city" in mixed_schema
        assert "nope" not in mixed_schema

    def test_unknown_column_raises(self, mixed_schema):
        with pytest.raises(SchemaError):
            mixed_schema["nope"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([numeric("x"), numeric("x")])

    def test_position(self, mixed_schema):
        assert mixed_schema.position("age") == 0
        assert mixed_schema.position("level") == 3
        with pytest.raises(SchemaError):
            mixed_schema.position("nope")

    def test_partitions_by_kind(self, mixed_schema):
        assert [c.name for c in mixed_schema.numeric_columns] == ["age", "salary"]
        assert [c.name for c in mixed_schema.categorical_columns] == [
            "city",
            "level",
        ]

    def test_encode_literal(self, mixed_schema):
        assert mixed_schema.encode_literal("city", "nyc") == 0
        assert mixed_schema.encode_literal("age", 42) == 42.0

    def test_encode_literals(self, mixed_schema):
        assert mixed_schema.encode_literals("city", ["sf", "aus"]) == (1, 3)

    def test_equality_by_column_names(self, mixed_schema):
        other = Schema(
            [
                numeric("age"),
                numeric("salary"),
                categorical("city"),
                categorical("level"),
            ]
        )
        assert mixed_schema == other

    def test_len_and_iter(self, mixed_schema):
        assert len(mixed_schema) == 4
        assert [c.name for c in mixed_schema] == [
            "age",
            "salary",
            "city",
            "level",
        ]
