"""Unit tests for repro.storage.columnar encodings."""

import numpy as np
import pytest

from repro.storage.columnar import (
    Encoding,
    bitpack_decode,
    bitpack_encode,
    decode_chunk,
    encode_column,
    rle_decode,
    rle_encode,
)


class TestRle:
    def test_roundtrip(self):
        values = np.array([1, 1, 1, 2, 2, 3, 1])
        rv, rl = rle_encode(values)
        assert rv.tolist() == [1, 2, 3, 1]
        assert rl.tolist() == [3, 2, 1, 1]
        assert rle_decode(rv, rl).tolist() == values.tolist()

    def test_empty(self):
        rv, rl = rle_encode(np.array([], dtype=np.int64))
        assert len(rv) == 0 and len(rl) == 0

    def test_single_run(self):
        rv, rl = rle_encode(np.full(100, 7))
        assert len(rv) == 1 and rl[0] == 100

    def test_floats(self):
        values = np.array([0.5, 0.5, 1.5])
        rv, rl = rle_encode(values)
        assert rle_decode(rv, rl).tolist() == values.tolist()


class TestBitpack:
    def test_roundtrip_small_range(self):
        values = np.array([1000, 1001, 1003], dtype=np.int64)
        offset, packed = bitpack_encode(values)
        assert packed.dtype == np.uint8
        assert bitpack_decode(offset, packed).tolist() == values.tolist()

    def test_roundtrip_negative(self):
        values = np.array([-5, -3, -1], dtype=np.int64)
        offset, packed = bitpack_encode(values)
        assert bitpack_decode(offset, packed).tolist() == values.tolist()

    def test_wide_range_uses_wider_dtype(self):
        values = np.array([0, 2**40], dtype=np.int64)
        offset, packed = bitpack_encode(values)
        assert packed.dtype == np.uint64
        assert bitpack_decode(offset, packed).tolist() == values.tolist()

    def test_empty(self):
        offset, packed = bitpack_encode(np.array([], dtype=np.int64))
        assert bitpack_decode(offset, packed).tolist() == []

    def test_floats_rejected(self):
        with pytest.raises(TypeError):
            bitpack_encode(np.array([1.5]))


class TestEncodeColumn:
    def test_constant_column_prefers_rle(self):
        chunk = encode_column(np.full(10_000, 42, dtype=np.int64))
        assert chunk.encoding is Encoding.RLE
        assert chunk.nbytes < 100

    def test_narrow_ints_prefer_bitpack(self):
        rng = np.random.default_rng(0)
        chunk = encode_column(rng.integers(0, 100, 10_000))
        assert chunk.encoding is Encoding.BITPACK

    def test_random_floats_prefer_plain(self):
        rng = np.random.default_rng(0)
        chunk = encode_column(rng.uniform(0, 1, 1000))
        assert chunk.encoding is Encoding.PLAIN

    @pytest.mark.parametrize(
        "values",
        [
            np.arange(1000, dtype=np.int64),
            np.full(50, 3, dtype=np.int64),
            np.random.default_rng(1).uniform(-5, 5, 321),
            np.array([], dtype=np.int64),
            np.array([7], dtype=np.int64),
        ],
        ids=["sequential", "constant", "floats", "empty", "singleton"],
    )
    def test_roundtrip(self, values):
        chunk = encode_column(values)
        decoded = decode_chunk(chunk)
        assert decoded.dtype == values.dtype
        np.testing.assert_array_equal(decoded, values)

    def test_encoded_size_never_exceeds_plain(self):
        rng = np.random.default_rng(2)
        for values in (
            rng.integers(0, 5, 5000),
            rng.uniform(0, 1, 5000),
            np.sort(rng.integers(0, 50, 5000)),
        ):
            chunk = encode_column(values)
            assert chunk.nbytes <= values.nbytes
