"""Unit tests for repro.core.hypercube."""

import math

import pytest

from repro.core import Hypercube, Interval, column_ge, column_le, column_lt
from repro.core.predicates import column_eq, column_gt


class TestInterval:
    def test_default_unbounded(self):
        iv = Interval()
        assert iv.contains(-1e18) and iv.contains(1e18)

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 3)

    def test_contains_inclusive_edges(self):
        iv = Interval(0, 10, True, False)
        assert iv.contains(0)
        assert not iv.contains(10)
        assert iv.contains(9.999)

    def test_point_interval(self):
        p = Interval.point(5)
        assert p.contains(5) and not p.contains(5.0001)
        assert not p.is_empty

    def test_empty(self):
        assert Interval.empty().is_empty
        assert not Interval.point(1).is_empty
        # Degenerate open interval is empty.
        assert Interval(3, 3, True, False).is_empty

    def test_intersect_overlapping(self):
        a = Interval(0, 10)
        b = Interval(5, 15)
        out = a.intersect(b)
        assert (out.lo, out.hi) == (5, 10)

    def test_intersect_disjoint_is_empty(self):
        assert Interval(0, 1).intersect(Interval(2, 3)).is_empty

    def test_intersect_touching_inclusive(self):
        out = Interval(0, 5).intersect(Interval(5, 10))
        assert not out.is_empty
        assert out.contains(5)

    def test_intersect_touching_exclusive(self):
        a = Interval(0, 5, True, False)
        b = Interval(5, 10)
        assert a.intersect(b).is_empty

    def test_intersect_inclusive_flags_at_shared_bound(self):
        a = Interval(0, 5, True, True)
        b = Interval(0, 5, False, True)
        out = a.intersect(b)
        assert not out.lo_inclusive and out.hi_inclusive

    def test_intersects_symmetry(self):
        a = Interval(0, 5)
        b = Interval(3, 8)
        assert a.intersects(b) and b.intersects(a)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 5))
        assert Interval(0, 10).contains_interval(Interval(0, 10))
        assert not Interval(0, 10).contains_interval(Interval(0, 11))
        # Inclusiveness matters at shared bounds.
        outer = Interval(0, 10, False, True)
        assert not outer.contains_interval(Interval(0, 5, True, True))
        assert outer.contains_interval(Interval(0, 5, False, True))
        # Everything contains the empty interval.
        assert Interval(0, 1).contains_interval(Interval.empty())

    @pytest.mark.parametrize(
        "pred,lo,hi,lo_inc,hi_inc",
        [
            (column_lt("x", 5), -math.inf, 5, True, False),
            (column_le("x", 5), -math.inf, 5, True, True),
            (column_gt("x", 5), 5, math.inf, False, True),
            (column_ge("x", 5), 5, math.inf, True, True),
            (column_eq("x", 5), 5, 5, True, True),
        ],
    )
    def test_from_predicate(self, pred, lo, hi, lo_inc, hi_inc):
        iv = Interval.from_predicate(pred)
        assert (iv.lo, iv.hi) == (lo, hi)
        assert (iv.lo_inclusive, iv.hi_inclusive) == (lo_inc, hi_inc)

    def test_from_in_predicate_raises(self):
        from repro.core import column_in

        with pytest.raises(ValueError):
            Interval.from_predicate(column_in("x", [1, 2]))


class TestHypercube:
    def test_untracked_column_unbounded(self):
        h = Hypercube()
        assert h.interval("x").contains(1e9)

    def test_restrict_narrows(self):
        h = Hypercube({"x": Interval(0, 100)})
        h2 = h.restrict("x", Interval(50, 200))
        assert (h2.interval("x").lo, h2.interval("x").hi) == (50, 100)
        # Original untouched (immutability).
        assert h.interval("x").hi == 100

    def test_restrict_new_column(self):
        h = Hypercube().restrict("y", Interval(0, 1))
        assert h.interval("y").hi == 1

    def test_with_interval_replaces(self):
        h = Hypercube({"x": Interval(0, 100)})
        h2 = h.with_interval("x", Interval(500, 600))
        assert h2.interval("x").lo == 500

    def test_is_empty(self):
        h = Hypercube({"x": Interval(0, 10)})
        assert not h.is_empty
        assert h.restrict("x", Interval(20, 30)).is_empty

    def test_intersects(self):
        a = Hypercube({"x": Interval(0, 10), "y": Interval(0, 10)})
        b = Hypercube({"x": Interval(5, 15), "y": Interval(5, 15)})
        c = Hypercube({"x": Interval(11, 20), "y": Interval(5, 15)})
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_intersects_with_untracked_dimension(self):
        a = Hypercube({"x": Interval(0, 10)})
        b = Hypercube({"y": Interval(0, 10)})
        assert a.intersects(b)

    def test_contains_point(self):
        h = Hypercube({"x": Interval(0, 10), "y": Interval(0, 5)})
        assert h.contains_point({"x": 5, "y": 2})
        assert not h.contains_point({"x": 5, "y": 6})
        # Missing dimensions treated as satisfied.
        assert h.contains_point({"x": 5})

    def test_equality(self):
        a = Hypercube({"x": Interval(0, 10)})
        b = Hypercube({"x": Interval(0, 10)})
        assert a == b
        assert a != Hypercube({"x": Interval(0, 11)})
