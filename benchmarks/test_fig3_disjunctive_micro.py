"""Figure 3 — the disjunctive microbenchmark.

Paper: candidate cuts {cpu<10, cpu>90, disk<0.01}; the two cpu cuts
individually skip nothing, so Greedy only takes the disk cut and scans
50.5%; Woodblock produces the 4-block layout scanning 10.4% — a 4.8x
improvement.
"""

from repro.bench import format_table
from repro.core import GreedyConfig, build_greedy_tree, leaf_sizes, scan_ratio
from repro.rl import Woodblock, WoodblockConfig
from repro.workloads import disjunctive_dataset


def test_fig3_greedy_vs_woodblock(benchmark):
    dataset = disjunctive_dataset(num_rows=50_000, seed=0)
    registry = dataset.registry()

    def run():
        greedy = build_greedy_tree(
            dataset.schema,
            registry,
            dataset.table,
            dataset.workload,
            GreedyConfig(dataset.min_block_size),
        )
        g_ratio = scan_ratio(
            greedy, dataset.workload, leaf_sizes(greedy, dataset.table)
        )
        agent = Woodblock(
            dataset.schema,
            registry,
            dataset.table,
            dataset.workload,
            WoodblockConfig(
                min_leaf_size=dataset.min_block_size,
                episodes=60,
                hidden_dim=64,
                seed=3,
            ),
        )
        result = agent.train()
        rl_ratio = scan_ratio(
            result.best_tree,
            dataset.workload,
            leaf_sizes(result.best_tree, dataset.table),
        )
        return g_ratio, rl_ratio

    g_ratio, rl_ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["approach", "scan ratio", "paper"],
            [
                ["greedy", f"{100 * g_ratio:.1f}%", "50.5%"],
                ["woodblock", f"{100 * rl_ratio:.1f}%", "10.4%"],
                ["improvement", f"{g_ratio / rl_ratio:.1f}x", "4.8x"],
            ],
            title="Figure 3 — disjunctive microbenchmark",
        )
    )
    assert 0.45 < g_ratio < 0.55  # paper: 50.5%
    assert rl_ratio < 0.15  # paper: 10.4%
    assert g_ratio / rl_ratio > 3.0  # paper: 4.8x
