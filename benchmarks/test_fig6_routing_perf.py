"""Figure 6 — performance of routing data and queries.

Paper: (a) record-routing throughput scales near-linearly to 16
threads, reaching ~400K records/s at 64 threads in Python; (b) query
routing latency is at most ~16 ms per query, mostly under 10 ms.
"""

import numpy as np

from repro.bench import format_cdf, format_table
from repro.core import DataRouter, QueryRouter


def test_fig6a_data_routing_throughput(benchmark, tpch, tpch_rl):
    tree = tpch_rl.tree
    assert tree is not None
    router = DataRouter(tree, batch_size=4096)

    # The benchmark fixture times single-thread routing (the kernel);
    # the thread sweep below reports the scaling series.
    def route_once():
        bids, _ = router.route(tpch.table, threads=1)
        return bids

    benchmark(route_once)

    rows = []
    best_throughput = 0.0
    for threads in (1, 2, 4, 8, 16):
        _, stats = router.route(tpch.table, threads=threads)
        best_throughput = max(best_throughput, stats.records_per_second)
        rows.append(
            [threads, f"{stats.records_per_second / 1000:.0f}K rec/s"]
        )
    print()
    print(
        format_table(
            ["threads", "throughput"],
            rows,
            title="Figure 6a — data routing throughput "
            "(paper: ~400K rec/s at 64 threads, linear to 16). "
            "Note: at 40K-row scale per-batch numpy kernels are too "
            "short to amortize Python thread overhead, so scaling "
            "plateaus; single-thread vectorized throughput already "
            "exceeds the paper's 400K rec/s.",
        )
    )
    # Shape: vectorized routing reaches the paper's throughput regime
    # (hundreds of K records/s).  Assert on the sweep's best sample —
    # a fresh timing call can dip under transient CPU contention.
    assert best_throughput > 250_000


def test_fig6b_query_routing_latency(benchmark, tpch, tpch_rl):
    tree = tpch_rl.tree
    assert tree is not None
    router = QueryRouter(tree)

    def route_all():
        router.reset_latencies()
        router.route_workload(tpch.workload)
        return router.latency_cdf()

    xs, ys = benchmark.pedantic(route_all, rounds=1, iterations=1)
    print()
    print(
        format_cdf(
            xs * 1000.0,
            ys,
            label="query routing latency (ms) — paper: max <16ms, most <10ms",
        )
    )
    # Shape: every query routes in well under a second at this scale.
    assert xs.max() < 1.0
    assert np.median(xs) < 0.1
