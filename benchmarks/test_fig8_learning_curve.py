"""Figure 8 — Woodblock's learning curve (anytime behaviour).

Paper: on TPC-H the scan ratio starts near 39% at random initialization
(already far better than the workload-oblivious 56% baseline, because
random trees still use workload-extracted cuts) and most improvement is
learned within the first ~10 minutes; on ErrorLog-Ext a high-quality
tree appears within ~30 seconds thanks to the data's correlations, and
quality keeps improving with more budget.
"""

from repro.bench import format_series, line_chart


def test_fig8_tpch_learning_curve(benchmark, tpch, tpch_rl):
    result = tpch_rl.rl_result
    assert result is not None

    def series():
        return [
            (p.elapsed_seconds, p.best_scan_ratio) for p in result.curve
        ]

    points = benchmark.pedantic(series, rounds=1, iterations=1)
    print()
    print(
        line_chart(
            [p[0] for p in points],
            [p[1] for p in points],
            x_label="elapsed (s)",
            y_label="best scan ratio",
            title="Figure 8 (TPC-H) — learning curve",
        )
    )
    print(
        format_series(
            points,
            x_label="elapsed (s)",
            y_label="best scan ratio",
            max_points=15,
        )
    )
    first = result.curve[0]
    best = result.best_scan_ratio
    print(f"initial episode ratio: {first.episode_scan_ratio:.3f}; "
          f"final best: {best:.3f} "
          f"(paper: ~0.39 initial -> ~0.25 converged)")
    # Shape: training improves on the first random tree.
    assert best < first.episode_scan_ratio
    # And the first random tree is itself far better than scanning all.
    assert first.episode_scan_ratio < 0.9


def test_fig8_errorlog_ext_learning_curve(
    benchmark, errlog_ext, errlog_ext_layouts
):
    *_, rl_layout = errlog_ext_layouts
    result = rl_layout.rl_result
    assert result is not None

    def series():
        return [
            (p.elapsed_seconds, p.best_scan_ratio) for p in result.curve
        ]

    points = benchmark.pedantic(series, rounds=1, iterations=1)
    print()
    print(
        format_series(
            points,
            x_label="elapsed (s)",
            y_label="best scan ratio",
            max_points=15,
        )
    )
    # Paper: high quality immediately (~0.3% scan ratio on Ext).  Our
    # synthetic Ext shares the trait: the very first trees are already
    # aggressive skippers because correlations make most cuts useful.
    early_best = result.curve[min(5, len(result.curve) - 1)].best_scan_ratio
    print(f"best after 5 episodes: {early_best:.4f} "
          f"(paper: ~0.003 immediately)")
    assert early_best < 0.2
    assert result.best_scan_ratio <= early_best
