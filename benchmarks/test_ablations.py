"""Ablations called out in DESIGN.md (A1-A5).

A1 — greedy strict-gain criterion vs zero-gain splitting.
A2 — construction sample ratio s (paper Sec. 5.2.1 uses 0.1%-1%).
A3 — minimum block size b: skipping vs block-count tradeoff.
A4 — advanced cuts on/off for TPC-H.
A5 — explicit BID routing vs `no route` min-max pruning only.
"""

import numpy as np
import pytest

from repro.bench import (
    build_greedy_layout,
    format_table,
    logical_access_pct,
    run_physical,
)
from repro.core import (
    CutRegistry,
    GreedyConfig,
    build_greedy_tree,
    leaf_sizes,
    scan_ratio,
)
from repro.engine import SPARK_PARQUET
from repro.workloads import tpch_dataset
from repro.workloads.tpch import generate_workload


def test_a1_zero_gain_splitting(benchmark, tpch, tpch_registry):
    """Zero-gain splits add blocks; skipping should not degrade."""

    def run():
        strict = build_greedy_tree(
            tpch.schema, tpch_registry, tpch.table, tpch.workload,
            GreedyConfig(tpch.min_block_size),
        )
        eager = build_greedy_tree(
            tpch.schema, tpch_registry, tpch.table, tpch.workload,
            GreedyConfig(tpch.min_block_size, allow_zero_gain=True),
        )
        s_ratio = scan_ratio(
            strict, tpch.workload, leaf_sizes(strict, tpch.table)
        )
        e_ratio = scan_ratio(
            eager, tpch.workload, leaf_sizes(eager, tpch.table)
        )
        return strict, eager, s_ratio, e_ratio

    strict, eager, s_ratio, e_ratio = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["criterion", "blocks", "scan ratio"],
            [
                ["strict gain (paper)", len(strict.leaves()), f"{s_ratio:.3f}"],
                ["allow zero gain", len(eager.leaves()), f"{e_ratio:.3f}"],
            ],
            title="A1 — greedy split criterion",
        )
    )
    assert e_ratio <= s_ratio * 1.05


def test_a2_sample_ratio(benchmark, tpch):
    """Small construction samples barely hurt layout quality."""

    def run():
        rows = []
        for ratio in (None, 0.25, 0.05):
            layout = build_greedy_layout(tpch, sample_ratio=ratio)
            pct = logical_access_pct(
                layout, tpch.workload,
                num_advanced_cuts=tpch.registry().num_advanced_cuts,
            )
            rows.append((ratio, layout.num_blocks, pct))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["sample ratio", "blocks", "access %"],
            [
                ["full" if r is None else f"{r:.0%}", b, f"{p:.2f}%"]
                for r, b, p in rows
            ],
            title="A2 — construction sample ratio (paper uses 0.1%-1% "
            "of 77M rows)",
        )
    )
    full_pct = rows[0][2]
    sampled_pct = rows[-1][2]
    # Sampled construction stays within 2.5x of full-data quality.
    assert sampled_pct < max(2.5 * full_pct, full_pct + 10)


def test_a3_min_block_size_sweep(benchmark, tpch, tpch_registry):
    """Smaller b -> finer blocks -> better skipping, more blocks."""

    def run():
        out = []
        for factor in (1, 4, 16):
            b = tpch.min_block_size * factor
            tree = build_greedy_tree(
                tpch.schema, tpch_registry, tpch.table, tpch.workload,
                GreedyConfig(b),
            )
            ratio = scan_ratio(
                tree, tpch.workload, leaf_sizes(tree, tpch.table)
            )
            out.append((b, len(tree.leaves()), ratio))
        return out

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["b (rows)", "blocks", "scan ratio"],
            [[b, n, f"{r:.3f}"] for b, n, r in sweep],
            title="A3 — minimum block size sweep",
        )
    )
    ratios = [r for _, _, r in sweep]
    blocks = [n for _, n, _ in sweep]
    assert blocks[0] >= blocks[-1]  # finer b -> at least as many blocks
    assert ratios[0] <= ratios[-1] + 0.02  # and at least as much skipping


def test_a4_advanced_cuts_on_off(benchmark, tpch):
    """Without AC0-AC2 the q4/q12/q21 family loses its skipping."""

    def run():
        with_ac = tpch.registry()
        without_ac = CutRegistry(tpch.schema)
        for cut in with_ac.cuts:
            from repro.core import AdvancedCut

            if not isinstance(cut, AdvancedCut):
                without_ac.add(cut)
        results = {}
        for label, registry in (("with ACs", with_ac), ("without ACs", without_ac)):
            tree = build_greedy_tree(
                tpch.schema, registry, tpch.table, tpch.workload,
                GreedyConfig(tpch.min_block_size),
            )
            results[label] = scan_ratio(
                tree, tpch.workload, leaf_sizes(tree, tpch.table)
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["configuration", "scan ratio"],
            [[k, f"{v:.3f}"] for k, v in results.items()],
            title="A4 — advanced cuts ablation (paper: ACs drive q21/q4/q12)",
        )
    )
    assert results["with ACs"] <= results["without ACs"] + 1e-9


def test_a5_routing_vs_no_route(benchmark, tpch, tpch_registry, tpch_rl):
    """BID routing beats pure min-max pruning (paper: 6-16% on Parquet,
    much larger on the DBMS without block dictionaries)."""
    nac = tpch_registry.num_advanced_cuts

    def run():
        routed = run_physical(
            tpch_rl, tpch.workload, SPARK_PARQUET, num_advanced_cuts=nac
        )
        no_route = run_physical(
            tpch_rl, tpch.workload, SPARK_PARQUET, use_routing=False,
            num_advanced_cuts=nac,
        )
        return routed, no_route

    routed, no_route = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["mode", "tuples scanned", "modeled runtime (s)"],
            [
                [
                    "BID routing",
                    routed.total_tuples_scanned,
                    f"{routed.total_modeled_ms / 1000:.2f}",
                ],
                [
                    "no route (SMA only)",
                    no_route.total_tuples_scanned,
                    f"{no_route.total_modeled_ms / 1000:.2f}",
                ],
            ],
            title="A5 — explicit BID routing vs no-route",
        )
    )
    assert routed.total_tuples_scanned <= no_route.total_tuples_scanned
