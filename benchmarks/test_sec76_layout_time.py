"""Sec. 7.6 — wall-clock time to produce layouts.

Paper: on TPC-H Bottom-Up needs 71 minutes and only emits a layout at
termination; Woodblock emits trees immediately and continuously.  On
the ErrorLogs, Greedy takes 12 minutes and Bottom-Up 432/565 minutes
while Woodblock reaches top quality within ~30 seconds.  The shape to
reproduce: Bottom-Up is the slowest by a wide margin; Woodblock
produces a usable tree almost immediately (anytime property).
"""

from repro.bench import format_table


def test_sec76_layout_construction_time(
    benchmark,
    tpch,
    tpch_random,
    tpch_bottom_up,
    tpch_greedy,
    tpch_rl,
):
    def collect():
        return {
            layout.label: layout.build_seconds
            for layout in (tpch_random, tpch_bottom_up, tpch_greedy, tpch_rl)
        }

    times = benchmark.pedantic(collect, rounds=1, iterations=1)
    rl_result = tpch_rl.rl_result
    assert rl_result is not None
    first_tree_s = rl_result.curve[0].elapsed_seconds if rl_result.curve else 0.0
    rows = [[label, f"{seconds:.2f}s"] for label, seconds in times.items()]
    rows.append(["woodblock (first usable tree)", f"{first_tree_s:.2f}s"])
    print()
    print(
        format_table(
            ["approach", "build time"],
            rows,
            title="Sec 7.6 layout production time — paper (TPC-H): "
            "BU 71min (layout only at termination); Woodblock emits "
            "trees continuously, ~10min to converge",
        )
    )
    # Shape assertions.  At paper scale Bottom-Up's clustering is the
    # slowest by far (quadratic in unique feature vectors); our
    # vectorized BU at 40K rows finishes in under a second, so the
    # transferable shape claims are: (a) Woodblock's first usable tree
    # arrives within seconds — long before its own training budget is
    # exhausted (anytime property, unlike BU's only-at-termination
    # layout); (b) workload-oblivious shuffling is the cheapest.
    assert first_tree_s < 0.25 * times["woodblock"]
    assert first_tree_s < 5.0
    assert times["random"] < times["greedy"]
