"""Shared fixtures for the benchmark suite.

Datasets and layouts are session-scoped: each is generated/trained once
and reused by every table/figure bench.  Scales are chosen so the whole
suite completes in minutes on a laptop while preserving the paper's
result *shapes* (who wins, rough factors, crossovers).
"""

import numpy as np
import pytest

from repro.baselines import (
    BottomUpConfig,
    BottomUpPartitioner,
    RandomPartitioner,
    RangePartitioner,
)
from repro.bench import (
    build_baseline_layout,
    build_greedy_layout,
    build_rl_layout,
)
from repro.workloads import (
    errorlog_ext_dataset,
    errorlog_int_dataset,
    tpch_dataset,
)

# Benchmark scales (rows are ~1/2000 of the paper's datasets).
TPCH_ROWS = 40_000
ERRLOG_ROWS = 40_000
ERRLOG_QUERIES = 400
RL_EPISODES = 60


@pytest.fixture(scope="session")
def tpch():
    return tpch_dataset(
        num_rows=TPCH_ROWS,
        seeds_per_template=5,
        seed=0,
        test_seeds_per_template=15,
    )


@pytest.fixture(scope="session")
def errlog_int():
    return errorlog_int_dataset(
        num_rows=ERRLOG_ROWS, num_queries=ERRLOG_QUERIES, seed=0
    )


@pytest.fixture(scope="session")
def errlog_ext():
    return errorlog_ext_dataset(
        num_rows=ERRLOG_ROWS,
        num_queries=ERRLOG_QUERIES,
        num_apps=1200,
        seed=0,
    )


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------


@pytest.fixture(scope="session")
def tpch_registry(tpch):
    return tpch.registry()


@pytest.fixture(scope="session")
def errlog_int_registry(errlog_int):
    return errlog_int.registry()


@pytest.fixture(scope="session")
def errlog_ext_registry(errlog_ext):
    return errlog_ext.registry()


# ----------------------------------------------------------------------
# TPC-H layouts
# ----------------------------------------------------------------------


def _baseline_block(dataset) -> int:
    """Baseline block size: comparable block count to the qd-trees."""
    return max(dataset.min_block_size * 4, 64)


@pytest.fixture(scope="session")
def tpch_random(tpch):
    return build_baseline_layout(
        tpch, RandomPartitioner(block_size=_baseline_block(tpch))
    )


@pytest.fixture(scope="session")
def tpch_bottom_up(tpch, tpch_registry):
    return build_baseline_layout(
        tpch,
        BottomUpPartitioner(
            tpch_registry,
            tpch.workload,
            BottomUpConfig(
                min_block_size=max(tpch.min_block_size, 64),
                selectivity_threshold=0.10,
                max_block_size=max(tpch.min_block_size, 64),
                name="bottom-up+",
            ),
        ),
    )


@pytest.fixture(scope="session")
def tpch_greedy(tpch, tpch_registry):
    return build_greedy_layout(tpch, registry=tpch_registry)


@pytest.fixture(scope="session")
def tpch_rl(tpch, tpch_registry):
    return build_rl_layout(
        tpch, registry=tpch_registry, episodes=RL_EPISODES, hidden_dim=128,
        seed=0,
    )


# ----------------------------------------------------------------------
# ErrorLog layouts
# ----------------------------------------------------------------------


def _errlog_layouts(dataset, registry, episodes=RL_EPISODES):
    block = max(dataset.min_block_size, 64)
    # Range blocks are sized so per-block categorical dictionaries
    # saturate, as they do at the paper's 100M-row scale — otherwise
    # the workload-oblivious baseline gets lucky dictionary pruning
    # that the production system never saw.
    range_block = max(block * 8, dataset.num_rows // 12)
    range_layout = build_baseline_layout(
        dataset, RangePartitioner(column="ingest_date", block_size=range_block)
    )
    bu_layout = build_baseline_layout(
        dataset,
        BottomUpPartitioner(
            registry,
            dataset.workload,
            BottomUpConfig(
                min_block_size=block,
                selectivity_threshold=0.10,
                max_block_size=block,
                name="bottom-up+",
            ),
        ),
    )
    greedy_layout = build_greedy_layout(dataset, registry=registry)
    rl_layout = build_rl_layout(
        dataset, registry=registry, episodes=episodes, hidden_dim=128, seed=0
    )
    return range_layout, bu_layout, greedy_layout, rl_layout


@pytest.fixture(scope="session")
def errlog_int_layouts(errlog_int, errlog_int_registry):
    return _errlog_layouts(errlog_int, errlog_int_registry)


@pytest.fixture(scope="session")
def errlog_ext_layouts(errlog_ext, errlog_ext_registry):
    return _errlog_layouts(errlog_ext, errlog_ext_registry)
