"""Serving-tier throughput smoke benchmark.

Replays a repeated TPC-H-style SQL workload against one greedy qd-tree
layout two ways and compares sustained QPS:

* **serial uncached** — the repo's pre-serving execution path: every
  arrival is routed through the tree, SMA-pruned against every
  candidate block, and scanned with columns re-decoded from the
  encoded chunks (exactly what the paper's one-query-at-a-time
  evaluation does).
* **served** — the full :mod:`repro.serve` tier: thread-pool
  scheduler, routing/prune memo keyed by predicate fingerprint, and
  the shared LRU buffer pool of decoded columns.

The acceptance bar is >= 2x QPS for the served path on a repeated
workload, with bit-identical per-query results.  (CI machines may
expose a single core, so the bar must clear from avoided work —
memoized routing/pruning and cache hits — not parallelism.)
"""

import pytest

from repro.bench import build_greedy_layout
from repro.serve import LayoutService, run_serial_baseline
from repro.workloads import tpch_dataset

ROWS = 50_000
REPEAT = 20
THREADS = 4

STATEMENTS = [
    "SELECT * FROM lineitem WHERE l_shipdate >= 30 AND l_shipdate < 60",
    "SELECT l_extendedprice FROM lineitem "
    "WHERE l_shipmode IN ('MAIL','SHIP') AND l_commitdate < 100",
    "SELECT * FROM lineitem "
    "WHERE p_brand = 'Brand#12' AND p_container IN ('SM CASE','SM BOX')",
    "SELECT l_quantity FROM lineitem "
    "WHERE l_returnflag = 'R' AND c_nationkey < 10",
    "SELECT * FROM lineitem "
    "WHERE o_orderpriority = '1-URGENT' AND l_shipdate < 40",
    "SELECT * FROM lineitem "
    "WHERE cn_name IN ('FRANCE','GERMANY') AND l_discount >= 0.05",
]


@pytest.fixture(scope="module")
def layout():
    # Paper-scaled b gives a many-small-blocks layout (the shape real
    # qd-trees produce), which is what per-query routing/pruning costs
    # scale with.
    return build_greedy_layout(
        tpch_dataset(num_rows=ROWS, seeds_per_template=2, seed=0)
    )


def run_baseline(layout, repeat=REPEAT):
    """Serial uncached execution: route + prune + decode per arrival."""
    return run_serial_baseline(
        layout.store, layout.tree, STATEMENTS, repeat=repeat
    )


def run_served(layout, repeat=REPEAT):
    with LayoutService(
        layout.store,
        layout.tree,
        cache_budget_bytes=64 * 1024 * 1024,
        max_workers=THREADS,
    ) as service:
        return service.run_closed_loop(STATEMENTS, repeat=repeat)


def test_served_vs_serial_uncached(layout, capsys):
    # Warm-up both paths so one-time costs hit neither measured run.
    run_baseline(layout, repeat=2)
    run_served(layout, repeat=2)

    base_qps, base_stats = run_baseline(layout)
    served = run_served(layout)

    assert sorted(s.result_key() for s in base_stats) == sorted(
        r.stats.result_key() for r in served.results
    ), "served results must be bit-identical to serial execution"

    speedup = served.qps / base_qps
    snap = served.snapshot
    with capsys.disabled():
        print(
            f"\n[serving-throughput] serial uncached: {base_qps:7.1f} qps | "
            f"served x{THREADS} threads: {served.qps:7.1f} qps | "
            f"speedup {speedup:.2f}x | "
            f"cache hit rate {100 * snap.cache_hit_rate:.1f}%"
        )
    assert snap.cache is not None and snap.cache_hit_rate > 0.5
    assert speedup >= 2.0, (
        f"serving tier must be >= 2x serial uncached QPS, got {speedup:.2f}x"
    )


def test_cache_cuts_decode_bytes(layout):
    def served_with_cache(cache_bytes):
        with LayoutService(
            layout.store,
            layout.tree,
            cache_budget_bytes=cache_bytes,
            max_workers=1,
        ) as service:
            return service.run_closed_loop(STATEMENTS, repeat=5)

    uncached = served_with_cache(None)
    cached = served_with_cache(64 * 1024 * 1024)
    assert cached.snapshot.bytes_read == uncached.snapshot.bytes_read
    assert cached.snapshot.bytes_decoded < uncached.snapshot.bytes_decoded / 2
