"""Table 2 — logical I/O: % of tuples accessed per layout scheme.

Paper values (for shape comparison):

    Workload     Baseline  Bottom-Up/BU+  Greedy  RL
    TPC-H        56%       46.1%          26.3%   25.8%
    ErrLog-Int   100%      5.6%           3.1%    0.4%
    ErrLog-Ext   100%      12.2%          1.7%    0.2%

The shape to reproduce: Baseline >> BU+ > Greedy >= RL, with qd-trees
within a small factor of the workload's true selectivity.
"""

from repro.bench import format_table, logical_access_pct


def _row(label, layouts, dataset, num_advanced):
    return [
        label,
        *[
            f"{logical_access_pct(l, dataset.workload, num_advanced_cuts=num_advanced):.2f}%"
            for l in layouts
        ],
        f"{100 * dataset.workload.selectivity(dataset.table):.3f}%",
    ]


def test_table2_tpch(
    benchmark, tpch, tpch_registry, tpch_random, tpch_bottom_up, tpch_greedy,
    tpch_rl,
):
    nac = tpch_registry.num_advanced_cuts
    layouts = [tpch_random, tpch_bottom_up, tpch_greedy, tpch_rl]

    def run():
        return [
            logical_access_pct(l, tpch.workload, num_advanced_cuts=nac)
            for l in layouts
        ]

    pcts = benchmark.pedantic(run, rounds=1, iterations=1)
    random_pct, bu_pct, greedy_pct, rl_pct = pcts
    print()
    print(
        format_table(
            ["workload", "baseline", "bottom-up+", "greedy", "woodblock",
             "selectivity"],
            [_row("tpch", layouts, tpch, nac)],
            title="Table 2 (TPC-H) — paper: 56 / 46.1 / 26.3 / 25.8",
        )
    )
    # Shape assertions.
    assert greedy_pct < bu_pct < random_pct
    assert rl_pct < bu_pct
    sel = 100 * tpch.workload.selectivity(tpch.table)
    assert min(greedy_pct, rl_pct) < 4 * sel  # within small factor of bound


def test_table2_errorlog_int(benchmark, errlog_int, errlog_int_layouts):
    rng_l, bu_l, greedy_l, rl_l = errlog_int_layouts
    layouts = [rng_l, bu_l, greedy_l, rl_l]

    def run():
        return [logical_access_pct(l, errlog_int.workload) for l in layouts]

    pcts = benchmark.pedantic(run, rounds=1, iterations=1)
    range_pct, bu_pct, greedy_pct, rl_pct = pcts
    print()
    print(
        format_table(
            ["workload", "baseline", "bottom-up+", "greedy", "woodblock",
             "selectivity"],
            [_row("errorlog-int", layouts, errlog_int, 0)],
            title="Table 2 (ErrLog-Int) — paper: 100 / 5.6 / 3.1 / 0.4",
        )
    )
    # Baseline accesses ~everything (paper: 100%); small residual
    # dictionary pruning at 40K-row scale is tolerated.
    assert range_pct > 85.0
    assert greedy_pct < bu_pct
    assert greedy_pct < 10.0
    assert rl_pct < 10.0


def test_table2_errorlog_ext(benchmark, errlog_ext, errlog_ext_layouts):
    rng_l, bu_l, greedy_l, rl_l = errlog_ext_layouts
    layouts = [rng_l, bu_l, greedy_l, rl_l]

    def run():
        return [logical_access_pct(l, errlog_ext.workload) for l in layouts]

    pcts = benchmark.pedantic(run, rounds=1, iterations=1)
    range_pct, bu_pct, greedy_pct, rl_pct = pcts
    print()
    print(
        format_table(
            ["workload", "baseline", "bottom-up+", "greedy", "woodblock",
             "selectivity"],
            [_row("errorlog-ext", layouts, errlog_ext, 0)],
            title="Table 2 (ErrLog-Ext) — paper: 100 / 12.2 / 1.7 / 0.2",
        )
    )
    assert range_pct > 85.0
    assert greedy_pct < bu_pct
    assert greedy_pct < 15.0
