"""Figure 5 — TPC-H physical runtimes per template, on two engines.

Paper: (a) distributed Spark — qd-tree beats Bottom-Up by 1.6x overall
(2.6x excluding scan-all templates), with the biggest wins on q21
(advanced cut), q5 (16.8x) and q19 (5.5x); Bottom-Up wins only on
scan-all q1/q18.  (b) the commercial DBMS shows the same relative
ordering (1.3x / 1.7x), i.e. layout benefits carry across engines.
"""

import numpy as np

from repro.bench import format_table, run_physical
from repro.engine import COMMERCIAL_DBMS, DISTRIBUTED_SPARK


def _scan_all(dataset):
    """Templates whose instances select most of the partition."""
    counts = dataset.workload.selected_counts(dataset.table)
    frac = {}
    for q, c in zip(dataset.workload, counts):
        frac.setdefault(q.template, []).append(c / dataset.table.num_rows)
    return {t for t, v in frac.items() if np.mean(v) > 0.5}


def _report(dataset, bu, qd, profile, nac, title, paper_note):
    bu_report = run_physical(
        bu, dataset.workload, profile, num_advanced_cuts=nac
    )
    qd_report = run_physical(
        qd, dataset.workload, profile, num_advanced_cuts=nac
    )
    bu_t = bu_report.per_template_modeled_ms()
    qd_t = qd_report.per_template_modeled_ms()
    rows = []
    for template in sorted(bu_t, key=lambda s: int(s[1:])):
        rows.append(
            [
                template,
                f"{bu_t[template]:.0f}",
                f"{qd_t[template]:.0f}",
                f"{bu_t[template] / max(qd_t[template], 1e-9):.1f}x",
            ]
        )
    print()
    print(
        format_table(
            ["template", "bottom-up+ (ms)", "qd-tree (ms)", "speedup"],
            rows,
            title=f"{title} — {paper_note}",
        )
    )
    overall = bu_report.total_modeled_ms / qd_report.total_modeled_ms
    scan_all = _scan_all(dataset)
    bu_sel = sum(v for t, v in bu_t.items() if t not in scan_all)
    qd_sel = sum(v for t, v in qd_t.items() if t not in scan_all)
    selective = bu_sel / max(qd_sel, 1e-9)
    print(f"overall speedup: {overall:.2f}x; "
          f"excluding scan-all templates: {selective:.2f}x")
    return overall, selective


def test_fig5a_distributed_spark(
    benchmark, tpch, tpch_registry, tpch_bottom_up, tpch_rl
):
    nac = tpch_registry.num_advanced_cuts

    def run():
        return _report(
            tpch, tpch_bottom_up, tpch_rl, DISTRIBUTED_SPARK, nac,
            "Figure 5a (distributed Spark)",
            "paper: 1.6x overall, 2.6x selective",
        )

    overall, selective = benchmark.pedantic(run, rounds=1, iterations=1)
    assert overall > 1.2  # qd-tree wins overall
    assert selective > overall  # larger gap on selective templates


def test_fig5b_commercial_dbms(
    benchmark, tpch, tpch_registry, tpch_bottom_up, tpch_rl
):
    nac = tpch_registry.num_advanced_cuts

    def run():
        return _report(
            tpch, tpch_bottom_up, tpch_rl, COMMERCIAL_DBMS, nac,
            "Figure 5b (commercial DBMS)",
            "paper: 1.3x overall, 1.7x selective",
        )

    overall, selective = benchmark.pedantic(run, rounds=1, iterations=1)
    assert overall > 1.1
    assert selective > 1.1
