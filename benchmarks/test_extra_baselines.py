"""Extra baselines beyond Table 2: hash and k-d tree partitioning.

Paper Sec. 1 and Sec. 7.7 argue that industry-standard hash/range
partitioning and classical workload-oblivious multi-dimensional indexes
(k-d trees) cannot match a workload-learned qd-tree.  This bench
quantifies that on the TPC-H workload.
"""

from repro.baselines import HashPartitioner, KdTreePartitioner
from repro.bench import build_baseline_layout, format_table, logical_access_pct


def test_hash_and_kdtree_vs_qdtree(benchmark, tpch, tpch_registry, tpch_greedy):
    nac = tpch_registry.num_advanced_cuts

    def run():
        hash_layout = build_baseline_layout(
            tpch,
            HashPartitioner(
                columns=["l_shipdate", "p_brand"],
                num_blocks=max(tpch_greedy.num_blocks, 4),
            ),
        )
        kd_layout = build_baseline_layout(
            tpch,
            KdTreePartitioner(
                columns=["l_shipdate", "o_orderdate", "l_quantity", "p_size"],
                min_block_size=tpch.min_block_size,
            ),
        )
        return {
            "hash": logical_access_pct(
                hash_layout, tpch.workload, num_advanced_cuts=nac
            ),
            "kd-tree": logical_access_pct(
                kd_layout, tpch.workload, num_advanced_cuts=nac
            ),
            "qd-tree (greedy)": logical_access_pct(
                tpch_greedy, tpch.workload, num_advanced_cuts=nac
            ),
        }

    pcts = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["partitioner", "access %"],
            [[k, f"{v:.2f}%"] for k, v in pcts.items()],
            title="Extra baselines on TPC-H (paper Sec. 7.7: hash/range "
            "cannot match learned cuts)",
        )
    )
    assert pcts["qd-tree (greedy)"] < pcts["hash"]
    assert pcts["qd-tree (greedy)"] < pcts["kd-tree"]
