"""Figure 4 — data overlap: replicating one record removes extra reads.

Paper: four queries each select N+1 records overlapping in one center
tuple; naive binary cuts force 3 of 4 queries to read N extra tuples
(3N extra total).  With the relaxed cutting condition + replication of
the small leaf into neighbouring blocks, extra reads shrink to ~0 at
virtually no storage cost.
"""

from repro.bench import format_table
from repro.core import (
    GreedyConfig,
    build_greedy_tree,
    build_overlap_layout,
    leaf_sizes,
    per_query_accessed,
)
from repro.workloads import overlap_dataset


def test_fig4_overlap_replication(benchmark):
    dataset = overlap_dataset(cluster_size=1000, seed=0)
    registry = dataset.registry()
    ideal = int(dataset.workload.selected_counts(dataset.table).sum())

    def run():
        plain = build_greedy_tree(
            dataset.schema, registry, dataset.table, dataset.workload,
            GreedyConfig(dataset.min_block_size),
        )
        plain_total = int(
            per_query_accessed(
                plain, dataset.workload, leaf_sizes(plain, dataset.table)
            ).sum()
        )
        relaxed = build_greedy_tree(
            dataset.schema, registry, dataset.table, dataset.workload,
            GreedyConfig(dataset.min_block_size, allow_small_children=True),
        )
        layout = build_overlap_layout(
            relaxed, dataset.table, dataset.min_block_size
        )
        overlap_total = 0
        for query in dataset.workload:
            for bid in layout.blocks_for_query(query):
                overlap_total += layout.store.block(bid).num_rows
        return plain_total, overlap_total, layout

    plain_total, overlap_total, layout = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    extra_plain = plain_total - ideal
    extra_overlap = overlap_total - ideal
    print()
    print(
        format_table(
            ["layout", "tuples accessed", "extra vs ideal", "storage overhead"],
            [
                ["binary cuts", plain_total, extra_plain, "1.00x"],
                [
                    "with overlap",
                    overlap_total,
                    extra_overlap,
                    f"{layout.store.storage_overhead():.4f}x",
                ],
                ["ideal", ideal, 0, "1.00x"],
            ],
            title="Figure 4 — overlap scenario (paper: 3N extra -> ~0)",
        )
    )
    assert layout.replicated_rows > 0
    assert extra_overlap < extra_plain  # replication strictly helps
    assert layout.store.storage_overhead() < 1.01  # "virtually no cost"
