"""Figure 9 — interpreting a learned TPC-H qd-tree.

Paper: a top-performing Woodblock tree cuts a *variety* of columns (8
columns cut >= 20 times), mixes categorical and numerical cuts, and
leverages advanced cuts (AC0-AC2) — sophistication no hash/range
partitioner expresses.
"""

from repro.bench import format_table


def test_fig9_cut_distribution(benchmark, tpch_rl):
    tree = tpch_rl.tree
    assert tree is not None

    def analyze():
        return tree.cut_histogram(), tree.cuts_by_depth()

    hist, by_depth = benchmark.pedantic(analyze, rounds=1, iterations=1)
    rows = [
        [name, count]
        for name, count in sorted(hist.items(), key=lambda kv: -kv[1])
    ]
    print()
    print(
        format_table(
            ["cut column / AC", "total cuts"],
            rows,
            title="Figure 9 — cuts per column in the learned tree "
            "(paper: 8 columns cut >= 20x; ACs leveraged)",
        )
    )
    print("\ncuts by depth (first 6 levels):")
    for depth in sorted(by_depth)[:6]:
        print(f"  depth {depth}: {by_depth[depth]}")

    # Shape assertions: diverse cutting, both kinds of columns, ACs used.
    from repro.workloads.tpch import build_schema

    schema = build_schema()
    assert len(hist) >= 5  # variety of columns
    categorical = {c.name for c in schema.categorical_columns}
    numeric = {c.name for c in schema.numeric_columns}
    assert any(name in categorical for name in hist)
    assert any(name in numeric for name in hist)
    total_cuts = sum(hist.values())
    assert total_cuts >= 20
