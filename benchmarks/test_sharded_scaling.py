"""Sharded scatter-gather scaling benchmark.

Replays the repeated TPC-H-style workload through the
:class:`~repro.serve.shard.ShardedLayoutService` at 1 and 4 shards
(equal per-shard resources: a shard models a machine, so adding shards
adds capacity) and measures scaling two ways:

* **wall-clock QPS** — the real sustained throughput ratio, reported
  for context and bounded below (sharding must not collapse
  throughput).  It is NOT the scaling bar: all shards here are thread
  pools inside one GIL-bound CPython process, so even a multi-core
  runner cannot translate shard count into wall-clock speedup for the
  per-block Python overhead the scan loop carries.
* **critical-path speedup** — per-shard scan-busy seconds are summed
  (the work a 1-shard service executes serially) and divided by the
  slowest shard's busy time (the scatter-gather critical path, i.e.
  wall-clock once each shard owns its machine, which is what a shard
  models).  This is the partition balance the topology actually
  achieves and must be >= 1.3x at 4 shards on ANY hardware — an
  unbalanced partition fails here no matter what the runner looks
  like.

Correctness rides along: every topology must return bit-identical
result keys to the 1-shard service.
"""

import os

import pytest

from repro.serve import LayoutService, ShardedLayoutService

WORKERS_PER_SHARD = 2
REPEAT = 20
SHARDS = 4

STATEMENTS = [
    "SELECT * FROM lineitem WHERE l_shipdate >= 30 AND l_shipdate < 60",
    "SELECT l_extendedprice FROM lineitem "
    "WHERE l_shipmode IN ('MAIL','SHIP') AND l_commitdate < 100",
    "SELECT * FROM lineitem "
    "WHERE p_brand = 'Brand#12' AND p_container IN ('SM CASE','SM BOX')",
    "SELECT l_quantity FROM lineitem "
    "WHERE l_returnflag = 'R' AND c_nationkey < 10",
    "SELECT * FROM lineitem "
    "WHERE o_orderpriority = '1-URGENT' AND l_shipdate < 40",
    "SELECT * FROM lineitem "
    "WHERE cn_name IN ('FRANCE','GERMANY') AND l_discount >= 0.05",
]


def shard_busy_seconds(service) -> list:
    """Per-shard scan-busy seconds over the last replay window (shard
    metrics record pure scan time, no queue wait)."""
    busy = []
    for snap in service.shard_snapshots():
        busy.append(snap.metrics.latency_mean_ms * snap.metrics.queries / 1000.0)
    return busy


def run_single(layout, repeat=REPEAT):
    with LayoutService(
        layout.store,
        layout.tree,
        max_workers=WORKERS_PER_SHARD,
    ) as service:
        return service.run_closed_loop(STATEMENTS, repeat=repeat)


def run_sharded(layout, partition, repeat=REPEAT):
    with ShardedLayoutService(
        layout.store,
        layout.tree,
        num_shards=SHARDS,
        partition=partition,
        max_workers_per_shard=WORKERS_PER_SHARD,
    ) as service:
        replay = service.run_closed_loop(STATEMENTS, repeat=repeat)
        return replay, shard_busy_seconds(service), service.mean_fanout


@pytest.mark.parametrize("partition", ["rr", "subtree"])
def test_sharded_scaling_over_one_shard(tpch_greedy, partition, capsys):
    layout = tpch_greedy
    # Warm both paths so one-time costs (planner, routing memo fill,
    # first decode) hit neither measured run.
    run_single(layout, repeat=2)
    run_sharded(layout, partition, repeat=2)

    single = run_single(layout)
    sharded, busy, fanout = run_sharded(layout, partition)

    assert sorted(r.stats.result_key() for r in single.results) == sorted(
        r.stats.result_key() for r in sharded.results
    ), "sharded results must be bit-identical to the 1-shard service"

    total_busy = sum(busy)
    critical_path = max(busy) if busy else 0.0
    assert critical_path > 0.0
    projected = total_busy / critical_path
    wall_ratio = sharded.qps / single.qps if single.qps > 0 else 0.0
    cores = len(os.sched_getaffinity(0))

    with capsys.disabled():
        print(
            f"\n[sharded-scaling/{partition}] 1 shard: {single.qps:7.1f} qps | "
            f"{SHARDS} shards: {sharded.qps:7.1f} qps "
            f"(wall ratio {wall_ratio:.2f}x on {cores} core(s)) | "
            f"critical-path speedup {projected:.2f}x | "
            f"mean fan-out {fanout:.2f}/{SHARDS}"
        )

    # Partition balance must deliver the scaling headroom regardless of
    # the runner's core count.
    assert projected >= 1.3, (
        f"{SHARDS}-shard {partition} partition only reaches "
        f"{projected:.2f}x critical-path speedup over 1 shard"
    )
    # Coordination overhead stays bounded: scatter-gather through two
    # scheduler layers must not cost more than ~40% of 1-shard QPS.
    assert wall_ratio >= 0.6, (
        f"sharded wall-clock QPS collapsed to {wall_ratio:.2f}x of the "
        f"1-shard service on {cores} core(s)"
    )


def test_subtree_fanout_no_worse_than_rr(tpch_greedy, capsys):
    """The locality strategy exists to shrink scatter width: on the
    same workload its mean fan-out must not exceed round-robin's."""
    _, _, fanout_rr = run_sharded(tpch_greedy, "rr", repeat=2)
    _, _, fanout_subtree = run_sharded(tpch_greedy, "subtree", repeat=2)
    with capsys.disabled():
        print(
            f"\n[sharded-scaling] mean fan-out rr {fanout_rr:.2f} vs "
            f"subtree {fanout_subtree:.2f} (of {SHARDS} shards)"
        )
    assert fanout_subtree <= fanout_rr + 1e-9
