"""Figure 7 — ErrorLog physical runtimes and per-query speedup CDFs.

Paper: (a) ErrorLog-Int total runtime 8890s (BU+) vs 627s (qd-tree) vs
753s (no route) — a 14x speedup with routing ~16% better than no-route;
(b) ErrorLog-Ext 19325s vs 3859s vs 4126s — 5x, no-route gap 6.4%;
(c) 50% of queries speed up by at least 25x (Int) / 20x (Ext).
"""

import numpy as np

from repro.bench import cdf_chart, format_cdf, format_table, run_physical
from repro.engine import SPARK_PARQUET, speedup_cdf


def _experiment(dataset, layouts, title, paper_note):
    _, bu_layout, _, rl_layout = layouts
    bu = run_physical(bu_layout, dataset.workload, SPARK_PARQUET)
    qd = run_physical(rl_layout, dataset.workload, SPARK_PARQUET)
    no_route = run_physical(
        rl_layout, dataset.workload, SPARK_PARQUET, use_routing=False
    )
    print()
    print(
        format_table(
            ["layout", "workload runtime (modeled s)"],
            [
                ["bottom-up+", f"{bu.total_modeled_ms / 1000:.2f}"],
                ["qd-tree (routed)", f"{qd.total_modeled_ms / 1000:.2f}"],
                ["qd-tree (no route)", f"{no_route.total_modeled_ms / 1000:.2f}"],
            ],
            title=f"{title} — {paper_note}",
        )
    )
    return bu, qd, no_route


def test_fig7a_errorlog_int(benchmark, errlog_int, errlog_int_layouts):
    def run():
        return _experiment(
            errlog_int, errlog_int_layouts,
            "Figure 7a (ErrorLog-Int)",
            "paper: 8890 / 627 / 753 (14x)",
        )

    bu, qd, no_route = benchmark.pedantic(run, rounds=1, iterations=1)
    assert qd.speedup_over(bu) > 3.0  # paper: 14x
    assert qd.total_modeled_ms <= no_route.total_modeled_ms


def test_fig7b_errorlog_ext(benchmark, errlog_ext, errlog_ext_layouts):
    def run():
        return _experiment(
            errlog_ext, errlog_ext_layouts,
            "Figure 7b (ErrorLog-Ext)",
            "paper: 19325 / 3859 / 4126 (5x)",
        )

    bu, qd, no_route = benchmark.pedantic(run, rounds=1, iterations=1)
    assert qd.speedup_over(bu) > 2.0  # paper: 5x
    assert qd.total_modeled_ms <= no_route.total_modeled_ms


def test_fig7c_speedup_cdf(
    benchmark, errlog_int, errlog_int_layouts, errlog_ext, errlog_ext_layouts
):
    def run():
        out = {}
        for name, dataset, layouts in (
            ("ErrorLog-Int", errlog_int, errlog_int_layouts),
            ("ErrorLog-Ext", errlog_ext, errlog_ext_layouts),
        ):
            _, bu_layout, _, rl_layout = layouts
            bu = run_physical(bu_layout, dataset.workload, SPARK_PARQUET)
            qd = run_physical(rl_layout, dataset.workload, SPARK_PARQUET)
            out[name] = speedup_cdf(bu, qd)
        return out

    cdfs = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, (xs, ys) in cdfs.items():
        finite = xs[np.isfinite(xs)]
        print(
            cdf_chart(
                finite,
                ys[: len(finite)],
                x_label="speedup",
                log_x=True,
                title=f"Figure 7c ({name}) — per-query speedup over BU+",
            )
        )
        print(
            format_cdf(
                finite,
                ys[: len(finite)],
                label=f"{name} per-query speedup over BU+ "
                "(paper: median >= 25x Int / 20x Ext)",
            )
        )
        median = float(np.median(finite))
        # Shape: at least half the queries see a real speedup.
        assert median > 1.5, name
