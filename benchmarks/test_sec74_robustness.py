"""Sec. 7.4.1 robustness — unseen query literals.

Paper: a qd-tree built from 150 "train" queries serves 1500 "test"
queries (fresh random seeds, so mostly unseen literals) at essentially
the same mean runtime (7776 ms vs 7752 ms, a 0.3% gap), showing the
layout generalizes across literals of the same templates.
"""

from repro.bench import format_table, run_physical
from repro.engine import SPARK_PARQUET


def test_sec74_train_vs_test_queries(benchmark, tpch, tpch_registry, tpch_rl):
    assert tpch.test_workload is not None
    nac = tpch_registry.num_advanced_cuts

    def run():
        train = run_physical(
            tpch_rl, tpch.workload, SPARK_PARQUET, num_advanced_cuts=nac
        )
        test = run_physical(
            tpch_rl, tpch.test_workload, SPARK_PARQUET, num_advanced_cuts=nac
        )
        return train, test

    train, test = benchmark.pedantic(run, rounds=1, iterations=1)
    train_mean = train.total_modeled_ms / len(tpch.workload)
    test_mean = test.total_modeled_ms / len(tpch.test_workload)
    print()
    print(
        format_table(
            ["query set", "queries", "mean runtime (ms)"],
            [
                ["train (seen literals)", len(tpch.workload), f"{train_mean:.0f}"],
                ["test (unseen literals)", len(tpch.test_workload), f"{test_mean:.0f}"],
            ],
            title="Sec 7.4.1 robustness — paper: 7752ms train vs 7776ms test",
        )
    )
    # Shape: unseen literals cost at most ~40% extra on average (the
    # paper sees ~0.3%; template instances vary more at our tiny scale).
    assert test_mean < 1.4 * train_mean
