"""The query-data routing tree (qd-tree) itself.

A :class:`QdTree` is a binary tree of :class:`~repro.core.node.QdNode`.
It supports the two usages of paper Sec. 3:

* **Data routing** (Sec. 3.1): :meth:`route_table` recursively routes a
  batch of records down the tree with vectorized predicate evaluation,
  returning a per-row block-ID (BID) assignment.
* **Query routing** (Sec. 3.3): :meth:`route_query` scans leaf semantic
  descriptions and returns the BIDs of all intersecting leaves.

After data is routed, :meth:`freeze` performs the min-max tightening
optimization of Sec. 3.2: each leaf's range/mask description is replaced
with the exact statistics of its records.

Trees serialize to/from plain dicts (:meth:`to_dict`/:meth:`from_dict`)
so learned layouts can be persisted next to the block catalog.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from ..storage.schema import Schema
from ..storage.table import Table
from .cuts import CutRegistry
from .node import NodeDescription, QdNode
from .predicates import Predicate

__all__ = ["QdTree"]


class QdTree:
    """A qd-tree over ``schema`` with cuts drawn from ``registry``.

    Parameters
    ----------
    schema:
        Table schema (owns categorical dictionaries).
    registry:
        The candidate-cut registry; required for advanced-cut bit-vector
        sizing and for serialization.
    """

    def __init__(self, schema: Schema, registry: Optional[CutRegistry] = None) -> None:
        self.schema = schema
        self.registry = registry if registry is not None else CutRegistry(schema)
        root_desc = NodeDescription.root(
            schema, num_advanced_cuts=self.registry.num_advanced_cuts
        )
        self._nodes: List[QdNode] = [QdNode(0, root_desc, depth=0)]
        self._frozen = False

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def root(self) -> QdNode:
        return self._nodes[0]

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def is_frozen(self) -> bool:
        return self._frozen

    def node(self, node_id: int) -> QdNode:
        return self._nodes[node_id]

    def nodes(self) -> Tuple[QdNode, ...]:
        return tuple(self._nodes)

    def leaves(self) -> List[QdNode]:
        """All leaf nodes, in node-id order."""
        return [n for n in self._nodes if n.is_leaf]

    def internal_nodes(self) -> List[QdNode]:
        return [n for n in self._nodes if not n.is_leaf]

    def depth(self) -> int:
        """Maximum leaf depth (0 for the singleton tree)."""
        return max(n.depth for n in self.leaves())

    def iter_bfs(self) -> Iterator[QdNode]:
        """Breadth-first traversal from the root."""
        queue = [self.root]
        while queue:
            node = queue.pop(0)
            yield node
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                queue.append(node.left)
                queue.append(node.right)

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------

    def apply_cut(self, node: QdNode, cut: Predicate) -> Tuple[QdNode, QdNode]:
        """Apply action ``a = (cut, node)``: split a leaf into two.

        Returns the (left, right) children.  The left child's sub-space
        satisfies ``cut``; the right satisfies its negation.
        """
        if self._frozen:
            raise RuntimeError("cannot grow a frozen qd-tree")
        if not node.is_leaf:
            raise ValueError(f"node {node.node_id} is not a leaf")
        left_desc, right_desc = node.description.split(cut)
        left = QdNode(len(self._nodes), left_desc, node.depth + 1, parent=node)
        self._nodes.append(left)
        right = QdNode(len(self._nodes), right_desc, node.depth + 1, parent=node)
        self._nodes.append(right)
        node.cut = cut
        node.left = left
        node.right = right
        if node.sample_indices is not None:
            # Propagate the construction sample down the new edge.
            sample_cols = self._sample_columns
            assert sample_cols is not None
            idx = node.sample_indices
            mask = cut.evaluate({k: v[idx] for k, v in sample_cols.items()})
            left.sample_indices = idx[mask]
            right.sample_indices = idx[~mask]
        return left, right

    _sample_columns: Optional[Dict[str, np.ndarray]] = None

    def attach_sample(self, sample: Table) -> None:
        """Attach the construction sample (Sec. 5.2.1) to the root.

        Subsequent :meth:`apply_cut` calls keep per-node sample index
        arrays up to date, which construction algorithms use for the
        minimum-size legality test and reward computation.
        """
        self._sample_columns = sample.columns()
        self.root.sample_indices = np.arange(sample.num_rows)

    @property
    def sample_columns(self) -> Optional[Dict[str, np.ndarray]]:
        return self._sample_columns

    # ------------------------------------------------------------------
    # Data routing (Sec. 3.1)
    # ------------------------------------------------------------------

    def route_table(self, table: Table) -> np.ndarray:
        """Route every row to a leaf; returns per-row leaf node ids.

        Vectorized: each tree edge evaluates its predicate once over the
        batch of rows reaching it.
        """
        return self.route_columns(table.columns(), table.num_rows)

    def route_columns(
        self, columns: Mapping[str, np.ndarray], num_rows: int
    ) -> np.ndarray:
        """Route rows given as raw column arrays."""
        assignment = np.empty(num_rows, dtype=np.int64)
        indices = np.arange(num_rows)
        self._route_recursive(self.root, columns, indices, assignment)
        return assignment

    def _route_recursive(
        self,
        node: QdNode,
        columns: Mapping[str, np.ndarray],
        indices: np.ndarray,
        assignment: np.ndarray,
    ) -> None:
        if node.is_leaf:
            assignment[indices] = node.node_id
            return
        if len(indices) == 0:
            return
        assert node.cut is not None and node.left is not None
        assert node.right is not None
        subset = {
            name: columns[name][indices]
            for name in node.cut.referenced_columns()
        }
        mask = node.cut.evaluate(subset)
        self._route_recursive(node.left, columns, indices[mask], assignment)
        self._route_recursive(node.right, columns, indices[~mask], assignment)

    def assign_block_ids(self) -> Dict[int, int]:
        """Assign dense BIDs to leaves; returns leaf node id -> BID."""
        mapping: Dict[int, int] = {}
        for bid, leaf in enumerate(self.leaves()):
            leaf.block_id = bid
            mapping[leaf.node_id] = bid
        return mapping

    def route_to_blocks(self, table: Table) -> np.ndarray:
        """Route rows and return per-row *block* IDs (dense)."""
        leaf_to_bid = self.assign_block_ids()
        leaf_ids = self.route_table(table)
        lut = np.full(self.num_nodes, -1, dtype=np.int64)
        for leaf_id, bid in leaf_to_bid.items():
            lut[leaf_id] = bid
        return lut[leaf_ids]

    # ------------------------------------------------------------------
    # Query routing (Sec. 3.3)
    # ------------------------------------------------------------------

    def route_query(self, query: Predicate) -> List[int]:
        """BIDs of all leaves whose descriptions intersect ``query``.

        Implemented by scanning leaf metadata (the paper found this at
        least as fast as walking the tree).
        """
        bids = []
        for leaf in self.leaves():
            if leaf.description.may_match(query):
                bid = leaf.block_id if leaf.block_id is not None else leaf.node_id
                bids.append(bid)
        return bids

    def route_query_leaves(self, query: Predicate) -> List[QdNode]:
        """Leaf nodes (not BIDs) intersecting ``query``."""
        return [
            leaf for leaf in self.leaves() if leaf.description.may_match(query)
        ]

    def route_query_descent(self, query: Predicate) -> List[int]:
        """The alternative routing of Sec. 3.3: descend the tree.

        Instead of scanning all leaf metadata, walk down from the root
        and prune whole subtrees whose descriptions cannot intersect
        the query.  Returns the same BID set as :meth:`route_query`
        (descriptions only narrow along a path), but visits fewer
        nodes when large subtrees are prunable.
        """
        bids: List[int] = []

        def visit(node: QdNode) -> None:
            if not node.description.may_match(query):
                return
            if node.is_leaf:
                bid = node.block_id if node.block_id is not None else node.node_id
                bids.append(bid)
                return
            assert node.left is not None and node.right is not None
            visit(node.left)
            visit(node.right)

        visit(self.root)
        return bids

    # ------------------------------------------------------------------
    # Freezing (min-max tightening, Sec. 3.2)
    # ------------------------------------------------------------------

    def freeze(self, table: Table) -> np.ndarray:
        """Route the full dataset and tighten leaf descriptions.

        Returns the per-row dense BID assignment.  After freezing, leaf
        descriptions reflect exact per-leaf min-max / distinct stats, so
        query routing prunes at least as much as before.
        """
        bids = self.route_to_blocks(table)
        columns = table.columns()
        for leaf in self.leaves():
            rows = np.flatnonzero(bids == leaf.block_id)
            if len(rows) == 0:
                continue
            leaf_cols = {name: arr[rows] for name, arr in columns.items()}
            leaf.description = leaf.description.tighten(leaf_cols)
        self._frozen = True
        return bids

    # ------------------------------------------------------------------
    # Introspection / serialization
    # ------------------------------------------------------------------

    def leaf_descriptions(self) -> Dict[int, str]:
        """BID -> human-readable semantic description string."""
        out: Dict[int, str] = {}
        for leaf in self.leaves():
            bid = leaf.block_id if leaf.block_id is not None else leaf.node_id
            out[bid] = repr(leaf.path_predicate())
        return out

    def cut_histogram(self) -> Dict[str, int]:
        """Cut column/advanced-cut name -> number of times cut."""
        from .predicates import AdvancedCut, ColumnPredicate

        counts: Dict[str, int] = {}
        for node in self.internal_nodes():
            cut = node.cut
            assert cut is not None
            if isinstance(cut, ColumnPredicate):
                key = cut.column
            elif isinstance(cut, AdvancedCut):
                key = f"AC{cut.index}"
            else:
                key = type(cut).__name__
            counts[key] = counts.get(key, 0) + 1
        return counts

    def cuts_by_depth(self) -> Dict[int, Dict[str, int]]:
        """depth -> {cut name -> count}; data behind paper Fig. 9."""
        from .predicates import AdvancedCut, ColumnPredicate

        out: Dict[int, Dict[str, int]] = {}
        for node in self.internal_nodes():
            cut = node.cut
            assert cut is not None
            if isinstance(cut, ColumnPredicate):
                key = cut.column
            elif isinstance(cut, AdvancedCut):
                key = f"AC{cut.index}"
            else:
                key = type(cut).__name__
            level = out.setdefault(node.depth, {})
            level[key] = level.get(key, 0) + 1
        return out

    def to_dict(self) -> Dict[str, object]:
        """Serialize tree structure (cuts by registry index)."""
        nodes = []
        for node in self._nodes:
            entry: Dict[str, object] = {
                "id": node.node_id,
                "depth": node.depth,
                "parent": node.parent.node_id if node.parent else None,
                "block_id": node.block_id,
            }
            if not node.is_leaf:
                assert node.cut is not None
                assert node.left is not None and node.right is not None
                entry["cut"] = self.registry.index_of(node.cut)
                entry["left"] = node.left.node_id
                entry["right"] = node.right.node_id
            nodes.append(entry)
        return {"num_advanced_cuts": self.registry.num_advanced_cuts, "nodes": nodes}

    @classmethod
    def from_dict(
        cls, data: Mapping[str, object], schema: Schema, registry: CutRegistry
    ) -> "QdTree":
        """Rebuild a tree serialized by :meth:`to_dict`.

        The same ``registry`` (same cut order) must be supplied.
        """
        tree = cls(schema, registry)
        node_entries = list(data["nodes"])  # type: ignore[arg-type]
        # Child ids are allocated in pairs at apply time, so replaying
        # internal cuts sorted by left-child id reproduces the original
        # id assignment regardless of the original construction order.
        internal = sorted(
            (e for e in node_entries if "cut" in e), key=lambda e: int(e["left"])
        )
        for entry in internal:
            node = tree.node(int(entry["id"]))
            cut = registry.cut(int(entry["cut"]))
            left, right = tree.apply_cut(node, cut)
            if left.node_id != int(entry["left"]) or right.node_id != int(
                entry["right"]
            ):
                raise ValueError("node id mismatch when deserializing qd-tree")
        for entry in node_entries:
            if "cut" not in entry and entry.get("block_id") is not None:
                tree.node(int(entry["id"])).block_id = int(entry["block_id"])
        return tree

    def save(self, path: str) -> None:
        """Write :meth:`to_dict` as JSON."""
        with open(path, "w") as f:
            json.dump(self.to_dict(), f)

    @classmethod
    def load(cls, path: str, schema: Schema, registry: CutRegistry) -> "QdTree":
        """Read a tree saved by :meth:`save`."""
        with open(path) as f:
            return cls.from_dict(json.load(f), schema, registry)

    def __repr__(self) -> str:
        return (
            f"QdTree(nodes={self.num_nodes}, leaves={len(self.leaves())}, "
            f"depth={self.depth()})"
        )
