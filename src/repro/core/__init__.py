"""Core qd-tree library: the paper's primary contribution.

Exports the predicate algebra, node descriptions, the
:class:`~repro.core.tree.QdTree` itself, candidate-cut extraction, the
skipping cost model, greedy construction, data/query routers, and the
Sec. 6 extensions (overlap, two-tree replication).
"""

from .cost import (
    access_percentage,
    leaf_sizes,
    per_query_accessed,
    scan_ratio,
    skipped_tuples,
    subtree_skips,
    tuples_accessed,
)
from .cuts import CutRegistry, extract_candidate_cuts
from .greedy import GreedyConfig, build_greedy_tree
from .ingest import IngestionPipeline, SegmentInfo
from .hypercube import Hypercube, Interval
from .node import NodeDescription, QdNode
from .overlap import OverlapLayout, build_overlap_layout, hypercubes_adjacent
from .predicates import (
    AdvancedCut,
    And,
    ColumnPredicate,
    Not,
    Op,
    Or,
    Predicate,
    TruePredicate,
    column_eq,
    column_ge,
    column_gt,
    column_in,
    column_le,
    column_lt,
    conjunction,
    disjunction,
)
from .replication import TwoTreeLayout, build_two_tree_layout, combined_accessed
from .router import DataRouter, QueryRouter, RoutedQuery, RoutingStats
from .tree import QdTree
from .validate import ValidationReport, validate_layout
from .workload import Query, Workload

__all__ = [
    "AdvancedCut",
    "And",
    "ColumnPredicate",
    "CutRegistry",
    "DataRouter",
    "GreedyConfig",
    "Hypercube",
    "IngestionPipeline",
    "SegmentInfo",
    "Interval",
    "NodeDescription",
    "Not",
    "Op",
    "Or",
    "OverlapLayout",
    "Predicate",
    "QdNode",
    "QdTree",
    "Query",
    "QueryRouter",
    "RoutedQuery",
    "RoutingStats",
    "TruePredicate",
    "TwoTreeLayout",
    "ValidationReport",
    "Workload",
    "validate_layout",
    "access_percentage",
    "build_greedy_tree",
    "build_overlap_layout",
    "build_two_tree_layout",
    "column_eq",
    "column_ge",
    "column_gt",
    "column_in",
    "column_le",
    "column_lt",
    "combined_accessed",
    "conjunction",
    "disjunction",
    "extract_candidate_cuts",
    "hypercubes_adjacent",
    "leaf_sizes",
    "per_query_accessed",
    "scan_ratio",
    "skipped_tuples",
    "subtree_skips",
    "tuples_accessed",
]
