"""Online data and query routing (paper Sec. 3.1, 3.3, Fig. 6).

:class:`DataRouter` routes batches of incoming records through a
frozen-or-not qd-tree to BIDs, optionally with a thread pool over
batches (the paper's ingestion experiment, Fig. 6a — threads work
because the heavy per-node kernels are vectorized numpy which releases
the GIL).

:class:`QueryRouter` rewrites queries with an explicit ``BID IN (...)``
clause (Sec. 3.3) and records per-query routing latency (Fig. 6b).
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..storage.table import Table
from .tree import QdTree
from .workload import Query, Workload

__all__ = [
    "DataRouter",
    "QueryRouter",
    "RoutedQuery",
    "RoutingStats",
    "subtree_shard_assignment",
]


def subtree_shard_assignment(
    tree: QdTree,
    num_shards: int,
    weights: Optional[Mapping[int, int]] = None,
) -> Dict[int, int]:
    """Assign each leaf BID to a shard by qd-tree subtree locality.

    Leaves are visited in left-to-right (in-order) tree order — the
    order in which sibling subtrees enumerate their leaves — and cut
    into ``num_shards`` contiguous runs of near-equal total weight
    (``weights`` maps BID -> row count; unweighted when omitted).
    Contiguity in leaf order means each shard owns whole subtrees
    wherever the weight balance allows, so a routed query whose
    surviving BIDs cluster under one subtree fans out to few shards.

    Trade-off versus round-robin: round-robin balances block counts
    exactly and spreads every query over all shards (good for
    intra-query parallelism, high fan-out); subtree assignment keeps a
    selective query's scatter narrow (low fan-out, less coordination)
    but a hot subtree concentrates its load on one shard.

    Returns a BID -> shard mapping suitable for
    :meth:`repro.storage.blocks.BlockStore.partition`.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if any(leaf.block_id is None for leaf in tree.leaves()):
        tree.assign_block_ids()

    ordered: List[int] = []

    def visit(node) -> None:
        if node.is_leaf:
            bid = node.block_id if node.block_id is not None else node.node_id
            ordered.append(bid)
            return
        visit(node.left)
        visit(node.right)

    visit(tree.root)
    weight = [max(int(weights.get(bid, 1)) if weights else 1, 0) for bid in ordered]
    assignment: Dict[int, int] = {}
    idx = 0
    remaining_weight = sum(weight) or len(ordered)
    for shard in range(num_shards):
        if idx >= len(ordered):
            break  # fewer leaves than shards: trailing shards stay empty
        # Greedy contiguous split: each shard takes leaves until it
        # reaches an equal share of the weight still unassigned, but
        # always leaves at least one leaf per remaining shard.
        target = remaining_weight / (num_shards - shard)
        acc = 0
        while idx < len(ordered):
            assignment[ordered[idx]] = shard
            acc += weight[idx]
            idx += 1
            if shard < num_shards - 1:
                if len(ordered) - idx <= num_shards - shard - 1:
                    break
                if acc >= target:
                    break
        remaining_weight -= acc
    return assignment


@dataclass
class RoutingStats:
    """Throughput accounting for one :meth:`DataRouter.route` call."""

    records: int
    seconds: float
    threads: int

    @property
    def records_per_second(self) -> float:
        return self.records / self.seconds if self.seconds > 0 else float("inf")


class DataRouter:
    """Routes record batches to block IDs through a qd-tree."""

    def __init__(self, tree: QdTree, batch_size: int = 65536) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.tree = tree
        self.batch_size = batch_size
        # BIDs must be assigned before ingestion starts.
        if any(leaf.block_id is None for leaf in tree.leaves()):
            tree.assign_block_ids()

    def route(self, table: Table, threads: int = 1) -> Tuple[np.ndarray, RoutingStats]:
        """Route all rows; returns (per-row BIDs, throughput stats).

        With ``threads > 1`` the table is chunked into batches routed
        concurrently (appends at the leaves in a real system would be
        lock-protected; here each batch owns its output slice).
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        n = table.num_rows
        out = np.empty(n, dtype=np.int64)
        columns = table.columns()
        starts = list(range(0, n, self.batch_size))
        t0 = time.perf_counter()

        def work(start: int) -> None:
            stop = min(start + self.batch_size, n)
            batch = {name: arr[start:stop] for name, arr in columns.items()}
            out[start:stop] = self.tree.route_columns(batch, stop - start)

        if threads == 1 or len(starts) <= 1:
            for start in starts:
                work(start)
        else:
            with ThreadPoolExecutor(max_workers=threads) as pool:
                list(pool.map(work, starts))
        seconds = time.perf_counter() - t0
        # Map leaf node ids to dense BIDs.
        lut = np.full(self.tree.num_nodes, -1, dtype=np.int64)
        for leaf in self.tree.leaves():
            assert leaf.block_id is not None
            lut[leaf.node_id] = leaf.block_id
        return lut[out], RoutingStats(records=n, seconds=seconds, threads=threads)


@dataclass(frozen=True)
class RoutedQuery:
    """A query augmented with its pruned BID list (``BID IN (...)``)."""

    query: Query
    block_ids: Tuple[int, ...]
    latency_seconds: float


class QueryRouter:
    """Intercepts queries and augments them with BID filters.

    The paper routes queries by scanning leaf metadata; latencies here
    are real wall-clock per-query routing times (Fig. 6b).
    """

    def __init__(self, tree: QdTree, max_latency_samples: Optional[int] = None) -> None:
        self.tree = tree
        if any(leaf.block_id is None for leaf in tree.leaves()):
            tree.assign_block_ids()
        # With a cap, only the most recent samples are retained so a
        # long-lived router cannot grow without bound.
        self._latencies: "deque[float]" = deque(maxlen=max_latency_samples)

    def route(self, query: Query) -> RoutedQuery:
        """Prune blocks for one query, recording latency."""
        t0 = time.perf_counter()
        bids = tuple(self.tree.route_query(query.predicate))
        latency = time.perf_counter() - t0
        self._latencies.append(latency)
        return RoutedQuery(query=query, block_ids=bids, latency_seconds=latency)

    def route_workload(self, workload: Workload) -> List[RoutedQuery]:
        """Route every query in a workload."""
        return [self.route(q) for q in workload]

    def rewrite_sql(self, routed: RoutedQuery) -> str:
        """The augmented SQL fragment the paper injects (Sec. 3.3)."""
        bids = ",".join(str(b) for b in routed.block_ids)
        return f"({routed.query.predicate!r}) AND BID IN ({bids})"

    @property
    def latencies(self) -> Tuple[float, ...]:
        """All recorded per-query routing latencies, in seconds."""
        return tuple(self._latencies)

    def latency_cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """(sorted latencies, cumulative fraction) — Fig. 6b's CDF."""
        if not self._latencies:
            return np.empty(0), np.empty(0)
        xs = np.sort(np.asarray(self._latencies))
        ys = np.arange(1, len(xs) + 1) / len(xs)
        return xs, ys

    def reset_latencies(self) -> None:
        self._latencies.clear()
