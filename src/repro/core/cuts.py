"""Candidate-cut extraction and the cut registry (paper Sec. 3.4).

The search space for both construction algorithms is the set of
*allowed cuts*.  Following the paper, we parse the target workload and
take every pushed-down unary predicate as a candidate, plus any
registered advanced cuts (Sec. 6.1).  The registry assigns each cut a
stable index used by the RL agent's action space and by tree
serialization.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..storage.schema import Schema
from .predicates import AdvancedCut, ColumnPredicate, Predicate
from .workload import Workload

__all__ = ["CutRegistry", "extract_candidate_cuts"]


def extract_candidate_cuts(
    workload: Workload,
    schema: Optional[Schema] = None,
    include_advanced: bool = True,
) -> List[Predicate]:
    """All distinct unary predicates (and advanced cuts) in a workload.

    Walks each query's predicate tree and collects leaf predicates.
    Duplicate cuts (same column/op/literals) are collapsed.  With
    ``schema`` given, cuts on unknown columns are rejected loudly.
    """
    seen: Dict[Predicate, None] = {}
    for query in workload:
        for leaf in query.predicate.leaves():
            if isinstance(leaf, ColumnPredicate):
                if schema is not None and leaf.column not in schema:
                    raise ValueError(
                        f"query {query!r} references unknown column "
                        f"{leaf.column!r}"
                    )
                seen.setdefault(leaf, None)
            elif isinstance(leaf, AdvancedCut) and include_advanced:
                # Canonicalize to the positive form: the tree's binary
                # split covers both polarities.
                positive = leaf if leaf.positive else leaf.negate()
                seen.setdefault(positive, None)
    return list(seen)


class CutRegistry:
    """An indexed, ordered set of candidate cuts.

    The registry serves three roles:

    * the **action space** of the Woodblock agent (index = action id);
    * the **search space** of Greedy and Bottom-Up;
    * the **codec** for serializing trees (cuts referenced by index).

    Advanced cuts additionally get a dense *advanced index* used to
    size per-node ``adv_cuts`` bit vectors.
    """

    def __init__(
        self, schema: Schema, cuts: Iterable[Predicate] = ()
    ) -> None:
        self.schema = schema
        self._cuts: List[Predicate] = []
        self._index: Dict[Predicate, int] = {}
        self._advanced: List[AdvancedCut] = []
        for cut in cuts:
            self.add(cut)

    # ------------------------------------------------------------------

    @classmethod
    def from_workload(
        cls,
        schema: Schema,
        workload: Workload,
        extra_cuts: Iterable[Predicate] = (),
    ) -> "CutRegistry":
        """Registry of all cuts extracted from ``workload``.

        Advanced cuts are re-indexed densely in first-seen order so
        their node bit-vector slots are compact.
        """
        registry = cls(schema)
        for cut in extract_candidate_cuts(workload, schema):
            registry.add(cut)
        for cut in extra_cuts:
            registry.add(cut)
        return registry

    def add(self, cut: Predicate) -> int:
        """Register a cut (idempotent); returns its index."""
        if isinstance(cut, AdvancedCut) and not cut.positive:
            cut = cut.negate()
        if isinstance(cut, AdvancedCut):
            # Indices are assigned by the workload author and shared
            # with the queries that reference the cut, so they must be
            # kept as-is (node bit vectors are sized by the max index).
            # Equality is by index, so check for name clashes *before*
            # the dedup lookup or a conflicting cut slips through.
            for other in self._advanced:
                if other.index == cut.index and other.name != cut.name:
                    raise ValueError(
                        f"advanced cut index {cut.index} used by both "
                        f"{other.name!r} and {cut.name!r}"
                    )
        existing = self._index.get(cut)
        if existing is not None:
            return existing
        if isinstance(cut, AdvancedCut):
            self._advanced.append(cut)
        elif isinstance(cut, ColumnPredicate):
            if cut.column not in self.schema:
                raise ValueError(f"cut on unknown column {cut.column!r}")
            col = self.schema[cut.column]
            if col.is_categorical and not cut.op.is_equality:
                raise ValueError(
                    f"range cut {cut!r} on categorical column {cut.column!r}"
                )
        else:
            raise TypeError(
                f"only unary predicates and advanced cuts can be "
                f"candidate cuts, got {cut!r}"
            )
        index = len(self._cuts)
        self._cuts.append(cut)
        self._index[cut] = index
        return index

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cuts)

    def __iter__(self):
        return iter(self._cuts)

    def __contains__(self, cut: Predicate) -> bool:
        return cut in self._index

    @property
    def cuts(self) -> Tuple[Predicate, ...]:
        return tuple(self._cuts)

    @property
    def advanced_cuts(self) -> Tuple[AdvancedCut, ...]:
        return tuple(self._advanced)

    @property
    def num_advanced_cuts(self) -> int:
        """Size needed for per-node advanced-cut bit vectors."""
        if not self._advanced:
            return 0
        return max(c.index for c in self._advanced) + 1

    def cut(self, index: int) -> Predicate:
        """Cut by action index."""
        return self._cuts[index]

    def index_of(self, cut: Predicate) -> int:
        """Action index of a registered cut."""
        if isinstance(cut, AdvancedCut) and not cut.positive:
            cut = cut.negate()
        try:
            return self._index[cut]
        except KeyError:
            raise KeyError(f"cut {cut!r} is not registered") from None

    # ------------------------------------------------------------------

    def evaluate_all(
        self, columns: Mapping[str, np.ndarray], num_rows: int
    ) -> np.ndarray:
        """``(num_cuts, num_rows)`` boolean matrix of cut outcomes.

        Both construction algorithms and Bottom-Up featurization reuse
        this precomputed matrix over the construction sample.
        """
        out = np.empty((len(self._cuts), num_rows), dtype=bool)
        for i, cut in enumerate(self._cuts):
            out[i] = cut.evaluate(columns)
        return out

    def columns_used(self) -> Tuple[str, ...]:
        """All columns referenced by any registered cut."""
        cols = set()
        for cut in self._cuts:
            cols |= cut.referenced_columns()
        return tuple(sorted(cols))

    def __repr__(self) -> str:
        return (
            f"CutRegistry(cuts={len(self._cuts)}, "
            f"advanced={len(self._advanced)})"
        )
