"""Data overlap: trading storage for skipping (paper Sec. 6.2).

Construction with the relaxed cutting condition (one child may be
smaller than ``b``) can produce *small* leaves.  This module implements
the paper's post-pass: partition leaves into small (< b) and large
(>= b) sets, then **replicate** each small leaf's rows into every
neighbouring large leaf.  Two leaves are neighbours when their
hypercubes share boundaries on all but one dimension and are adjacent
on the remaining one; with our description-based routing we use the
equivalent and strictly safe criterion that the small leaf's rows are
copied into large leaves whose parent sub-space adjoins it (we test
hypercube adjacency directly).

Routing afterwards follows Sec. 6.2.1: a row lands in all matching
blocks; a query first collects overlapping blocks and then prunes
blocks that are *redundant* — fully covered by the union of already-
selected complete blocks (here: by a single covering block, the case
the paper illustrates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

import numpy as np

from ..storage.blocks import Block, BlockStore
from ..storage.table import Table
from .hypercube import Hypercube, Interval
from .tree import QdTree
from .workload import Query

__all__ = ["OverlapLayout", "build_overlap_layout", "hypercubes_adjacent"]


def hypercubes_adjacent(
    a: Hypercube, b: Hypercube, columns: Sequence[str]
) -> bool:
    """Neighbour test: equal boundaries on all but one dimension and
    adjacent intervals on the remaining one (paper Sec. 6.2)."""
    differing = []
    for column in columns:
        ia, ib = a.interval(column), b.interval(column)
        if ia == ib:
            continue
        differing.append((ia, ib))
        if len(differing) > 1:
            return False
    if len(differing) != 1:
        return False
    ia, ib = differing[0]
    touches = (
        ia.hi == ib.lo and (ia.hi_inclusive or ib.lo_inclusive)
    ) or (ib.hi == ia.lo and (ib.hi_inclusive or ia.lo_inclusive))
    return touches


def _hypercubes_touch(
    a: Hypercube, b: Hypercube, columns: Sequence[str]
) -> bool:
    """Do the closures of the two hypercubes share any point?"""
    for column in columns:
        ia, ib = a.interval(column), b.interval(column)
        closed_a = Interval(ia.lo, ia.hi, True, True)
        closed_b = Interval(ib.lo, ib.hi, True, True)
        if not closed_a.intersects(closed_b):
            return False
    return True


@dataclass
class OverlapLayout:
    """A physical layout where small leaves were replicated.

    ``assignments`` maps each row index to *all* BIDs storing it (one or
    more).  ``replicated_rows`` counts row copies beyond the logical
    count — the extra storage spent.
    """

    tree: QdTree
    store: BlockStore
    assignments: Dict[int, List[int]]
    replicated_rows: int
    host_blocks: Dict[int, List[int]]  # small BID -> hosting large BIDs

    def blocks_for_query(self, query: Query) -> List[int]:
        """Candidate BIDs with redundancy pruning (Sec. 6.2.1).

        Collects intersecting blocks, then drops any block whose
        intersection with the query is fully served by another selected
        block that *hosts* it (completeness makes this sound).
        """
        candidates = self.tree.route_query(query.predicate)
        selected = set(candidates)
        for small_bid, hosts in self.host_blocks.items():
            if small_bid in selected:
                hosting = [h for h in hosts if h in selected]
                if hosting:
                    # The small block's rows are replicated inside an
                    # already-selected host block: the standalone small
                    # block is redundant.
                    selected.discard(small_bid)
        return sorted(selected)

    def deduplicate(self, bids: Sequence[int], row_bids: np.ndarray) -> np.ndarray:
        """Row indices covered by ``bids`` without duplicates.

        Scanning block ``i`` ignores rows already owned by a selected
        block with a smaller BID (paper Sec. 6.2.1).
        """
        seen: Set[int] = set()
        out: List[int] = []
        for bid in sorted(bids):
            for row in np.flatnonzero(row_bids == bid):
                if row not in seen:
                    seen.add(row)
                    out.append(row)
        return np.asarray(out, dtype=np.int64)


def build_overlap_layout(
    tree: QdTree,
    table: Table,
    min_block_size: int,
) -> OverlapLayout:
    """Replicate small leaves into neighbouring large leaves.

    ``tree`` should have been constructed with the relaxed cutting
    condition (``allow_small_children=True``) so that sub-``b`` leaves
    exist; trees without small leaves come back unchanged.
    """
    tree.assign_block_ids()
    bids = tree.route_to_blocks(table)
    leaves = tree.leaves()
    sizes = {leaf.block_id: int((bids == leaf.block_id).sum()) for leaf in leaves}
    numeric_columns = [c.name for c in table.schema.numeric_columns]

    small = [l for l in leaves if sizes[l.block_id] < min_block_size]
    large = [l for l in leaves if sizes[l.block_id] >= min_block_size]

    assignments: Dict[int, List[int]] = {
        int(row): [int(bid)] for row, bid in enumerate(bids)
    }
    host_blocks: Dict[int, List[int]] = {}
    replicated = 0
    for leaf in small:
        hosts = [
            other
            for other in large
            if hypercubes_adjacent(
                leaf.description.hypercube,
                other.description.hypercube,
                numeric_columns,
            )
        ]
        if not hosts:
            # Degenerate small leaves (e.g. the Fig. 4 singleton at the
            # exact intersection of all query rectangles) may differ
            # from every large leaf in more than one dimension; fall
            # back to face-touching blocks.  Completeness is preserved
            # because hosts are tracked explicitly and each host's
            # stored region is the union of the two sub-spaces.
            hosts = [
                other
                for other in large
                if _hypercubes_touch(
                    leaf.description.hypercube,
                    other.description.hypercube,
                    numeric_columns,
                )
            ]
        if not hosts:
            continue
        assert leaf.block_id is not None
        host_blocks[leaf.block_id] = [h.block_id for h in hosts]  # type: ignore[misc]
        rows = np.flatnonzero(bids == leaf.block_id)
        for host in hosts:
            assert host.block_id is not None
            for row in rows:
                assignments[int(row)].append(int(host.block_id))
            replicated += len(rows)

    # Materialize physical blocks (a row may appear in several).
    descriptions = tree.leaf_descriptions()
    blocks = []
    for leaf in leaves:
        assert leaf.block_id is not None
        member_rows = [
            row for row, blist in assignments.items() if leaf.block_id in blist
        ]
        rows_arr = np.asarray(sorted(member_rows), dtype=np.int64)
        blocks.append(
            Block(
                leaf.block_id,
                table.take(rows_arr),
                description=descriptions.get(leaf.block_id),
            )
        )
    store = BlockStore(table.schema, blocks, logical_rows=table.num_rows)
    return OverlapLayout(
        tree=tree,
        store=store,
        assignments=assignments,
        replicated_rows=replicated,
        host_blocks=host_blocks,
    )
