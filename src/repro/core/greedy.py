"""Greedy top-down qd-tree construction (paper Sec. 4, Algorithm 1).

Starting from the singleton tree, every splittable leaf greedily takes
the cut that maximizes the skipping objective ``C(T ⊕ (p, n))``; a
split is kept only when it strictly improves ``C`` (the paper proves
approximation guarantees for this scheme under tree-submodularity).

Sizes and gains are computed over the construction sample, mirroring
how the RL agent approximates the ``|block| >= b`` constraint
(Sec. 5.2.1).  The implementation exploits two monotonicity facts to
avoid re-testing every (cut, query) pair:

* a query that does not intersect a node cannot intersect its children
  (descriptions only narrow);
* splitting on a cut can only change the intersection status of
  queries that reference the cut's column (or advanced-cut slot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..storage.schema import Schema
from ..storage.table import Table
from .cuts import CutRegistry
from .node import QdNode
from .predicates import AdvancedCut, ColumnPredicate, Predicate
from .tree import QdTree
from .workload import Query, Workload

__all__ = ["GreedyConfig", "build_greedy_tree", "choose_best_cut"]


@dataclass
class GreedyConfig:
    """Tuning knobs for greedy construction.

    Parameters
    ----------
    min_leaf_size:
        ``b`` — the minimum rows per block, in *sample* rows.  Callers
        working with a sample of ratio ``s`` should pass
        ``max(1, round(b * s))``.
    allow_small_children:
        The Sec. 6.2 relaxation: permit one child below ``b`` (used
        before overlap-based replication).
    allow_zero_gain:
        Accept cuts with zero immediate gain (Algorithm 1 requires
        strictly positive gain; this knob exists for the ablation
        study).
    max_depth:
        Optional hard depth cap.
    """

    min_leaf_size: int
    allow_small_children: bool = False
    allow_zero_gain: bool = False
    max_depth: Optional[int] = None


def _queries_referencing(
    workload: Workload,
) -> Tuple[Dict[str, List[int]], Dict[int, List[int]]]:
    """Indexes: column -> query ids, advanced-cut index -> query ids."""
    by_column: Dict[str, List[int]] = {}
    by_adv: Dict[int, List[int]] = {}
    for qi, query in enumerate(workload):
        for leaf in query.predicate.leaves():
            if isinstance(leaf, ColumnPredicate):
                by_column.setdefault(leaf.column, []).append(qi)
            elif isinstance(leaf, AdvancedCut):
                by_adv.setdefault(leaf.index, []).append(qi)
    # Deduplicate while keeping order.
    for key in by_column:
        by_column[key] = sorted(set(by_column[key]))
    for key in by_adv:
        by_adv[key] = sorted(set(by_adv[key]))
    return by_column, by_adv


def _affected_queries(
    cut: Predicate,
    by_column: Dict[str, List[int]],
    by_adv: Dict[int, List[int]],
) -> List[int]:
    """Query ids whose intersection status a split on ``cut`` can change."""
    if isinstance(cut, AdvancedCut):
        return by_adv.get(cut.index, [])
    affected: Set[int] = set()
    for column in cut.referenced_columns():
        affected.update(by_column.get(column, []))
    return sorted(affected)


def choose_best_cut(
    node: QdNode,
    tree: QdTree,
    workload: Workload,
    cut_masks: np.ndarray,
    parent_hits: np.ndarray,
    config: GreedyConfig,
    by_column: Dict[str, List[int]],
    by_adv: Dict[int, List[int]],
) -> Optional[Tuple[Predicate, int, np.ndarray, np.ndarray]]:
    """The gain-maximizing legal cut for ``node``, or ``None``.

    Returns ``(cut, gain, left_hits, right_hits)`` where the hit arrays
    record which queries intersect each child (reused by the caller to
    seed the children's own searches).
    """
    indices = node.sample_indices
    assert indices is not None, "attach a sample before construction"
    size = len(indices)
    b = config.min_leaf_size
    num_queries = len(workload)
    parent_miss = num_queries - int(parent_hits.sum())
    base_skips = size * parent_miss

    best: Optional[Tuple[Predicate, int, np.ndarray, np.ndarray]] = None
    # Algorithm 1 keeps a split only when C strictly improves; the
    # zero-gain ablation lowers the bar so structurally useful but
    # immediately-neutral cuts are taken too.
    best_gain = -1 if config.allow_zero_gain else 0
    registry = tree.registry
    for ci, cut in enumerate(registry.cuts):
        left_size = int(cut_masks[ci, indices].sum())
        right_size = size - left_size
        if left_size == 0 or right_size == 0:
            continue
        if config.allow_small_children:
            if max(left_size, right_size) < b:
                continue
        else:
            if left_size < b or right_size < b:
                continue
        left_desc, right_desc = node.description.split(cut)
        left_hits = parent_hits.copy()
        right_hits = parent_hits.copy()
        for qi in _affected_queries(cut, by_column, by_adv):
            if not parent_hits[qi]:
                continue  # cannot start hitting a narrower description
            pred = workload[qi].predicate
            left_hits[qi] = left_desc.may_match(pred)
            right_hits[qi] = right_desc.may_match(pred)
        left_miss = num_queries - int(left_hits.sum())
        right_miss = num_queries - int(right_hits.sum())
        gain = left_size * left_miss + right_size * right_miss - base_skips
        if gain > best_gain:
            best = (cut, gain, left_hits, right_hits)
            best_gain = gain
    return best


def build_greedy_tree(
    schema: Schema,
    registry: CutRegistry,
    sample: Table,
    workload: Workload,
    config: GreedyConfig,
) -> QdTree:
    """Run Algorithm 1 and return the constructed qd-tree.

    ``sample`` is the (possibly down-sampled) tuple set used to size
    children and estimate gains.
    """
    if config.min_leaf_size < 1:
        raise ValueError("min_leaf_size must be >= 1")
    tree = QdTree(schema, registry)
    tree.attach_sample(sample)
    cut_masks = registry.evaluate_all(sample.columns(), sample.num_rows)
    by_column, by_adv = _queries_referencing(workload)

    root_hits = np.array(
        [tree.root.description.may_match(q.predicate) for q in workload],
        dtype=bool,
    )
    frontier: List[Tuple[QdNode, np.ndarray]] = [(tree.root, root_hits)]
    while frontier:
        node, hits = frontier.pop(0)
        size = len(node.sample_indices) if node.sample_indices is not None else 0
        min_parent = (
            config.min_leaf_size + 1
            if config.allow_small_children
            else 2 * config.min_leaf_size
        )
        if size < min_parent:
            continue
        if config.max_depth is not None and node.depth >= config.max_depth:
            continue
        choice = choose_best_cut(
            node, tree, workload, cut_masks, hits, config, by_column, by_adv
        )
        if choice is None:
            continue
        cut, _gain, left_hits, right_hits = choice
        left, right = tree.apply_cut(node, cut)
        frontier.append((left, left_hits))
        frontier.append((right, right_hits))
    tree.assign_block_ids()
    return tree
