"""Query workloads: the ``W`` of Problem 1.

A :class:`Query` wraps a filter predicate with provenance metadata
(template name, seed) so per-template reporting (paper Fig. 5) and
train/test splits (Sec. 7.4.1 robustness) are possible.  A
:class:`Workload` is an ordered collection of queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np

from ..storage.table import Table
from .predicates import Predicate

__all__ = ["Query", "Workload"]


@dataclass(frozen=True)
class Query:
    """One query's pushed-down filter plus metadata.

    ``columns`` optionally lists the columns the full query reads
    (projection); the engine uses it to charge columnar scan costs.
    When omitted, the filter's referenced columns are used.
    """

    predicate: Predicate
    name: str = ""
    template: str = ""
    columns: Tuple[str, ...] = ()

    def scan_columns(self) -> Tuple[str, ...]:
        """Columns a scan of this query must read."""
        if self.columns:
            return self.columns
        return tuple(sorted(self.predicate.referenced_columns()))

    def __repr__(self) -> str:
        label = self.name or self.template or "query"
        return f"Query({label}: {self.predicate!r})"


class Workload:
    """An ordered set of queries with helpers for evaluation."""

    def __init__(self, queries: Iterable[Query]) -> None:
        self._queries: List[Query] = list(queries)

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries)

    def __getitem__(self, index: int) -> Query:
        return self._queries[index]

    @property
    def queries(self) -> Tuple[Query, ...]:
        return tuple(self._queries)

    def predicates(self) -> List[Predicate]:
        return [q.predicate for q in self._queries]

    def templates(self) -> List[str]:
        """Distinct template names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for q in self._queries:
            if q.template and q.template not in seen:
                seen[q.template] = None
        return list(seen)

    def by_template(self) -> Dict[str, List[Query]]:
        """Group queries by template name."""
        groups: Dict[str, List[Query]] = {}
        for q in self._queries:
            groups.setdefault(q.template or q.name or "", []).append(q)
        return groups

    def selectivity(self, table: Table) -> float:
        """Mean fraction of rows selected per query — the true workload
        selectivity, the lower bound for any layout's scan ratio."""
        if not self._queries or table.num_rows == 0:
            return 0.0
        columns = table.columns()
        total = 0
        for q in self._queries:
            total += int(q.predicate.evaluate(columns).sum())
        return total / (len(self._queries) * table.num_rows)

    def selected_counts(self, table: Table) -> np.ndarray:
        """Per-query count of selected rows."""
        columns = table.columns()
        return np.array(
            [int(q.predicate.evaluate(columns).sum()) for q in self._queries],
            dtype=np.int64,
        )

    def split(self, fraction: float, rng: np.random.Generator) -> Tuple["Workload", "Workload"]:
        """Random (train, test) split of the queries."""
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        n = len(self._queries)
        perm = rng.permutation(n)
        k = max(1, int(round(n * fraction)))
        train = [self._queries[i] for i in sorted(perm[:k])]
        test = [self._queries[i] for i in sorted(perm[k:])]
        return Workload(train), Workload(test)

    def __repr__(self) -> str:
        return f"Workload(queries={len(self._queries)})"
