"""Qd-tree nodes and their semantic descriptions.

A node's *semantic description* (paper Table 1 + Sec. 6.1) is:

``range``
    A :class:`~repro.core.hypercube.Hypercube` over numeric columns.
``categorical_mask``
    For each categorical column, a ``|Dom|``-bit vector; bit ``v`` = 0
    means value ``v`` definitively does not appear under the node.
``adv_cuts``
    For each registered advanced cut, two possibility bits:
    ``adv_true[i]`` (may contain records satisfying cut *i*) and
    ``adv_false[i]`` (may contain records violating it).  The paper
    stores only the first; tracking both lets *either* side of an
    advanced cut prune, strictly improving skipping while preserving
    completeness.

Descriptions support three operations used throughout the system:

* :meth:`NodeDescription.split` — apply a cut, producing the left
  (satisfies ``p``) and right (satisfies ``¬p``) descriptions;
* :meth:`NodeDescription.may_match` — conservative "could any record
  under this description satisfy this query?" test (query routing,
  Sec. 3.3);
* :meth:`NodeDescription.matches_rows` — exact vectorized membership
  test (used to verify the completeness property).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..storage.schema import Schema
from .hypercube import Hypercube, Interval
from .predicates import (
    AdvancedCut,
    And,
    ColumnPredicate,
    Not,
    Op,
    Or,
    Predicate,
    TruePredicate,
)

__all__ = ["NodeDescription", "QdNode"]


class NodeDescription:
    """The (range, categorical_mask, adv_cuts) triple of one node."""

    def __init__(
        self,
        schema: Schema,
        hypercube: Hypercube,
        categorical_masks: Mapping[str, np.ndarray],
        adv_true: np.ndarray,
        adv_false: np.ndarray,
    ) -> None:
        self.schema = schema
        self.hypercube = hypercube
        self.categorical_masks: Dict[str, np.ndarray] = {
            name: np.asarray(mask, dtype=bool)
            for name, mask in categorical_masks.items()
        }
        self.adv_true = np.asarray(adv_true, dtype=bool)
        self.adv_false = np.asarray(adv_false, dtype=bool)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def root(cls, schema: Schema, num_advanced_cuts: int = 0) -> "NodeDescription":
        """The whole-table description: full domains everywhere."""
        intervals = {}
        for col in schema.numeric_columns:
            if col.domain is not None:
                lo, hi = col.domain
                intervals[col.name] = Interval(lo, hi, True, True)
        masks = {
            col.name: np.ones(col.domain_size, dtype=bool)
            for col in schema.categorical_columns
        }
        ones = np.ones(num_advanced_cuts, dtype=bool)
        return cls(schema, Hypercube(intervals), masks, ones, ones.copy())

    def copy(self) -> "NodeDescription":
        return NodeDescription(
            self.schema,
            self.hypercube.copy(),
            {k: v.copy() for k, v in self.categorical_masks.items()},
            self.adv_true.copy(),
            self.adv_false.copy(),
        )

    # ------------------------------------------------------------------
    # Cut application (Sec. 3.2, Sec. 6.1)
    # ------------------------------------------------------------------

    def split(self, cut: Predicate) -> Tuple["NodeDescription", "NodeDescription"]:
        """Left (satisfies ``cut``) and right (satisfies ``¬cut``)."""
        left = self.copy()
        right = self.copy()
        left._restrict(cut, satisfied=True)
        right._restrict(cut, satisfied=False)
        return left, right

    def _restrict(self, cut: Predicate, satisfied: bool) -> None:
        """Narrow this description assuming ``cut`` is (not) satisfied."""
        if isinstance(cut, TruePredicate):
            return
        if isinstance(cut, Not):
            self._restrict(cut.child, not satisfied)
            return
        if isinstance(cut, And) and satisfied:
            # All conjuncts hold; each narrows independently.
            for child in cut.children:
                self._restrict(child, True)
            return
        if isinstance(cut, Or) and not satisfied:
            # None of the disjuncts hold.
            for child in cut.children:
                self._restrict(child, False)
            return
        if isinstance(cut, ColumnPredicate):
            self._restrict_column(cut, satisfied)
            return
        if isinstance(cut, AdvancedCut):
            self._restrict_advanced(cut, satisfied)
            return
        # ¬(A∧B) / (A∨B): no single-sided narrowing is sound; skip.

    def _restrict_column(self, cut: ColumnPredicate, satisfied: bool) -> None:
        column = self.schema[cut.column]
        if cut.op.is_range or (cut.op is Op.EQ and column.is_numeric):
            interval = Interval.from_predicate(cut)
            if satisfied:
                self.hypercube = self.hypercube.restrict(cut.column, interval)
            else:
                # Complement of an interval is one- or two-sided; only a
                # one-sided complement narrows a single interval.  The
                # two-sided case (EQ negation) keeps the parent hull,
                # which stays sound.
                pieces = _interval_complement(interval)
                if len(pieces) == 1:
                    self.hypercube = self.hypercube.restrict(cut.column, pieces[0])
            return
        if column.is_categorical:
            mask = self.categorical_masks[cut.column]
            codes = np.asarray(cut.values, dtype=np.int64)
            codes = codes[(codes >= 0) & (codes < len(mask))]
            if satisfied:
                keep = np.zeros_like(mask)
                keep[codes] = True
                self.categorical_masks[cut.column] = mask & keep
            else:
                drop = mask.copy()
                drop[codes] = False
                self.categorical_masks[cut.column] = drop
            return
        if cut.op is Op.IN:  # numeric IN: conservative hull on the true side
            if satisfied:
                lo, hi = min(cut.values), max(cut.values)
                self.hypercube = self.hypercube.restrict(
                    cut.column, Interval(lo, hi, True, True)
                )
            return
        raise ValueError(f"cannot restrict by {cut!r}")

    def _restrict_advanced(self, cut: AdvancedCut, satisfied: bool) -> None:
        if cut.index >= len(self.adv_true):
            raise IndexError(
                f"advanced cut index {cut.index} out of range "
                f"({len(self.adv_true)} registered)"
            )
        holds = satisfied if cut.positive else not satisfied
        if holds:
            self.adv_false[cut.index] = False
        else:
            self.adv_true[cut.index] = False

    # ------------------------------------------------------------------
    # Conservative intersection (query routing, Sec. 3.3)
    # ------------------------------------------------------------------

    def may_match(self, query: Predicate) -> bool:
        """Could *some* record in this sub-space satisfy ``query``?

        A conservative (never false-negative) three-valued test: AND
        intersects iff all conjuncts do, OR iff any disjunct does
        (paper Sec. 3.3).
        """
        if self.hypercube.is_empty:
            return False
        return self._may(query, positive=True)

    def _may(self, pred: Predicate, positive: bool) -> bool:
        if isinstance(pred, TruePredicate):
            return positive
        if isinstance(pred, Not):
            return self._may(pred.child, not positive)
        if isinstance(pred, And):
            if positive:
                return all(self._may(c, True) for c in pred.children)
            return any(self._may(c, False) for c in pred.children)
        if isinstance(pred, Or):
            if positive:
                return any(self._may(c, True) for c in pred.children)
            return all(self._may(c, False) for c in pred.children)
        if isinstance(pred, ColumnPredicate):
            return self._may_column(pred, positive)
        if isinstance(pred, AdvancedCut):
            if pred.index >= len(self.adv_true):
                # The cut is not tracked by this tree (e.g. advanced
                # cuts disabled at construction): it can never prune.
                return True
            holds = positive if pred.positive else not positive
            return bool(
                self.adv_true[pred.index] if holds else self.adv_false[pred.index]
            )
        raise TypeError(f"unsupported predicate {pred!r}")

    def _may_column(self, pred: ColumnPredicate, positive: bool) -> bool:
        column = self.schema[pred.column]
        if column.is_categorical and pred.op.is_equality:
            mask = self.categorical_masks[pred.column]
            codes = np.asarray(pred.values, dtype=np.int64)
            codes = codes[(codes >= 0) & (codes < len(mask))]
            if positive:
                return bool(mask[codes].any()) if len(codes) else False
            # May a value OUTSIDE the literal set appear?
            outside = mask.copy()
            outside[codes] = False
            return bool(outside.any())
        # Numeric (or categorical used with a range op over codes).
        node_iv = self.hypercube.interval(pred.column)
        if pred.op is Op.IN:
            if positive:
                return any(node_iv.contains(v) for v in pred.values)
            return True  # interval can't prove all values are in the set
        pred_iv = Interval.from_predicate(pred)
        if positive:
            return node_iv.intersects(pred_iv)
        return any(node_iv.intersects(piece) for piece in _interval_complement(pred_iv))

    # ------------------------------------------------------------------
    # Exact membership (completeness verification)
    # ------------------------------------------------------------------

    def matches_rows(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        """Boolean mask: which rows satisfy this description exactly?

        Advanced-cut bits are honoured by evaluating the registered
        evaluators where a bit rules a side out.
        """
        n = len(next(iter(columns.values())))
        mask = np.ones(n, dtype=bool)
        for name in self.hypercube.columns():
            iv = self.hypercube.interval(name)
            arr = columns[name]
            if np.isfinite(iv.lo):
                mask &= arr >= iv.lo if iv.lo_inclusive else arr > iv.lo
            if np.isfinite(iv.hi):
                mask &= arr <= iv.hi if iv.hi_inclusive else arr < iv.hi
        for name, bits in self.categorical_masks.items():
            codes = columns[name].astype(np.int64)
            valid = (codes >= 0) & (codes < len(bits))
            ok = np.zeros(n, dtype=bool)
            ok[valid] = bits[codes[valid]]
            mask &= ok
        return mask

    def tighten(self, columns: Mapping[str, np.ndarray]) -> "NodeDescription":
        """Min-max tightening once data is routed (paper Sec. 3.2).

        Replaces each numeric interval with the actual [min, max] of the
        node's records and each categorical mask with the actual
        distinct-value set.  Rows must be exactly this node's records.
        """
        out = self.copy()
        n = len(next(iter(columns.values()))) if columns else 0
        if n == 0:
            return out
        for col in self.schema.numeric_columns:
            arr = columns[col.name]
            out.hypercube = out.hypercube.with_interval(
                col.name, Interval(float(arr.min()), float(arr.max()), True, True)
            )
        for col in self.schema.categorical_columns:
            arr = columns[col.name].astype(np.int64)
            bits = np.zeros(col.domain_size, dtype=bool)
            bits[np.unique(arr)] = True
            out.categorical_masks[col.name] = bits
        return out

    def __repr__(self) -> str:
        return (
            f"NodeDescription(range={self.hypercube!r}, "
            f"cats={list(self.categorical_masks)}, "
            f"adv={len(self.adv_true)})"
        )


def _interval_complement(interval: Interval) -> List[Interval]:
    """The complement of an interval as 0, 1 or 2 intervals."""
    pieces: List[Interval] = []
    if np.isfinite(interval.lo):
        pieces.append(
            Interval(hi=interval.lo, hi_inclusive=not interval.lo_inclusive)
        )
    if np.isfinite(interval.hi):
        pieces.append(
            Interval(lo=interval.hi, lo_inclusive=not interval.hi_inclusive)
        )
    return pieces


class QdNode:
    """One node of a qd-tree.

    Internal nodes carry a ``cut``; the left child satisfies it and the
    right child its negation (Sec. 3).  Leaves carry a ``block_id``.
    ``sample_indices`` holds the construction-sample rows routed to the
    node (used by both construction algorithms and for rewards).
    """

    __slots__ = (
        "node_id",
        "description",
        "cut",
        "left",
        "right",
        "parent",
        "depth",
        "block_id",
        "sample_indices",
    )

    def __init__(
        self,
        node_id: int,
        description: NodeDescription,
        depth: int = 0,
        parent: Optional["QdNode"] = None,
    ) -> None:
        self.node_id = node_id
        self.description = description
        self.cut: Optional[Predicate] = None
        self.left: Optional["QdNode"] = None
        self.right: Optional["QdNode"] = None
        self.parent = parent
        self.depth = depth
        self.block_id: Optional[int] = None
        self.sample_indices: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.cut is None

    def path_cuts(self) -> List[Tuple[Predicate, bool]]:
        """(cut, took_left) pairs from the root to this node."""
        path: List[Tuple[Predicate, bool]] = []
        node: Optional[QdNode] = self
        while node is not None and node.parent is not None:
            parent = node.parent
            assert parent.cut is not None
            path.append((parent.cut, node is parent.left))
            node = parent
        path.reverse()
        return path

    def path_predicate(self) -> Predicate:
        """The conjunction of (possibly negated) cuts root -> here.

        This is the leaf's human-readable semantic description
        ("all tuples matching predicate p", Sec. 1.1).
        """
        from .predicates import conjunction

        parts: List[Predicate] = []
        for cut, took_left in self.path_cuts():
            parts.append(cut if took_left else cut.negate())
        return conjunction(parts)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"cut={self.cut!r}"
        return f"QdNode(id={self.node_id}, depth={self.depth}, {kind})"
