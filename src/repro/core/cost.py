"""The skipping cost model ``C(P)`` (paper Sec. 2.1, Eq. 1).

For a partitioning ``P`` and workload ``W``, each block ``P_i``
contributes ``C(P_i) = |P_i| * sum_q S(P_i, q)`` skipped tuples, where
``S`` is 1 when the block can be skipped for query ``q``.  Skippability
is decided by the block's semantic description / min-max metadata via
:meth:`NodeDescription.may_match`.

This module computes the paper's *logical* metrics over a qd-tree:

* per-query tuples accessed,
* total skipped tuples ``C(P)``,
* the **access percentage** reported in Table 2
  (``accessed / (|W| * |V|)``),
* per-node subtree skips ``S(n)`` used as the RL reward signal
  (Sec. 5.2.2).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from ..storage.table import Table
from .node import QdNode
from .tree import QdTree
from .workload import Workload

__all__ = [
    "leaf_sizes",
    "tuples_accessed",
    "skipped_tuples",
    "scan_ratio",
    "access_percentage",
    "subtree_skips",
    "per_query_accessed",
]


def leaf_sizes(tree: QdTree, table: Table) -> Dict[int, int]:
    """Route ``table`` and return leaf node id -> row count."""
    assignment = tree.route_table(table)
    ids, counts = np.unique(assignment, return_counts=True)
    sizes = {int(i): int(c) for i, c in zip(ids, counts)}
    for leaf in tree.leaves():
        sizes.setdefault(leaf.node_id, 0)
    return sizes


def sample_leaf_sizes(tree: QdTree) -> Dict[int, int]:
    """Leaf node id -> construction-sample row count.

    Requires :meth:`QdTree.attach_sample` to have been called.
    """
    sizes: Dict[int, int] = {}
    for leaf in tree.leaves():
        if leaf.sample_indices is None:
            raise ValueError("tree has no attached sample")
        sizes[leaf.node_id] = int(len(leaf.sample_indices))
    return sizes


def per_query_accessed(
    tree: QdTree, workload: Workload, sizes: Mapping[int, int]
) -> np.ndarray:
    """Tuples each query must scan under the tree's layout.

    A query scans the full size of every leaf whose semantic
    description it intersects (retrieved blocks are fully scanned,
    Sec. 1).
    """
    leaves = tree.leaves()
    accessed = np.zeros(len(workload), dtype=np.int64)
    for leaf in leaves:
        size = sizes.get(leaf.node_id, 0)
        if size == 0:
            continue
        desc = leaf.description
        for qi, query in enumerate(workload):
            if desc.may_match(query.predicate):
                accessed[qi] += size
    return accessed


def tuples_accessed(
    tree: QdTree, workload: Workload, sizes: Mapping[int, int]
) -> int:
    """Total tuples scanned across the workload."""
    return int(per_query_accessed(tree, workload, sizes).sum())


def skipped_tuples(
    tree: QdTree, workload: Workload, sizes: Mapping[int, int]
) -> int:
    """``C(P)``: total tuples skipped across the workload."""
    total_rows = sum(sizes.values())
    ceiling = total_rows * len(workload)
    return ceiling - tuples_accessed(tree, workload, sizes)


def scan_ratio(
    tree: QdTree, workload: Workload, sizes: Mapping[int, int]
) -> float:
    """Fraction of (tuple, query) pairs scanned — lower is better.

    ``1.0`` means every query scans everything; the lower bound is the
    true workload selectivity.
    """
    total_rows = sum(sizes.values())
    if total_rows == 0 or len(workload) == 0:
        return 0.0
    return tuples_accessed(tree, workload, sizes) / (total_rows * len(workload))


def access_percentage(tree: QdTree, workload: Workload, table: Table) -> float:
    """Table 2's metric: % of tuples accessed, on the full dataset."""
    sizes = leaf_sizes(tree, table)
    return 100.0 * scan_ratio(tree, workload, sizes)


def subtree_skips(
    tree: QdTree, workload: Workload, sizes: Optional[Mapping[int, int]] = None
) -> Dict[int, int]:
    """Per-node ``S(n)``: skipped tuples under each node (Sec. 5.2.2).

    ``S(leaf) = C(leaf.records)`` (Eq. 1 restricted to the leaf) and
    ``S(n) = S(n.left) + S(n.right)`` for internal nodes.  Sizes default
    to the attached construction sample.
    """
    if sizes is None:
        sizes = sample_leaf_sizes(tree)
    skips: Dict[int, int] = {}

    def visit(node: QdNode) -> int:
        if node.is_leaf:
            size = sizes.get(node.node_id, 0)
            skipped_queries = 0
            if size > 0:
                for query in workload:
                    if not node.description.may_match(query.predicate):
                        skipped_queries += 1
            value = size * skipped_queries
        else:
            assert node.left is not None and node.right is not None
            value = visit(node.left) + visit(node.right)
        skips[node.node_id] = value
        return value

    visit(tree.root)
    return skips
