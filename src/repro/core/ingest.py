"""Online ingestion with a learned partitioning function (Problem 2).

Paper Sec. 2.1 distinguishes static layout (Problem 1) from *learned*
partitioning applied to future data (Problem 2): learn a partitioning
function offline, then route newly ingested tuples through it, saving
reshuffling cost.  A frozen qd-tree *is* that function — lightweight to
evaluate and complete by construction.

:class:`IngestionPipeline` wraps a learned tree with per-leaf append
buffers: arriving batches are routed (vectorized), buffered per block,
and flushed to immutable block *segments* once a buffer reaches the
segment size (the paper notes large blocks may be stored as multiple
physical segments).  The pipeline tracks throughput and lets callers
evaluate layout quality on the data that actually arrived — supporting
the paper's assumption check that current tuples distribute like the
next ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..storage.blocks import Block, BlockStore
from ..storage.table import Table
from .tree import QdTree
__all__ = ["SegmentInfo", "IngestionPipeline"]


@dataclass(frozen=True)
class SegmentInfo:
    """One flushed physical segment of a logical block."""

    block_id: int
    segment_index: int
    num_rows: int


class IngestionPipeline:
    """Routes arriving batches through a learned qd-tree into blocks.

    Parameters
    ----------
    tree:
        A constructed (typically frozen) qd-tree; its leaf BIDs define
        the logical blocks.
    segment_rows:
        Rows per physical segment; a leaf buffer flushes when it
        reaches this size (remaining rows flush on :meth:`finish`).
    """

    def __init__(self, tree: QdTree, segment_rows: int = 100_000) -> None:
        if segment_rows < 1:
            raise ValueError("segment_rows must be >= 1")
        if any(leaf.block_id is None for leaf in tree.leaves()):
            tree.assign_block_ids()
        self.tree = tree
        self.segment_rows = segment_rows
        self._buffers: Dict[int, List[Table]] = {}
        self._buffered_rows: Dict[int, int] = {}
        self._segments: List[Tuple[SegmentInfo, Table]] = []
        self._segment_counter: Dict[int, int] = {}
        self._rows_ingested = 0
        self._routing_seconds = 0.0

    # ------------------------------------------------------------------

    def route(self, batch: Table) -> np.ndarray:
        """Evaluate the learned partitioning function on one batch:
        per-row BIDs, with routing-throughput accounting but WITHOUT
        buffering the rows.  Callers that materialize blocks
        themselves (e.g. :meth:`repro.db.Database.ingest`, which
        merges into an existing store) use this; :meth:`ingest` layers
        the per-leaf segment buffering on top.
        """
        t0 = time.perf_counter()
        lut = np.full(self.tree.num_nodes, -1, dtype=np.int64)
        for leaf in self.tree.leaves():
            assert leaf.block_id is not None
            lut[leaf.node_id] = leaf.block_id
        leaf_ids = self.tree.route_columns(batch.columns(), batch.num_rows)
        bids = lut[leaf_ids]
        self._routing_seconds += time.perf_counter() - t0
        self._rows_ingested += batch.num_rows
        return bids

    def ingest(self, batch: Table) -> np.ndarray:
        """Route one batch into the leaf buffers; returns its per-row
        BIDs."""
        bids = self.route(batch)
        for bid in np.unique(bids):
            rows = batch.filter(bids == bid)
            self._buffers.setdefault(int(bid), []).append(rows)
            self._buffered_rows[int(bid)] = (
                self._buffered_rows.get(int(bid), 0) + rows.num_rows
            )
            while self._buffered_rows[int(bid)] >= self.segment_rows:
                self._flush_segment(int(bid))
        return bids

    def _flush_segment(self, bid: int) -> None:
        """Cut one ``segment_rows``-sized segment from a leaf buffer."""
        parts = self._buffers[bid]
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.concat(part)
        segment = merged.slice(0, min(self.segment_rows, merged.num_rows))
        remainder = merged.slice(segment.num_rows, merged.num_rows)
        index = self._segment_counter.get(bid, 0)
        self._segment_counter[bid] = index + 1
        self._segments.append(
            (SegmentInfo(bid, index, segment.num_rows), segment)
        )
        if remainder.num_rows:
            self._buffers[bid] = [remainder]
            self._buffered_rows[bid] = remainder.num_rows
        else:
            self._buffers[bid] = []
            self._buffered_rows[bid] = 0

    def finish(self) -> BlockStore:
        """Flush all buffers and materialize the final block store.

        Segments of one logical block are concatenated into one
        :class:`Block` (the engine scans whole blocks; segmentation is
        a storage detail)."""
        for bid in list(self._buffers):
            while self._buffered_rows.get(bid, 0) > 0:
                self._flush_segment(bid)
        by_block: Dict[int, List[Table]] = {}
        for info, segment in self._segments:
            by_block.setdefault(info.block_id, []).append(segment)
        descriptions = self.tree.leaf_descriptions()
        blocks = []
        for bid, segments in sorted(by_block.items()):
            merged = segments[0]
            for segment in segments[1:]:
                merged = merged.concat(segment)
            blocks.append(
                Block(bid, merged, description=descriptions.get(bid))
            )
        schema = self.tree.schema
        return BlockStore(schema, blocks, logical_rows=self._rows_ingested)

    # ------------------------------------------------------------------

    @property
    def rows_ingested(self) -> int:
        return self._rows_ingested

    @property
    def segments(self) -> List[SegmentInfo]:
        return [info for info, _ in self._segments]

    @property
    def routing_throughput(self) -> float:
        """Records routed per second of routing time."""
        if self._routing_seconds == 0:
            return float("inf")
        return self._rows_ingested / self._routing_seconds

    def buffered_rows(self) -> int:
        """Rows waiting in unflushed buffers."""
        return sum(self._buffered_rows.values())
