"""Layout validation: check the paper's invariants on a built layout.

A qd-tree layout promises three things (paper Sec. 1.1, 2.1, 3.2):

1. **Partition** — every row lands in exactly one leaf (without the
   overlap extension).
2. **Completeness** — each leaf holds *all* rows matching its semantic
   description and nothing else.
3. **Minimum block size** — every block holds at least ``b`` rows.

:func:`validate_layout` checks all three plus query-routing soundness
(no routed-out block ever contains a matching row) and returns a
structured report.  Useful in CI for any new construction algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..storage.table import Table
from .tree import QdTree
from .workload import Workload

__all__ = ["ValidationReport", "validate_layout"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_layout`."""

    is_partition: bool
    is_complete: bool
    meets_min_block_size: bool
    routing_sound: bool
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.is_partition
            and self.is_complete
            and self.meets_min_block_size
            and self.routing_sound
        )

    def raise_if_invalid(self) -> None:
        """Raise ``AssertionError`` with the violation list when bad."""
        if not self.ok:
            raise AssertionError(
                "layout validation failed:\n  " + "\n  ".join(self.violations)
            )


def validate_layout(
    tree: QdTree,
    table: Table,
    min_block_size: Optional[int] = None,
    workload: Optional[Workload] = None,
    max_queries: int = 50,
) -> ValidationReport:
    """Check partition/completeness/size/routing invariants.

    Parameters
    ----------
    tree:
        The constructed qd-tree (frozen or not).
    table:
        The full dataset the layout was built for.
    min_block_size:
        ``b``; when given, every leaf's row count is checked against it.
    workload:
        When given, up to ``max_queries`` queries are checked for
        routing soundness (every matching row's block is routed).
    """
    violations: List[str] = []
    assignment = tree.route_table(table)
    columns = table.columns()

    leaf_ids = {leaf.node_id for leaf in tree.leaves()}
    stray = set(np.unique(assignment)) - leaf_ids
    is_partition = not stray
    if stray:
        violations.append(f"rows routed to non-leaf nodes: {sorted(stray)}")

    is_complete = True
    for leaf in tree.leaves():
        desc_mask = leaf.description.matches_rows(columns)
        routed_mask = assignment == leaf.node_id
        if not np.array_equal(desc_mask, routed_mask):
            is_complete = False
            extra = int((desc_mask & ~routed_mask).sum())
            missing = int((routed_mask & ~desc_mask).sum())
            violations.append(
                f"leaf {leaf.node_id} incomplete: {extra} matching rows "
                f"stored elsewhere, {missing} stored rows not matching"
            )

    meets_min = True
    if min_block_size is not None:
        ids, counts = np.unique(assignment, return_counts=True)
        sizes = dict(zip(ids.tolist(), counts.tolist()))
        for leaf in tree.leaves():
            size = sizes.get(leaf.node_id, 0)
            if 0 < size < min_block_size:
                meets_min = False
                violations.append(
                    f"leaf {leaf.node_id} has {size} rows < b={min_block_size}"
                )

    routing_sound = True
    if workload is not None:
        bids = tree.route_to_blocks(table)
        for query in list(workload)[:max_queries]:
            routed = set(tree.route_query(query.predicate))
            matches = query.predicate.evaluate(columns)
            needed = set(np.unique(bids[matches]).tolist())
            leaked = needed - routed
            if leaked:
                routing_sound = False
                violations.append(
                    f"query {query.name or query!r} misses blocks {sorted(leaked)}"
                )

    return ValidationReport(
        is_partition=is_partition,
        is_complete=is_complete,
        meets_min_block_size=meets_min,
        routing_sound=routing_sound,
        violations=violations,
    )
