"""Intervals and hypercubes: the range component of node descriptions.

Every qd-tree node logically owns a sub-space of the table's
N-dimensional domain (paper Sec. 3, Table 1: ``n.range``).  We model the
numeric part of that sub-space as a :class:`Hypercube` — a mapping from
numeric column name to :class:`Interval`, with explicit inclusive /
exclusive bounds so that both paper-style integer domains and real-
valued columns are handled exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from .predicates import ColumnPredicate, Op

__all__ = ["Interval", "Hypercube"]


@dataclass(frozen=True)
class Interval:
    """A (possibly unbounded) interval with inclusive/exclusive ends."""

    lo: float = -math.inf
    hi: float = math.inf
    lo_inclusive: bool = True
    hi_inclusive: bool = True

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"interval lo {self.lo} > hi {self.hi}")

    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True iff no value can lie in the interval."""
        if self.lo < self.hi:
            return False
        # lo == hi: non-empty only when both ends are inclusive.
        return not (self.lo_inclusive and self.hi_inclusive)

    def contains(self, value: float) -> bool:
        """Is ``value`` inside the interval?"""
        if value < self.lo or value > self.hi:
            return False
        if value == self.lo and not self.lo_inclusive:
            return False
        if value == self.hi and not self.hi_inclusive:
            return False
        return True

    def intersects(self, other: "Interval") -> bool:
        """Do the two intervals share at least one point?"""
        return not self.intersect(other).is_empty

    def intersect(self, other: "Interval") -> "Interval":
        """The intersection (may be empty; never raises)."""
        if self.lo > other.lo:
            lo, lo_inc = self.lo, self.lo_inclusive
        elif self.lo < other.lo:
            lo, lo_inc = other.lo, other.lo_inclusive
        else:
            lo, lo_inc = self.lo, self.lo_inclusive and other.lo_inclusive
        if self.hi < other.hi:
            hi, hi_inc = self.hi, self.hi_inclusive
        elif self.hi > other.hi:
            hi, hi_inc = other.hi, other.hi_inclusive
        else:
            hi, hi_inc = self.hi, self.hi_inclusive and other.hi_inclusive
        if lo > hi:
            return Interval.empty()
        return Interval(lo, hi, lo_inc, hi_inc)

    def contains_interval(self, other: "Interval") -> bool:
        """Does this interval fully contain ``other``?"""
        if other.is_empty:
            return True
        lo_ok = self.lo < other.lo or (
            self.lo == other.lo and (self.lo_inclusive or not other.lo_inclusive)
        )
        hi_ok = self.hi > other.hi or (
            self.hi == other.hi and (self.hi_inclusive or not other.hi_inclusive)
        )
        return lo_ok and hi_ok

    # ------------------------------------------------------------------

    @staticmethod
    def empty() -> "Interval":
        """The canonical empty interval."""
        return Interval(0.0, 0.0, False, False)

    @staticmethod
    def everything() -> "Interval":
        """The unbounded interval."""
        return Interval()

    @staticmethod
    def point(value: float) -> "Interval":
        """The degenerate interval ``[value, value]``."""
        return Interval(value, value, True, True)

    @staticmethod
    def from_predicate(pred: ColumnPredicate) -> "Interval":
        """The set of values satisfying a unary *range* predicate."""
        v = pred.value
        if pred.op is Op.LT:
            return Interval(hi=v, hi_inclusive=False)
        if pred.op is Op.LE:
            return Interval(hi=v, hi_inclusive=True)
        if pred.op is Op.GT:
            return Interval(lo=v, lo_inclusive=False)
        if pred.op is Op.GE:
            return Interval(lo=v, lo_inclusive=True)
        if pred.op is Op.EQ:
            return Interval.point(v)
        raise ValueError(f"predicate {pred!r} does not describe an interval")

    def __repr__(self) -> str:
        lo_b = "[" if self.lo_inclusive else "("
        hi_b = "]" if self.hi_inclusive else ")"
        return f"{lo_b}{self.lo}, {self.hi}{hi_b}"


class Hypercube:
    """Per-numeric-column intervals describing a node's range.

    Columns absent from the mapping are unbounded.  Hypercubes are
    immutable: restriction operations return new instances.
    """

    def __init__(self, intervals: Optional[Mapping[str, Interval]] = None) -> None:
        self._intervals: Dict[str, Interval] = dict(intervals or {})

    # ------------------------------------------------------------------

    def interval(self, column: str) -> Interval:
        """The interval for ``column`` (unbounded when untracked)."""
        return self._intervals.get(column, Interval.everything())

    def columns(self) -> Tuple[str, ...]:
        return tuple(self._intervals)

    @property
    def is_empty(self) -> bool:
        """True iff any dimension's interval is empty."""
        return any(iv.is_empty for iv in self._intervals.values())

    # ------------------------------------------------------------------

    def restrict(self, column: str, interval: Interval) -> "Hypercube":
        """A new hypercube with ``column`` narrowed by ``interval``."""
        merged = dict(self._intervals)
        merged[column] = self.interval(column).intersect(interval)
        return Hypercube(merged)

    def with_interval(self, column: str, interval: Interval) -> "Hypercube":
        """A new hypercube with ``column``'s interval *replaced*."""
        merged = dict(self._intervals)
        merged[column] = interval
        return Hypercube(merged)

    def intersects(self, other: "Hypercube") -> bool:
        """Do the two hypercubes overlap in every shared dimension?"""
        for column in set(self._intervals) | set(other._intervals):
            if not self.interval(column).intersects(other.interval(column)):
                return False
        return True

    def contains_point(self, point: Mapping[str, float]) -> bool:
        """Is the (partial) point inside the hypercube?

        Dimensions missing from ``point`` are treated as satisfied.
        """
        for column, interval in self._intervals.items():
            if column in point and not interval.contains(point[column]):
                return False
        return True

    def copy(self) -> "Hypercube":
        return Hypercube(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypercube):
            return NotImplemented
        cols = set(self._intervals) | set(other._intervals)
        return all(self.interval(c) == other.interval(c) for c in cols)

    def __repr__(self) -> str:
        parts = ", ".join(f"{c}: {iv!r}" for c, iv in sorted(self._intervals.items()))
        return f"Hypercube({parts})"
