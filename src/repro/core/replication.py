"""Full-copy data replication: the two-tree approach (paper Sec. 6.3).

A first tree ``T1`` is built for the whole workload; a second tree
``T2`` — a logical copy of the entire dataset — is then built with a
*modified objective*: for each query the best of the two trees is
chosen, so ``T2``'s construction is automatically steered toward the
queries ``T1`` serves poorly.  Optionally the pair is re-optimized
alternately until the (monotone, bounded) combined objective converges.

The module is construction-algorithm agnostic: it wraps any builder
with signature ``build(workload) -> QdTree`` and reweights/filters the
workload between rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from ..storage.table import Table
from .cost import leaf_sizes, per_query_accessed
from .tree import QdTree
from .workload import Workload

__all__ = ["TwoTreeLayout", "build_two_tree_layout", "combined_accessed"]

TreeBuilder = Callable[[Workload], QdTree]


@dataclass
class TwoTreeLayout:
    """A replicated layout: two trees over two full copies of the data.

    ``choice`` records, per query, which tree (0 or 1) serves it; the
    storage cost is exactly 2x.
    """

    trees: Tuple[QdTree, QdTree]
    choice: np.ndarray
    per_query: np.ndarray  # tuples accessed by the chosen tree

    def tree_for_query(self, query_index: int) -> QdTree:
        return self.trees[int(self.choice[query_index])]

    @property
    def total_accessed(self) -> int:
        return int(self.per_query.sum())


def combined_accessed(
    trees: Sequence[QdTree], workload: Workload, table: Table
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-query (best-tree index, tuples accessed by that tree).

    Implements the Sec. 6.3 objective: each query is served by
    whichever tree maximizes its skippability.
    """
    per_tree = []
    for tree in trees:
        sizes = leaf_sizes(tree, table)
        per_tree.append(per_query_accessed(tree, workload, sizes))
    stacked = np.stack(per_tree)  # (num_trees, num_queries)
    choice = stacked.argmin(axis=0)
    best = stacked.min(axis=0)
    return choice, best


def build_two_tree_layout(
    builder: TreeBuilder,
    workload: Workload,
    table: Table,
    refinement_rounds: int = 1,
    worst_fraction: float = 0.5,
) -> TwoTreeLayout:
    """Build ``T1`` on the full workload, then ``T2`` on the worst-served
    queries, optionally alternating (Sec. 6.3).

    Parameters
    ----------
    builder:
        Constructs a qd-tree for a given workload (greedy or RL).
    refinement_rounds:
        Additional alternate re-optimization rounds after the initial
        (T1, T2) pair; each round rebuilds one tree against the queries
        the *other* tree serves best, keeping the reward monotone.
    worst_fraction:
        Fraction of queries (by tuples accessed under the current other
        tree) used to focus the rebuilt tree.
    """
    if not 0.0 < worst_fraction <= 1.0:
        raise ValueError(f"worst_fraction must be in (0, 1], got {worst_fraction}")
    tree1 = builder(workload)

    def worst_queries(reference: QdTree) -> Workload:
        sizes = leaf_sizes(reference, table)
        accessed = per_query_accessed(reference, workload, sizes)
        order = np.argsort(-accessed)
        k = max(1, int(round(len(workload) * worst_fraction)))
        picked = sorted(order[:k])
        return Workload([workload[int(i)] for i in picked])

    tree2 = builder(worst_queries(tree1))
    trees: List[QdTree] = [tree1, tree2]

    best_choice, best_per_query = combined_accessed(trees, workload, table)
    best_total = int(best_per_query.sum())
    for round_index in range(refinement_rounds):
        # Alternate: rebuild tree (round % 2) against the other's weak set.
        rebuild = round_index % 2
        other = 1 - rebuild
        candidate = builder(worst_queries(trees[other]))
        trial = list(trees)
        trial[rebuild] = candidate
        choice, per_query = combined_accessed(trial, workload, table)
        total = int(per_query.sum())
        if total < best_total:
            trees = trial
            best_choice, best_per_query, best_total = choice, per_query, total
        else:
            # Objective is monotone and bounded; stop at the first
            # non-improving round (convergence, Sec. 6.3).
            break
    return TwoTreeLayout(
        trees=(trees[0], trees[1]),
        choice=best_choice,
        per_query=best_per_query,
    )
