"""Predicate AST: cuts, query filters, and their algebra.

The qd-tree framework works with *unary* predicates of the form
``(attr, op, literal)`` where ``op`` is a range comparison
(``<, <=, >, >=``) or an equality comparison (``=, IN``) — paper
Sec. 3.2 — plus *advanced cuts*: named arbitrary predicates such as the
binary filter ``l_shipdate < l_commitdate`` (Sec. 6.1).  Queries are
arbitrary conjunctions/disjunctions of these (Sec. 3.3).

All literals are in the *encoded* domain (dictionary codes for
categoricals); use :class:`~repro.storage.schema.Schema` helpers to
encode raw values.

Every predicate supports:

* :meth:`Predicate.evaluate` — vectorized evaluation over column arrays
  (used for routing data, Sec. 3.1);
* :meth:`Predicate.negate` — negation-normal-form complement (used to
  derive the right child of a cut and for conservative intersection);
* :meth:`Predicate.referenced_columns` — which columns a scan must read.
"""

from __future__ import annotations

import enum
from typing import Callable, FrozenSet, Iterable, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "Op",
    "Predicate",
    "ColumnPredicate",
    "AdvancedCut",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "column_lt",
    "column_le",
    "column_gt",
    "column_ge",
    "column_eq",
    "column_in",
    "conjunction",
    "disjunction",
]

ColumnData = Mapping[str, np.ndarray]


class Op(enum.Enum):
    """Comparison operators allowed in unary cuts (paper Sec. 3.2)."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "="
    IN = "IN"

    @property
    def is_range(self) -> bool:
        return self in (Op.LT, Op.LE, Op.GT, Op.GE)

    @property
    def is_equality(self) -> bool:
        return self in (Op.EQ, Op.IN)


class Predicate:
    """Abstract base for all predicate nodes."""

    def evaluate(self, columns: ColumnData) -> np.ndarray:
        """Boolean mask of rows satisfying the predicate."""
        raise NotImplementedError

    def negate(self) -> "Predicate":
        """The logical complement, in negation normal form."""
        raise NotImplementedError

    def referenced_columns(self) -> FrozenSet[str]:
        """Columns the predicate reads."""
        raise NotImplementedError

    def leaves(self) -> Tuple["Predicate", ...]:
        """All non-boolean leaf predicates in the tree."""
        return (self,)

    # Operator sugar so workloads read naturally in examples/tests.
    def __and__(self, other: "Predicate") -> "Predicate":
        return conjunction([self, other])

    def __or__(self, other: "Predicate") -> "Predicate":
        return disjunction([self, other])

    def __invert__(self) -> "Predicate":
        return self.negate()


class TruePredicate(Predicate):
    """The always-true predicate (the root cut-space)."""

    def evaluate(self, columns: ColumnData) -> np.ndarray:
        any_col = next(iter(columns.values()))
        return np.ones(len(any_col), dtype=bool)

    def negate(self) -> "Predicate":
        return Not(self)

    def referenced_columns(self) -> FrozenSet[str]:
        return frozenset()

    def leaves(self) -> Tuple[Predicate, ...]:
        return ()

    def __repr__(self) -> str:
        return "TRUE"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TruePredicate)

    def __hash__(self) -> int:
        return hash("TRUE")


class ColumnPredicate(Predicate):
    """A unary predicate ``(column, op, literal(s))``.

    ``values`` always holds encoded literals; exactly one for
    comparison ops, one or more for ``IN``.
    """

    __slots__ = ("column", "op", "values", "_value_set")

    def __init__(self, column: str, op: Op, values: Sequence[float]) -> None:
        if op is not Op.IN and len(values) != 1:
            raise ValueError(f"{op.value} takes exactly one literal")
        if op is Op.IN and len(values) == 0:
            raise ValueError("IN requires at least one literal")
        self.column = column
        self.op = op
        self.values: Tuple[float, ...] = tuple(float(v) for v in values)
        self._value_set = frozenset(self.values)

    @property
    def value(self) -> float:
        """The single literal of a comparison predicate."""
        return self.values[0]

    def evaluate(self, columns: ColumnData) -> np.ndarray:
        arr = columns[self.column]
        if self.op is Op.LT:
            return arr < self.value
        if self.op is Op.LE:
            return arr <= self.value
        if self.op is Op.GT:
            return arr > self.value
        if self.op is Op.GE:
            return arr >= self.value
        if self.op is Op.EQ:
            return arr == self.value
        # IN: vectorized membership against the literal list.
        return np.isin(arr, np.asarray(self.values))

    def negate(self) -> Predicate:
        flipped = {
            Op.LT: Op.GE,
            Op.LE: Op.GT,
            Op.GT: Op.LE,
            Op.GE: Op.LT,
        }
        if self.op in flipped:
            return ColumnPredicate(self.column, flipped[self.op], self.values)
        return Not(self)

    def referenced_columns(self) -> FrozenSet[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        if self.op is Op.IN:
            vals = ",".join(_fmt(v) for v in self.values)
            return f"{self.column} IN ({vals})"
        return f"{self.column} {self.op.value} {_fmt(self.value)}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnPredicate):
            return NotImplemented
        return (
            self.column == other.column
            and self.op == other.op
            and self._value_set == other._value_set
            and (self.op is Op.IN or self.values == other.values)
        )

    def __hash__(self) -> int:
        return hash((self.column, self.op, self._value_set))


class AdvancedCut(Predicate):
    """A named arbitrary predicate (binary filters, LIKE, UDFs).

    Paper Sec. 6.1: each workload declares up to ``|AC|`` advanced cuts
    a priori; nodes track per-cut possibility bits.  ``evaluator`` is
    the black-box row-set evaluator; ``index`` is the cut's slot in the
    per-node bit vectors and must be unique within a workload.
    """

    __slots__ = ("name", "index", "evaluator", "_columns", "positive")

    def __init__(
        self,
        name: str,
        index: int,
        evaluator: Callable[[ColumnData], np.ndarray],
        columns: Iterable[str] = (),
        positive: bool = True,
    ) -> None:
        self.name = name
        self.index = index
        self.evaluator = evaluator
        self._columns = frozenset(columns)
        self.positive = positive

    def evaluate(self, columns: ColumnData) -> np.ndarray:
        mask = np.asarray(self.evaluator(columns), dtype=bool)
        return mask if self.positive else ~mask

    def negate(self) -> Predicate:
        return AdvancedCut(
            self.name,
            self.index,
            self.evaluator,
            self._columns,
            positive=not self.positive,
        )

    def referenced_columns(self) -> FrozenSet[str]:
        return self._columns

    def __repr__(self) -> str:
        return f"AC{self.index}[{self.name}]" if self.positive else (
            f"NOT AC{self.index}[{self.name}]"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AdvancedCut):
            return NotImplemented
        return self.index == other.index and self.positive == other.positive

    def __hash__(self) -> int:
        return hash(("AC", self.index, self.positive))


class And(Predicate):
    """Conjunction of sub-predicates."""

    __slots__ = ("children",)

    def __init__(self, children: Sequence[Predicate]) -> None:
        if not children:
            raise ValueError("And requires at least one child")
        self.children: Tuple[Predicate, ...] = tuple(children)

    def evaluate(self, columns: ColumnData) -> np.ndarray:
        mask = self.children[0].evaluate(columns)
        for child in self.children[1:]:
            mask = mask & child.evaluate(columns)
        return mask

    def negate(self) -> Predicate:
        return Or([c.negate() for c in self.children])

    def referenced_columns(self) -> FrozenSet[str]:
        return frozenset().union(*(c.referenced_columns() for c in self.children))

    def leaves(self) -> Tuple[Predicate, ...]:
        out: Tuple[Predicate, ...] = ()
        for child in self.children:
            out = out + child.leaves()
        return out

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(c) for c in self.children) + ")"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, And):
            return NotImplemented
        return self.children == other.children

    def __hash__(self) -> int:
        return hash(("AND", self.children))


class Or(Predicate):
    """Disjunction of sub-predicates."""

    __slots__ = ("children",)

    def __init__(self, children: Sequence[Predicate]) -> None:
        if not children:
            raise ValueError("Or requires at least one child")
        self.children: Tuple[Predicate, ...] = tuple(children)

    def evaluate(self, columns: ColumnData) -> np.ndarray:
        mask = self.children[0].evaluate(columns)
        for child in self.children[1:]:
            mask = mask | child.evaluate(columns)
        return mask

    def negate(self) -> Predicate:
        return And([c.negate() for c in self.children])

    def referenced_columns(self) -> FrozenSet[str]:
        return frozenset().union(*(c.referenced_columns() for c in self.children))

    def leaves(self) -> Tuple[Predicate, ...]:
        out: Tuple[Predicate, ...] = ()
        for child in self.children:
            out = out + child.leaves()
        return out

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(c) for c in self.children) + ")"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Or):
            return NotImplemented
        return self.children == other.children

    def __hash__(self) -> int:
        return hash(("OR", self.children))


class Not(Predicate):
    """Negation wrapper for predicates with no flipped-operator form
    (``EQ``/``IN`` complements, ``TRUE``)."""

    __slots__ = ("child",)

    def __init__(self, child: Predicate) -> None:
        self.child = child

    def evaluate(self, columns: ColumnData) -> np.ndarray:
        return ~self.child.evaluate(columns)

    def negate(self) -> Predicate:
        return self.child

    def referenced_columns(self) -> FrozenSet[str]:
        return self.child.referenced_columns()

    def leaves(self) -> Tuple[Predicate, ...]:
        return self.child.leaves()

    def __repr__(self) -> str:
        return f"NOT ({self.child!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Not):
            return NotImplemented
        return self.child == other.child

    def __hash__(self) -> int:
        return hash(("NOT", self.child))


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------


def column_lt(column: str, value: float) -> ColumnPredicate:
    """``column < value``."""
    return ColumnPredicate(column, Op.LT, [value])


def column_le(column: str, value: float) -> ColumnPredicate:
    """``column <= value``."""
    return ColumnPredicate(column, Op.LE, [value])


def column_gt(column: str, value: float) -> ColumnPredicate:
    """``column > value``."""
    return ColumnPredicate(column, Op.GT, [value])


def column_ge(column: str, value: float) -> ColumnPredicate:
    """``column >= value``."""
    return ColumnPredicate(column, Op.GE, [value])


def column_eq(column: str, value: float) -> ColumnPredicate:
    """``column = value`` (encoded literal)."""
    return ColumnPredicate(column, Op.EQ, [value])


def column_in(column: str, values: Sequence[float]) -> ColumnPredicate:
    """``column IN (values...)`` (encoded literals)."""
    return ColumnPredicate(column, Op.IN, values)


def conjunction(predicates: Sequence[Predicate]) -> Predicate:
    """AND of predicates, flattening nested ANDs and dropping TRUE."""
    flat = []
    for p in predicates:
        if isinstance(p, TruePredicate):
            continue
        if isinstance(p, And):
            flat.extend(p.children)
        else:
            flat.append(p)
    if not flat:
        return TruePredicate()
    if len(flat) == 1:
        return flat[0]
    return And(flat)


def disjunction(predicates: Sequence[Predicate]) -> Predicate:
    """OR of predicates, flattening nested ORs."""
    flat = []
    for p in predicates:
        if isinstance(p, Or):
            flat.extend(p.children)
        else:
            flat.append(p)
    if not flat:
        raise ValueError("disjunction of no predicates")
    if len(flat) == 1:
        return flat[0]
    return Or(flat)


def _fmt(v: float) -> str:
    return str(int(v)) if float(v).is_integer() else f"{v:g}"
