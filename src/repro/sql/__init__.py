"""A small SQL front end for candidate-cut extraction (paper Sec. 3.4)."""

from .lexer import SqlSyntaxError, Token, TokenType, tokenize
from .parser import PredicateParser, like_to_regex, parse_predicate
from .planner import PlannedQuery, SqlPlanner

__all__ = [
    "PlannedQuery",
    "PredicateParser",
    "SqlPlanner",
    "SqlSyntaxError",
    "Token",
    "TokenType",
    "like_to_regex",
    "parse_predicate",
    "tokenize",
]
