"""Tokenizer for the SQL subset used by the predicate planner.

Supports what WHERE clauses in the paper's workloads need: identifiers
(optionally ``table.column`` qualified), numeric and single-quoted
string literals, comparison operators, parentheses, commas, and the
keywords ``SELECT FROM WHERE AND OR NOT IN BETWEEN LIKE``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

__all__ = ["TokenType", "Token", "tokenize", "SqlSyntaxError"]


class SqlSyntaxError(ValueError):
    """Raised on malformed SQL input."""


class TokenType(enum.Enum):
    """Lexeme categories produced by :func:`tokenize`."""

    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    STAR = "*"
    KEYWORD = "keyword"
    END = "end"


_KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "IN",
    "BETWEEN",
    "LIKE",
}

_OPERATORS = ("<=", ">=", "<>", "!=", "<", ">", "=")


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r})"


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; raises :class:`SqlSyntaxError` on bad input."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "(":
            tokens.append(Token(TokenType.LPAREN, ch, i))
            i += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenType.RPAREN, ch, i))
            i += 1
            continue
        if ch == ",":
            tokens.append(Token(TokenType.COMMA, ch, i))
            i += 1
            continue
        if ch == "*":
            tokens.append(Token(TokenType.STAR, ch, i))
            i += 1
            continue
        if ch == "'":
            j = i + 1
            buf = []
            while j < n:
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            else:
                raise SqlSyntaxError(f"unterminated string starting at {i}")
            tokens.append(Token(TokenType.STRING, "".join(buf), i))
            i = j + 1
            continue
        matched_op = None
        for op in _OPERATORS:
            if text.startswith(op, i):
                matched_op = op
                break
        if matched_op:
            tokens.append(Token(TokenType.OPERATOR, matched_op, i))
            i += len(matched_op)
            continue
        if ch.isdigit() or (
            ch in "+-." and i + 1 < n and (text[i + 1].isdigit() or text[i + 1] == ".")
        ):
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] in ".eE+-"):
                # Stop '+-' unless in exponent position.
                if text[j] in "+-" and text[j - 1] not in "eE":
                    break
                j += 1
            literal = text[i:j]
            try:
                float(literal)
            except ValueError:
                raise SqlSyntaxError(f"bad number {literal!r} at {i}") from None
            tokens.append(Token(TokenType.NUMBER, literal, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "._"):
                j += 1
            word = text[i:j]
            if word.upper() in _KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), i))
            else:
                tokens.append(Token(TokenType.IDENT, word, i))
            i = j
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token(TokenType.END, "", n))
    return tokens
