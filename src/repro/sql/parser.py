"""Recursive-descent parser for WHERE-clause predicates.

Produces :mod:`repro.core.predicates` trees bound to a schema: literals
are encoded through the schema's dictionaries at parse time, and
``LIKE`` patterns over categorical columns are compiled into ``IN``
predicates over the dictionary codes matching the pattern (this is how
a dictionary-encoded columnar store evaluates LIKE cheaply, and it
gives LIKE cuts exact semantic descriptions).

Grammar (standard precedence: OR < AND < NOT < comparison)::

    expr     := or_expr
    or_expr  := and_expr (OR and_expr)*
    and_expr := not_expr (AND not_expr)*
    not_expr := NOT not_expr | primary
    primary  := '(' expr ')' | comparison
    comparison := column op literal
                | literal op column          (flipped)
                | column [NOT] IN '(' literal (',' literal)* ')'
                | column BETWEEN literal AND literal
                | column [NOT] LIKE string
                | column op column           (advanced / binary cut)
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.predicates import (
    AdvancedCut,
    ColumnPredicate,
    Not,
    Predicate,
    column_eq,
    column_ge,
    column_gt,
    column_in,
    column_le,
    column_lt,
    conjunction,
    disjunction,
)
from ..storage.schema import Schema
from .lexer import SqlSyntaxError, Token, TokenType, tokenize

__all__ = ["PredicateParser", "parse_predicate", "like_to_regex"]

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}

_OP_BUILDERS: Dict[str, Callable[[str, float], ColumnPredicate]] = {
    "<": column_lt,
    "<=": column_le,
    ">": column_gt,
    ">=": column_ge,
    "=": column_eq,
}


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a SQL LIKE pattern (``%``/``_`` wildcards) to a regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE)


class PredicateParser:
    """Parses one predicate expression against a schema.

    Binary (column-vs-column) comparisons become
    :class:`~repro.core.predicates.AdvancedCut` instances; their
    indices are handed out by ``advanced_registry``, a dict shared
    across all queries of a workload so the same textual comparison
    always maps to the same advanced-cut slot.
    """

    def __init__(
        self,
        schema: Schema,
        advanced_registry: Optional[Dict[str, AdvancedCut]] = None,
    ) -> None:
        self.schema = schema
        self.advanced_registry = (
            advanced_registry if advanced_registry is not None else {}
        )
        self._tokens: List[Token] = []
        self._pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, token_type: TokenType, value: Optional[str] = None) -> Token:
        token = self._next()
        if token.type is not token_type or (value is not None and token.value != value):
            raise SqlSyntaxError(
                f"expected {value or token_type.name} at {token.position}, "
                f"got {token.value!r}"
            )
        return token

    def _accept_keyword(self, word: str) -> bool:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value == word:
            self._pos += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def parse(self, text: str) -> Predicate:
        """Parse ``text`` into a bound predicate tree."""
        self._tokens = tokenize(text)
        self._pos = 0
        pred = self._parse_or()
        if self._peek().type is not TokenType.END:
            token = self._peek()
            raise SqlSyntaxError(
                f"trailing input at {token.position}: {token.value!r}"
            )
        return pred

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------

    def _parse_or(self) -> Predicate:
        parts = [self._parse_and()]
        while self._accept_keyword("OR"):
            parts.append(self._parse_and())
        return disjunction(parts) if len(parts) > 1 else parts[0]

    def _parse_and(self) -> Predicate:
        parts = [self._parse_not()]
        while self._accept_keyword("AND"):
            parts.append(self._parse_not())
        return conjunction(parts) if len(parts) > 1 else parts[0]

    def _parse_not(self) -> Predicate:
        if self._accept_keyword("NOT"):
            return self._parse_not().negate()
        return self._parse_primary()

    def _parse_primary(self) -> Predicate:
        if self._peek().type is TokenType.LPAREN:
            self._next()
            pred = self._parse_or()
            self._expect(TokenType.RPAREN)
            return pred
        return self._parse_comparison()

    def _parse_comparison(self) -> Predicate:
        token = self._next()
        if token.type in (TokenType.NUMBER, TokenType.STRING):
            # literal op column — flip around.
            op_token = self._expect(TokenType.OPERATOR)
            column = self._column_name(self._expect(TokenType.IDENT))
            return self._build_comparison(
                column, _FLIP.get(op_token.value, op_token.value), token
            )
        if token.type is not TokenType.IDENT:
            raise SqlSyntaxError(
                f"expected column or literal at {token.position}, got {token.value!r}"
            )
        column = self._column_name(token)
        nxt = self._peek()
        if nxt.type is TokenType.KEYWORD and nxt.value in ("IN", "LIKE", "BETWEEN", "NOT"):
            self._next()
            negated = False
            if nxt.value == "NOT":
                inner = self._next()
                if inner.type is not TokenType.KEYWORD or inner.value not in (
                    "IN",
                    "LIKE",
                ):
                    raise SqlSyntaxError(
                        f"expected IN or LIKE after NOT at {inner.position}"
                    )
                negated = True
                keyword = inner.value
            else:
                keyword = nxt.value
            if keyword == "IN":
                pred = self._parse_in(column)
            elif keyword == "LIKE":
                pred = self._parse_like(column)
            else:
                pred = self._parse_between(column)
            return pred.negate() if negated else pred
        op_token = self._expect(TokenType.OPERATOR)
        operand = self._next()
        if operand.type is TokenType.IDENT:
            return self._advanced(column, op_token.value, self._column_name(operand))
        if operand.type not in (TokenType.NUMBER, TokenType.STRING):
            raise SqlSyntaxError(
                f"expected literal or column at {operand.position}"
            )
        return self._build_comparison(column, op_token.value, operand)

    # ------------------------------------------------------------------
    # Comparison builders
    # ------------------------------------------------------------------

    def _column_name(self, token: Token) -> str:
        """Strip an optional table qualifier (``R.a`` -> ``a``)."""
        name = token.value
        if "." in name:
            name = name.split(".")[-1]
        if name not in self.schema:
            raise SqlSyntaxError(
                f"unknown column {name!r} at {token.position}"
            )
        return name

    def _encode(self, column: str, token: Token) -> float:
        value: object
        if token.type is TokenType.NUMBER:
            value = float(token.value)
            if value.is_integer():
                # Dictionary keys for numeric-looking categoricals are
                # stored as ints.
                col = self.schema[column]
                if col.is_categorical:
                    value = int(value)
        else:
            value = token.value
        try:
            return self.schema.encode_literal(column, value)
        except KeyError:
            raise SqlSyntaxError(
                f"literal {value!r} not in dictionary of column {column!r}"
            ) from None

    def _build_comparison(self, column: str, op: str, token: Token) -> Predicate:
        encoded = self._encode(column, token)
        if op in ("<>", "!="):
            return Not(column_eq(column, encoded))
        builder = _OP_BUILDERS.get(op)
        if builder is None:
            raise SqlSyntaxError(f"unsupported operator {op!r}")
        col = self.schema[column]
        if col.is_categorical and op != "=":
            raise SqlSyntaxError(
                f"range operator {op!r} on categorical column {column!r}"
            )
        return builder(column, encoded)

    def _parse_in(self, column: str) -> Predicate:
        self._expect(TokenType.LPAREN)
        values = [self._encode(column, self._next_literal())]
        while self._peek().type is TokenType.COMMA:
            self._next()
            values.append(self._encode(column, self._next_literal()))
        self._expect(TokenType.RPAREN)
        return column_in(column, values)

    def _next_literal(self) -> Token:
        token = self._next()
        if token.type not in (TokenType.NUMBER, TokenType.STRING):
            raise SqlSyntaxError(f"expected literal at {token.position}")
        return token

    def _parse_between(self, column: str) -> Predicate:
        lo = self._encode(column, self._next_literal())
        if not self._accept_keyword("AND"):
            raise SqlSyntaxError("expected AND in BETWEEN")
        hi = self._encode(column, self._next_literal())
        return conjunction([column_ge(column, lo), column_le(column, hi)])

    def _parse_like(self, column: str) -> Predicate:
        pattern_token = self._next()
        if pattern_token.type is not TokenType.STRING:
            raise SqlSyntaxError(
                f"LIKE requires a string pattern at {pattern_token.position}"
            )
        col = self.schema[column]
        if not col.is_categorical:
            raise SqlSyntaxError(
                f"LIKE on non-categorical column {column!r} is unsupported"
            )
        assert col.dictionary is not None
        regex = like_to_regex(pattern_token.value)
        codes = [
            col.dictionary.encode(value)
            for value in col.dictionary.values()
            if isinstance(value, str) and regex.match(value)
        ]
        if not codes:
            # No dictionary value matches: an always-false IN would be
            # invalid, so emit a contradiction on the column instead.
            return conjunction(
                [column_lt(column, 0), column_ge(column, 0)]
            )
        return column_in(column, codes)

    def _advanced(self, left: str, op: str, right: str) -> Predicate:
        """A binary column-vs-column comparison as an advanced cut."""
        key = f"{left} {op} {right}"
        cut = self.advanced_registry.get(key)
        if cut is not None:
            return cut
        comparators: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
            "<": np.less,
            "<=": np.less_equal,
            ">": np.greater,
            ">=": np.greater_equal,
            "=": np.equal,
        }
        compare = comparators.get(op)
        if compare is None:
            raise SqlSyntaxError(f"unsupported binary operator {op!r}")

        def evaluator(
            columns: Dict[str, np.ndarray],
            _l: str = left,
            _r: str = right,
            _cmp: Callable[[np.ndarray, np.ndarray], np.ndarray] = compare,
        ) -> np.ndarray:
            return _cmp(columns[_l], columns[_r])

        cut = AdvancedCut(
            name=key,
            index=len(self.advanced_registry),
            evaluator=evaluator,
            columns=(left, right),
        )
        self.advanced_registry[key] = cut
        return cut


def parse_predicate(
    text: str,
    schema: Schema,
    advanced_registry: Optional[Dict[str, AdvancedCut]] = None,
) -> Predicate:
    """One-shot convenience wrapper around :class:`PredicateParser`."""
    return PredicateParser(schema, advanced_registry).parse(text)
