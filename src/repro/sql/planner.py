"""The "standard SQL planner" of paper Sec. 3.4.

Given workload queries as SQL text, the planner parses each statement,
pushes the WHERE clause down into a bound predicate tree, and exposes
the set of unary predicates (plus advanced cuts) as candidate cuts.

Only the subset needed by the paper is implemented::

    SELECT <cols|*> FROM <table> WHERE <predicate>

The planner is stateful across queries so that identical binary
comparisons share one advanced-cut slot.  Because that state (the
advanced-cut registry and the embedded parser) is shared, :meth:`plan`
serializes callers behind a re-entrant lock and memoizes repeated
statement texts — the serving tier (:mod:`repro.serve`) re-plans the
same statements from many threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cuts import CutRegistry
from ..core.predicates import AdvancedCut
from ..core.workload import Query, Workload
from ..storage.schema import Schema
from .lexer import SqlSyntaxError, TokenType, tokenize
from .parser import PredicateParser

__all__ = ["PlannedQuery", "SqlPlanner"]


@dataclass(frozen=True)
class PlannedQuery:
    """Result of planning one statement."""

    query: Query
    table_name: str
    projection: Tuple[str, ...]


class SqlPlanner:
    """Plans SQL statements into :class:`~repro.core.workload.Query`
    objects and collects candidate cuts across a workload."""

    #: Bound on the statement memo (FIFO eviction) so a long-lived
    #: planner fed ad-hoc statements cannot grow without limit.
    MEMO_CAP = 16384

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.advanced_registry: Dict[str, AdvancedCut] = {}
        self._parser = PredicateParser(schema, self.advanced_registry)
        self._lock = threading.RLock()
        self._memo: "OrderedDict[Tuple[str, str, str], PlannedQuery]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------

    def plan(self, sql: str, name: str = "", template: str = "") -> PlannedQuery:
        """Plan one ``SELECT ... FROM ... WHERE ...`` statement.

        Thread-safe; repeated statements (same text/name/template) hit
        a memo instead of re-parsing, so re-planning a served workload
        is cheap and never grows the advanced-cut registry.
        """
        key = (sql, name, template)
        with self._lock:
            hit = self._memo.get(key)
            if hit is not None:
                return hit
            planned = self._plan_uncached(sql, name=name, template=template)
            self._memo[key] = planned
            while len(self._memo) > self.MEMO_CAP:
                self._memo.popitem(last=False)
            return planned

    def _plan_uncached(
        self, sql: str, name: str = "", template: str = ""
    ) -> PlannedQuery:
        tokens = tokenize(sql)
        pos = 0

        def expect_keyword(word: str) -> None:
            nonlocal pos
            token = tokens[pos]
            if token.type is not TokenType.KEYWORD or token.value != word:
                raise SqlSyntaxError(
                    f"expected {word} at {token.position}, got {token.value!r}"
                )
            pos += 1

        expect_keyword("SELECT")
        projection: List[str] = []
        star = False
        while True:
            token = tokens[pos]
            if token.type is TokenType.STAR:
                star = True
                pos += 1
            elif token.type is TokenType.IDENT:
                column = token.value.split(".")[-1]
                if column not in self.schema:
                    raise SqlSyntaxError(
                        f"unknown projected column {column!r} at {token.position}"
                    )
                projection.append(column)
                pos += 1
            else:
                raise SqlSyntaxError(f"bad projection at {token.position}")
            if tokens[pos].type is TokenType.COMMA:
                pos += 1
                continue
            break
        expect_keyword("FROM")
        table_token = tokens[pos]
        if table_token.type is not TokenType.IDENT:
            raise SqlSyntaxError(f"expected table name at {table_token.position}")
        pos += 1
        expect_keyword("WHERE")
        # Hand the remainder of the original text to the predicate
        # parser (token positions index into the original string).
        where_text = sql[tokens[pos].position :]
        predicate = self._parser.parse(where_text)
        columns: Tuple[str, ...]
        if star:
            columns = self.schema.column_names
        else:
            columns = tuple(projection)
        query = Query(
            predicate=predicate,
            name=name or sql.strip(),
            template=template,
            columns=columns,
        )
        return PlannedQuery(
            query=query, table_name=table_token.value, projection=columns
        )

    def plan_workload(
        self, statements: Sequence[str], template_names: Optional[Sequence[str]] = None
    ) -> Workload:
        """Plan many statements into a workload."""
        queries = []
        for i, sql in enumerate(statements):
            template = template_names[i] if template_names else ""
            queries.append(self.plan(sql, name=f"q{i}", template=template).query)
        return Workload(queries)

    def candidate_cuts(self, workload: Workload) -> CutRegistry:
        """The Sec. 3.4 cut set: all pushed-down unary predicates plus
        the advanced cuts discovered while planning."""
        return CutRegistry.from_workload(self.schema, workload)
