"""Woodblock: the deep-RL agent that learns to construct qd-trees.

Implements paper Sec. 5.2.  The tree-construction MDP treats every node
as an independent state (the NeuroCuts-style decomposition of
Sec. 5.2.4): an episode constructs one complete tree by popping nodes
off an exploration queue, sampling a legal cut from the policy, and
pushing the resulting children.  When a node has no legal cuts — both
children must keep at least ``b`` (sample-scaled) records, Sec. 5.2.1 —
it becomes a leaf.

After an episode, every action taken at node ``n`` receives the
normalized reward ``R = S(n) / (|W| * |n.records|)`` (Sec. 5.2.2) where
``S(n)`` is the number of skipped (record, query) pairs under ``n``'s
subtree, and PPO updates the policy.  The best tree seen (by sample
scan ratio) is tracked continuously, so a layout can be deployed at any
time/compute budget — the anytime behaviour behind paper Fig. 8.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.cuts import CutRegistry
from ..core.greedy import _affected_queries, _queries_referencing
from ..core.tree import QdTree
from ..core.workload import Workload
from ..storage.schema import Schema
from ..storage.table import Table
from .featurize import Featurizer
from .network import PolicyValueNet
from .ppo import PPOConfig, PPOTrainer, masked_sample

__all__ = ["WoodblockConfig", "LearningCurvePoint", "WoodblockResult", "Woodblock"]


@dataclass
class WoodblockConfig:
    """Agent configuration.

    ``min_leaf_size`` is ``b`` expressed in *sample* rows (callers
    using a sample of ratio ``s`` pass ``max(1, round(b * s))``).
    """

    min_leaf_size: int
    episodes: int = 200
    time_budget_seconds: Optional[float] = None
    hidden_dim: int = 512
    seed: int = 0
    allow_small_children: bool = False
    episodes_per_update: int = 4
    ppo: PPOConfig = field(default_factory=PPOConfig)


@dataclass(frozen=True)
class LearningCurvePoint:
    """One point of the Fig.-8-style learning curve."""

    episode: int
    elapsed_seconds: float
    episode_scan_ratio: float
    best_scan_ratio: float


@dataclass
class WoodblockResult:
    """Training outcome: the deployed tree plus diagnostics."""

    best_tree: QdTree
    best_scan_ratio: float
    curve: List[LearningCurvePoint]
    episodes_run: int
    update_stats: List[Dict[str, float]]


class _Transition:
    """One (state, action) record awaiting its episode-end reward."""

    __slots__ = ("features", "action", "mask", "log_prob", "value", "node_id")

    def __init__(
        self,
        features: np.ndarray,
        action: int,
        mask: np.ndarray,
        log_prob: float,
        value: float,
        node_id: int,
    ) -> None:
        self.features = features
        self.action = action
        self.mask = mask
        self.log_prob = log_prob
        self.value = value
        self.node_id = node_id


@dataclass
class EpisodeResult:
    """One constructed tree plus its learning signals."""

    tree: QdTree
    transitions: List["_Transition"]
    rewards: np.ndarray
    scan_ratio: float


class Woodblock:
    """The deep RL qd-tree constructor."""

    def __init__(
        self,
        schema: Schema,
        registry: CutRegistry,
        sample: Table,
        workload: Workload,
        config: WoodblockConfig,
    ) -> None:
        if len(registry) == 0:
            raise ValueError("candidate cut set is empty")
        if config.min_leaf_size < 1:
            raise ValueError("min_leaf_size must be >= 1")
        self.schema = schema
        self.registry = registry
        self.sample = sample
        self.workload = workload
        self.config = config
        self.featurizer = Featurizer(schema, registry)
        self.net = PolicyValueNet(
            self.featurizer.dim,
            num_actions=len(registry),
            hidden_dim=config.hidden_dim,
            seed=config.seed,
        )
        self.trainer = PPOTrainer(self.net, config.ppo)
        self.rng = np.random.default_rng(config.seed)
        # Cut outcomes over the sample are reused by every episode.
        self._cut_masks = registry.evaluate_all(sample.columns(), sample.num_rows)
        self._by_column, self._by_adv = _queries_referencing(workload)
        self._num_queries = len(workload)

    # ------------------------------------------------------------------
    # Legality (stopping condition, Sec. 5.2.1)
    # ------------------------------------------------------------------

    def legal_actions(self, sample_indices: np.ndarray) -> np.ndarray:
        """Mask of cuts whose children both meet the size constraint."""
        mask, _, _ = self._legal_actions_with_sizes(sample_indices)
        return mask

    def _legal_actions_with_sizes(
        self, sample_indices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(legal mask, left sizes, right sizes) per candidate cut."""
        size = len(sample_indices)
        left_sizes = self._cut_masks[:, sample_indices].sum(axis=1)
        right_sizes = size - left_sizes
        b = self.config.min_leaf_size
        if self.config.allow_small_children:
            # Sec. 6.2 relaxation: one child may fall below b.
            mask = (
                (left_sizes >= 1)
                & (right_sizes >= 1)
                & (np.maximum(left_sizes, right_sizes) >= b)
            )
        else:
            mask = (left_sizes >= b) & (right_sizes >= b)
        return mask, left_sizes, right_sizes

    # ------------------------------------------------------------------
    # Episodes
    # ------------------------------------------------------------------

    def run_episode(self, deterministic: bool = False) -> EpisodeResult:
        """Construct one tree and compute its rewards."""
        tree = QdTree(self.schema, self.registry)
        tree.attach_sample(self.sample)
        root_hits = np.array(
            [tree.root.description.may_match(q.predicate) for q in self.workload],
            dtype=bool,
        )
        transitions: List[_Transition] = []
        # node_id -> #queries that intersect the node (for leaf rewards).
        hit_counts: Dict[int, int] = {}
        queue: List[Tuple[int, np.ndarray]] = [(0, root_hits)]
        while queue:
            node_id, hits = queue.pop(0)
            node = tree.node(node_id)
            indices = node.sample_indices
            assert indices is not None
            mask, left_sizes, right_sizes = self._legal_actions_with_sizes(indices)
            if not mask.any():
                hit_counts[node_id] = int(hits.sum())
                continue
            cut_state = np.empty(2 * len(self.registry))
            cut_state[0::2] = left_sizes > 0
            cut_state[1::2] = right_sizes > 0
            features = self.featurizer.featurize(node.description, cut_state)
            logits, values = self.net.forward(features[None, :])
            if deterministic:
                masked = np.where(mask, logits[0], -np.inf)
                action = int(masked.argmax())
                log_prob = 0.0
            else:
                action, log_prob = masked_sample(logits[0], mask, self.rng)
            cut = self.registry.cut(action)
            left, right = tree.apply_cut(node, cut)
            left_desc, right_desc = left.description, right.description
            left_hits = hits.copy()
            right_hits = hits.copy()
            for qi in _affected_queries(cut, self._by_column, self._by_adv):
                if not hits[qi]:
                    continue
                pred = self.workload[qi].predicate
                left_hits[qi] = left_desc.may_match(pred)
                right_hits[qi] = right_desc.may_match(pred)
            transitions.append(
                _Transition(
                    features, action, mask, log_prob, float(values[0]), node_id
                )
            )
            queue.append((left.node_id, left_hits))
            queue.append((right.node_id, right_hits))

        skips = self._subtree_skips(tree, hit_counts)
        total = self.sample.num_rows * self._num_queries
        scan_ratio = 1.0 - (skips[0] / total if total else 0.0)
        tree.assign_block_ids()
        rewards = self._rewards(tree, transitions, skips)
        return EpisodeResult(
            tree=tree, transitions=transitions, rewards=rewards, scan_ratio=scan_ratio
        )

    def _subtree_skips(
        self, tree: QdTree, leaf_hit_counts: Dict[int, int]
    ) -> Dict[int, int]:
        """Per-node S(n) from cached leaf hit counts (Sec. 5.2.2)."""
        skips: Dict[int, int] = {}
        # Children always have larger ids than their parent, so one
        # reverse pass computes every subtree sum.
        for node in reversed(tree.nodes()):
            if node.is_leaf:
                assert node.sample_indices is not None
                size = len(node.sample_indices)
                missed = self._num_queries - leaf_hit_counts.get(node.node_id, 0)
                skips[node.node_id] = size * missed
            else:
                assert node.left is not None and node.right is not None
                skips[node.node_id] = (
                    skips[node.left.node_id] + skips[node.right.node_id]
                )
        return skips

    def _rewards(
        self, tree: QdTree, transitions: List[_Transition], skips: Dict[int, int]
    ) -> np.ndarray:
        """R((n, p)) = S(n) / (|W| * |n.records|) per transition."""
        rewards = np.empty(len(transitions))
        for i, tr in enumerate(transitions):
            node = tree.node(tr.node_id)
            assert node.sample_indices is not None
            size = max(len(node.sample_indices), 1)
            rewards[i] = skips[tr.node_id] / (self._num_queries * size)
        return rewards

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------

    def train(
        self,
        episodes: Optional[int] = None,
        time_budget_seconds: Optional[float] = None,
    ) -> WoodblockResult:
        """Run episodes until the episode count or time budget is hit.

        Either limit may be given here or in the config; the tighter
        one wins.  Returns the best tree found (the paper deploys the
        best tree after the budget expires).
        """
        max_episodes = episodes if episodes is not None else self.config.episodes
        budget = (
            time_budget_seconds
            if time_budget_seconds is not None
            else self.config.time_budget_seconds
        )
        start = time.perf_counter()
        best_tree: Optional[QdTree] = None
        best_ratio = float("inf")
        curve: List[LearningCurvePoint] = []
        update_stats: List[Dict[str, float]] = []
        pending: List[EpisodeResult] = []
        episodes_run = 0
        for episode in range(max_episodes):
            if budget is not None and time.perf_counter() - start > budget:
                break
            result = self.run_episode()
            episodes_run += 1
            if result.scan_ratio < best_ratio:
                best_ratio = result.scan_ratio
                best_tree = result.tree
            curve.append(
                LearningCurvePoint(
                    episode=episode,
                    elapsed_seconds=time.perf_counter() - start,
                    episode_scan_ratio=result.scan_ratio,
                    best_scan_ratio=best_ratio,
                )
            )
            pending.append(result)
            if len(pending) >= self.config.episodes_per_update:
                stats = self._update(pending)
                if stats is not None:
                    update_stats.append(stats)
                pending = []
        if pending:
            stats = self._update(pending)
            if stats is not None:
                update_stats.append(stats)
        if best_tree is None:
            # No episodes ran (zero budget); fall back to one
            # deterministic rollout of the untrained policy.
            fallback = self.run_episode(deterministic=True)
            best_tree, best_ratio = fallback.tree, fallback.scan_ratio
            episodes_run += 1
        return WoodblockResult(
            best_tree=best_tree,
            best_scan_ratio=best_ratio,
            curve=curve,
            episodes_run=episodes_run,
            update_stats=update_stats,
        )

    def _update(self, episodes: List[EpisodeResult]) -> Optional[Dict[str, float]]:
        """One PPO update from a batch of completed episodes."""
        all_transitions: List[_Transition] = []
        all_rewards: List[np.ndarray] = []
        for result in episodes:
            if not result.transitions:
                continue
            all_transitions.extend(result.transitions)
            all_rewards.append(result.rewards)
        if not all_transitions:
            return None
        states = np.stack([t.features for t in all_transitions])
        actions = np.array([t.action for t in all_transitions], dtype=np.int64)
        masks = np.stack([t.mask for t in all_transitions])
        old_log_probs = np.array([t.log_prob for t in all_transitions])
        old_values = np.array([t.value for t in all_transitions])
        rewards = np.concatenate(all_rewards)
        return self.trainer.update(
            states, actions, masks, old_log_probs, rewards, old_values, self.rng
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def save_policy(self, path: str) -> None:
        """Persist the current policy/value network weights (npz)."""
        np.savez_compressed(path, **self.net.state_dict())

    def load_policy(self, path: str) -> None:
        """Restore weights saved by :meth:`save_policy`.

        The agent must have been constructed with the same schema,
        registry and hidden size (the state shapes must match).
        """
        with np.load(path) as data:
            self.net.load_state_dict({key: data[key] for key in data.files})
