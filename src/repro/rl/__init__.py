"""Woodblock: deep reinforcement learning for qd-tree construction.

A from-scratch PPO implementation (the paper uses Ray RLlib; this
substrate is pure numpy) plus the tree-construction MDP, featurizer and
training loop of paper Sec. 5.
"""

from .featurize import Featurizer
from .network import Adam, Linear, PolicyValueNet
from .ppo import PPOConfig, PPOTrainer, masked_log_softmax, masked_sample
from .woodblock import (
    EpisodeResult,
    LearningCurvePoint,
    Woodblock,
    WoodblockConfig,
    WoodblockResult,
)

__all__ = [
    "Adam",
    "EpisodeResult",
    "Featurizer",
    "LearningCurvePoint",
    "Linear",
    "PPOConfig",
    "PPOTrainer",
    "PolicyValueNet",
    "Woodblock",
    "WoodblockConfig",
    "WoodblockResult",
    "masked_log_softmax",
    "masked_sample",
]
