"""State featurization for the Woodblock agent (paper Sec. 5.2.3).

Each MDP state is a qd-tree node; its feature vector is built from the
node's semantic description:

* per numeric column: the interval bounds, normalized into ``[0, 1]``
  by the column's domain (the paper binary-encodes integer bounds; for
  float-valued domains a normalized continuous encoding carries the
  same information into the first dense layer);
* per categorical column: the raw ``|Dom|``-bit categorical mask;
* per advanced cut: the ``(may_true, may_false)`` possibility bits;
* per candidate cut: two bits ``(may_true, may_false)`` describing
  whether the node's sub-space straddles the cut — giving the policy a
  direct view of which actions still discriminate (the "special
  treatment of categorical predicates in featurization" the paper
  alludes to, generalized to all cuts).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from ..core.cuts import CutRegistry
from ..core.node import NodeDescription
from ..storage.schema import Schema

__all__ = ["Featurizer"]


class Featurizer:
    """Maps :class:`NodeDescription` states to fixed-size vectors."""

    def __init__(self, schema: Schema, registry: CutRegistry) -> None:
        self.schema = schema
        self.registry = registry
        self._numeric = [c.name for c in schema.numeric_columns]
        self._categorical = [
            (c.name, c.domain_size) for c in schema.categorical_columns
        ]
        self._domains: Dict[str, Tuple[float, float]] = {}
        for col in schema.numeric_columns:
            if col.domain is not None:
                self._domains[col.name] = (float(col.domain[0]), float(col.domain[1]))
        self.num_advanced = registry.num_advanced_cuts
        self.num_cuts = len(registry)
        self.dim = (
            2 * len(self._numeric)
            + sum(size for _, size in self._categorical)
            + 2 * self.num_advanced
            + 2 * self.num_cuts
        )

    def _normalize(self, column: str, value: float, default: float) -> float:
        if not math.isfinite(value):
            return default
        domain = self._domains.get(column)
        if domain is None:
            return default
        lo, hi = domain
        if hi <= lo:
            return default
        return min(max((value - lo) / (hi - lo), 0.0), 1.0)

    def featurize(
        self,
        description: NodeDescription,
        cut_state: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The feature vector for one node description.

        ``cut_state`` optionally supplies the per-cut
        ``(may_true, may_false)`` bits (shape ``(2 * num_cuts,)``).
        The agent passes data-driven bits derived from its precomputed
        cut-outcome matrix (does the node hold records on each side of
        the cut?), which is both faster and sharper than re-deriving
        them from the description; standalone callers may omit it and
        pay for the description-based computation.
        """
        parts: List[np.ndarray] = []
        bounds = np.empty(2 * len(self._numeric))
        for i, name in enumerate(self._numeric):
            interval = description.hypercube.interval(name)
            bounds[2 * i] = self._normalize(name, interval.lo, 0.0)
            bounds[2 * i + 1] = self._normalize(name, interval.hi, 1.0)
        parts.append(bounds)
        for name, size in self._categorical:
            mask = description.categorical_masks.get(name)
            if mask is None:
                parts.append(np.ones(size))
            else:
                parts.append(mask.astype(np.float64))
        if self.num_advanced:
            parts.append(description.adv_true.astype(np.float64))
            parts.append(description.adv_false.astype(np.float64))
        if self.num_cuts:
            if cut_state is not None:
                if len(cut_state) != 2 * self.num_cuts:
                    raise ValueError(
                        f"cut_state must have length {2 * self.num_cuts}"
                    )
                parts.append(np.asarray(cut_state, dtype=np.float64))
            else:
                straddle = np.empty(2 * self.num_cuts)
                for ci, cut in enumerate(self.registry.cuts):
                    straddle[2 * ci] = 1.0 if description._may(cut, True) else 0.0
                    straddle[2 * ci + 1] = (
                        1.0 if description._may(cut, False) else 0.0
                    )
                parts.append(straddle)
        vec = np.concatenate(parts)
        assert len(vec) == self.dim
        return vec

    def featurize_batch(self, descriptions: List[NodeDescription]) -> np.ndarray:
        """Stack features for several nodes."""
        return np.stack([self.featurize(d) for d in descriptions])
