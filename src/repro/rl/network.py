"""A small neural network library in pure numpy.

Implements exactly what Woodblock needs (paper Sec. 5.2.3): a shared
trunk of two fully-connected layers with 512 units and ReLU
activations, a policy head (``|A|``-way linear projection) and a value
head (scalar projection), trained with Adam.  Forward passes cache
activations; backward passes accumulate parameter gradients and return
input gradients, so the PPO loss can drive learning without any
autograd framework.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Linear", "Adam", "PolicyValueNet"]


class Linear:
    """A fully-connected layer ``y = x @ W + b``."""

    def __init__(
        self, in_dim: int, out_dim: int, rng: np.random.Generator, scale: float = 1.0
    ) -> None:
        # Orthogonal-ish init: scaled Xavier keeps early logits small.
        limit = scale * np.sqrt(2.0 / (in_dim + out_dim))
        self.weight = rng.uniform(-limit, limit, size=(in_dim, out_dim))
        self.bias = np.zeros(out_dim)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._input is not None, "forward must run before backward"
        self.grad_weight += self._input.T @ grad_out
        self.grad_bias += grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    def zero_grad(self) -> None:
        self.grad_weight[...] = 0.0
        self.grad_bias[...] = 0.0

    def parameters(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """(parameter, gradient) pairs."""
        return [(self.weight, self.grad_weight), (self.bias, self.grad_bias)]


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_backward(grad_out: np.ndarray, pre_activation: np.ndarray) -> np.ndarray:
    return grad_out * (pre_activation > 0.0)


class Adam:
    """The Adam optimizer over a list of (param, grad) pairs."""

    def __init__(
        self,
        parameters: Sequence[Tuple[np.ndarray, np.ndarray]],
        learning_rate: float = 3e-4,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.parameters = list(parameters)
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m = [np.zeros_like(p) for p, _ in self.parameters]
        self._v = [np.zeros_like(p) for p, _ in self.parameters]
        self._t = 0

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, (param, grad) in enumerate(self.parameters):
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad**2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


class PolicyValueNet:
    """Shared-trunk policy/value network (paper Sec. 5.2.3).

    Two 512-unit ReLU layers shared by both heads; the policy head is a
    linear projection to ``num_actions`` logits, the value head a
    scalar projection.
    """

    def __init__(
        self,
        input_dim: int,
        num_actions: int,
        hidden_dim: int = 512,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.input_dim = input_dim
        self.num_actions = num_actions
        self.fc1 = Linear(input_dim, hidden_dim, rng)
        self.fc2 = Linear(hidden_dim, hidden_dim, rng)
        self.policy_head = Linear(hidden_dim, num_actions, rng, scale=0.1)
        self.value_head = Linear(hidden_dim, 1, rng, scale=0.1)
        self._cache: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------

    def forward(self, states: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Returns (logits ``(N, A)``, values ``(N,)``)."""
        states = np.atleast_2d(states)
        z1 = self.fc1.forward(states)
        h1 = relu(z1)
        z2 = self.fc2.forward(h1)
        h2 = relu(z2)
        logits = self.policy_head.forward(h2)
        values = self.value_head.forward(h2)[:, 0]
        self._cache = {"z1": z1, "z2": z2}
        return logits, values

    def backward(self, grad_logits: np.ndarray, grad_values: np.ndarray) -> None:
        """Backpropagate loss gradients w.r.t. logits and values."""
        grad_h2 = self.policy_head.backward(grad_logits)
        grad_h2 += self.value_head.backward(grad_values[:, None])
        grad_z2 = relu_backward(grad_h2, self._cache["z2"])
        grad_h1 = self.fc2.backward(grad_z2)
        grad_z1 = relu_backward(grad_h1, self._cache["z1"])
        self.fc1.backward(grad_z1)

    def zero_grad(self) -> None:
        for layer in (self.fc1, self.fc2, self.policy_head, self.value_head):
            layer.zero_grad()

    def parameters(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        params: List[Tuple[np.ndarray, np.ndarray]] = []
        for layer in (self.fc1, self.fc2, self.policy_head, self.value_head):
            params.extend(layer.parameters())
        return params

    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameters (for checkpointing best policies)."""
        out = {}
        for i, layer in enumerate(
            (self.fc1, self.fc2, self.policy_head, self.value_head)
        ):
            out[f"w{i}"] = layer.weight.copy()
            out[f"b{i}"] = layer.bias.copy()
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for i, layer in enumerate(
            (self.fc1, self.fc2, self.policy_head, self.value_head)
        ):
            layer.weight[...] = state[f"w{i}"]
            layer.bias[...] = state[f"b{i}"]
