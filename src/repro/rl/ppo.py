"""Proximal Policy Optimization with action masking (paper Sec. 5.2).

The paper uses PPO [Schulman et al. 2017] "as a black-box subroutine";
this module is that subroutine, implemented directly in numpy against
:class:`~repro.rl.network.PolicyValueNet`:

* clipped surrogate policy objective,
* squared-error value loss,
* entropy bonus over the *legal* action set,
* advantage normalization,
* minibatched multi-epoch updates with Adam.

Illegal actions (cuts whose children would violate the minimum block
size, Sec. 5.2.1) are masked to ``-inf`` logits, so sampling,
log-probabilities and entropy all respect the legality constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .network import Adam, PolicyValueNet

__all__ = ["PPOConfig", "PPOTrainer", "masked_log_softmax", "masked_sample"]

_NEG_INF = -1e9


def masked_log_softmax(logits: np.ndarray, masks: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax restricted to legal actions.

    Illegal entries come back as a very negative number (never exactly
    ``-inf`` so downstream arithmetic stays NaN-free).
    """
    masked = np.where(masks, logits, _NEG_INF)
    shifted = masked - masked.max(axis=1, keepdims=True)
    exp = np.exp(shifted) * masks
    denom = exp.sum(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.maximum(denom, 1e-30))
    return np.where(masks, log_probs, _NEG_INF)


def masked_sample(
    logits: np.ndarray, mask: np.ndarray, rng: np.random.Generator
) -> Tuple[int, float]:
    """Sample one action from a single masked logit row.

    Returns ``(action, log_prob)``.
    """
    log_probs = masked_log_softmax(logits[None, :], mask[None, :])[0]
    probs = np.exp(np.where(mask, log_probs, _NEG_INF))
    probs = probs / probs.sum()
    action = int(rng.choice(len(probs), p=probs))
    return action, float(log_probs[action])


@dataclass
class PPOConfig:
    """PPO hyperparameters (defaults follow common practice)."""

    learning_rate: float = 3e-4
    clip_ratio: float = 0.2
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    epochs: int = 4
    minibatch_size: int = 128
    max_grad_norm: float = 0.5
    normalize_advantages: bool = True


class PPOTrainer:
    """Runs clipped-PPO updates on a policy/value network."""

    def __init__(self, net: PolicyValueNet, config: Optional[PPOConfig] = None) -> None:
        self.net = net
        self.config = config or PPOConfig()
        self.optimizer = Adam(net.parameters(), learning_rate=self.config.learning_rate)

    # ------------------------------------------------------------------

    def update(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        masks: np.ndarray,
        old_log_probs: np.ndarray,
        rewards: np.ndarray,
        old_values: np.ndarray,
        rng: np.random.Generator,
    ) -> Dict[str, float]:
        """One PPO update over a batch of transitions.

        The tree-structured MDP treats every node as an independent
        one-step state (Sec. 5.2.4), so the return of a transition is
        its immediate normalized reward and the advantage is
        ``reward - V(s)``.
        """
        states = np.atleast_2d(states)
        n = len(states)
        advantages = rewards - old_values
        if self.config.normalize_advantages and n > 1:
            std = advantages.std()
            advantages = (advantages - advantages.mean()) / (std + 1e-8)
        stats = {"policy_loss": 0.0, "value_loss": 0.0, "entropy": 0.0, "updates": 0.0}
        batch = max(1, min(self.config.minibatch_size, n))
        for _ in range(self.config.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                step_stats = self._minibatch_step(
                    states[idx],
                    actions[idx],
                    masks[idx],
                    old_log_probs[idx],
                    advantages[idx],
                    rewards[idx],
                )
                for key in ("policy_loss", "value_loss", "entropy"):
                    stats[key] += step_stats[key]
                stats["updates"] += 1.0
        if stats["updates"]:
            for key in ("policy_loss", "value_loss", "entropy"):
                stats[key] /= stats["updates"]
        return stats

    # ------------------------------------------------------------------

    def _minibatch_step(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        masks: np.ndarray,
        old_log_probs: np.ndarray,
        advantages: np.ndarray,
        returns: np.ndarray,
    ) -> Dict[str, float]:
        cfg = self.config
        n = len(states)
        logits, values = self.net.forward(states)
        log_probs = masked_log_softmax(logits, masks)
        probs = np.where(masks, np.exp(log_probs), 0.0)
        taken_log_probs = log_probs[np.arange(n), actions]
        ratios = np.exp(np.clip(taken_log_probs - old_log_probs, -20.0, 20.0))

        unclipped = ratios * advantages
        clipped = np.clip(ratios, 1.0 - cfg.clip_ratio, 1.0 + cfg.clip_ratio) * (
            advantages
        )
        policy_loss = -np.minimum(unclipped, clipped).mean()

        value_errors = values - returns
        value_loss = (value_errors**2).mean()

        safe_log = np.where(masks, log_probs, 0.0)
        entropies = -(probs * safe_log).sum(axis=1)
        entropy = entropies.mean()

        # ---- gradients ------------------------------------------------
        # Policy gradient flows only where the unclipped term is active.
        active = np.where(
            advantages >= 0.0,
            ratios <= 1.0 + cfg.clip_ratio,
            ratios >= 1.0 - cfg.clip_ratio,
        )
        dlogp_taken = -(advantages * ratios * active) / n
        onehot = np.zeros_like(log_probs)
        onehot[np.arange(n), actions] = 1.0
        grad_logits = dlogp_taken[:, None] * (onehot - probs)

        # Entropy bonus: d(-c*H)/dlogits = c * p * (log p + H).
        ent_grad = probs * (safe_log + entropies[:, None])
        grad_logits += (cfg.entropy_coef / n) * ent_grad

        grad_values = cfg.value_coef * 2.0 * value_errors / n

        self.net.zero_grad()
        self.net.backward(grad_logits, grad_values)
        self._clip_gradients()
        self.optimizer.step()
        return {
            "policy_loss": float(policy_loss),
            "value_loss": float(value_loss),
            "entropy": float(entropy),
        }

    def _clip_gradients(self) -> None:
        total = 0.0
        grads = [g for _, g in self.net.parameters()]
        for g in grads:
            total += float((g**2).sum())
        norm = np.sqrt(total)
        limit = self.config.max_grad_norm
        if limit and norm > limit:
            scale = limit / (norm + 1e-8)
            for g in grads:
                g *= scale
