"""The unified database facade: tables, layouts-as-versioned-artifacts
and serving behind one coherent API.

:class:`Database` owns the whole lifecycle the rest of the codebase
used to stitch by hand::

    db = Database.from_table(table, min_block_size=1000)
    handle = db.build_layout("greedy", workload=statements)   # gen 1
    other  = db.build_layout("kdtree", activate=False)        # gen 2
    result = db.execute("SELECT * FROM t WHERE x < 10")       # cached
    with db.serve(shards=4, partition="subtree") as service:
        service.run_closed_loop(statements, repeat=20)
    with db.serve_multi([handle, other]) as multi:            # arbiter
        multi.execute_sql("SELECT * FROM t WHERE x < 10").winner
    db.ingest(batch)          # routes through the learned tree, gen 3
    db.swap_layout(other)     # activate the k-d tree layout
    db.save(path); db2 = Database.open(path)

Three ideas hold it together:

* **Strategies** — layouts are built through the string-keyed
  :mod:`~repro.db.registry` (``greedy``, ``woodblock``, ``kdtree``,
  ``hash``, ``range``, ``random``, ``bottom_up``, plus anything
  registered at runtime), so every builder shares one entry point.
* **Generations** — every built (or re-ingested) layout is stamped
  with a monotonically increasing generation number, persisted through
  the catalog.  A generation names an *immutable* (store, tree) pair.
* **Result cache** — a generation-keyed
  :class:`~repro.serve.result_cache.ResultCache` is shared by the
  library execution path (:meth:`execute`) and every serving facade
  :meth:`serve` hands out.  Because entries are keyed by generation
  and the active generation changes on :meth:`ingest` /
  :meth:`swap_layout` (which also purge other generations' entries),
  a stale result can never be served.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.ingest import IngestionPipeline
from ..core.router import QueryRouter
from ..core.tree import QdTree
from ..core.workload import Workload
from ..core.cuts import CutRegistry
from ..engine.executor import ScanEngine
from ..engine.profiles import SPARK_PARQUET, CostProfile
from ..exec import QueryPipeline, ServeResult, single_layout_pipeline
from ..serve import (
    DEFAULT_CACHE_BUDGET,
    LayoutService,
    MultiLayoutService,
    ResultCache,
    ShardedLayoutService,
)
from ..sql.planner import SqlPlanner
from ..storage.blocks import Block, BlockStore
from ..adapt.arbiter import LearnedArbiter
from ..adapt.reoptimize import AdaptPolicy
from ..adapt.service import AdaptiveService
from ..adapt.signature import WorkloadSignature
from ..storage.catalog import (
    SIGNATURE_KEY,
    layout_tree_path,
    load_layout_meta,
    load_store,
    load_table,
    save_layout_meta,
    save_store,
    save_table,
)
from ..storage.table import Table
from .registry import BuildContext, get_strategy

__all__ = ["Database", "LayoutHandle"]

#: Subdirectory ``save(include_table=True)`` keeps the logical table in
#: (the layout artifacts live flat in the directory, CLI-compatible).
_TABLE_DIR = "table"


@dataclass(eq=False)
class LayoutHandle:
    """One built layout: a versioned, immutable (store, tree) artifact.

    Handles are what :meth:`Database.build_layout` returns and what
    :meth:`Database.serve` / :meth:`Database.swap_layout` accept; the
    ``generation`` stamp is the identity the result cache keys on.
    """

    generation: int
    strategy: str
    store: BlockStore
    tree: Optional[QdTree]
    build_seconds: float = 0.0
    num_advanced_cuts: int = 0
    #: The SQL statements the build workload was planned from (empty
    #: when the layout was built from a pre-planned Workload object or
    #: is workload-oblivious); required to persist a tree layout.
    statements: Tuple[str, ...] = ()
    diagnostics: Optional[object] = None
    label: str = ""
    #: Normalized template/filter-column histogram of the build
    #: workload (``None`` for workload-oblivious layouts) — the drift
    #: detector's baseline, persisted through the catalog.
    workload_signature: Optional[WorkloadSignature] = None
    # Lazily-built library-path execution helpers (one engine/router/
    # pipeline per handle; serving facades build their own).
    _engine: Optional[ScanEngine] = field(
        default=None, repr=False, compare=False
    )
    _router: Optional[QueryRouter] = field(
        default=None, repr=False, compare=False
    )
    _pipeline: Optional[QueryPipeline] = field(
        default=None, repr=False, compare=False
    )

    @property
    def num_blocks(self) -> int:
        return self.store.num_blocks

    def engine(self, profile: CostProfile = SPARK_PARQUET) -> ScanEngine:
        """This handle's (uncached-read) scan engine, built on demand."""
        if self._engine is None or self._engine.profile is not profile:
            self._engine = ScanEngine(
                self.store, profile, num_advanced_cuts=self.num_advanced_cuts
            )
        return self._engine

    def router(self) -> Optional[QueryRouter]:
        """This handle's query router (``None`` for tree-less layouts)."""
        if self.tree is not None and self._router is None:
            self._router = QueryRouter(self.tree)
        return self._router

    def __repr__(self) -> str:
        return (
            f"LayoutHandle(gen={self.generation}, "
            f"strategy={self.strategy!r}, blocks={self.num_blocks}, "
            f"rows={self.store.logical_rows})"
        )


class Database:
    """A table, its versioned layouts, and the serving tier over them.

    Parameters
    ----------
    table:
        The logical table (``None`` for layout-only databases restored
        by :meth:`open` without a persisted table — those can serve
        and swap but not build or ingest).
    min_block_size:
        Default block-size floor ``b`` for :meth:`build_layout`.
    planner:
        Optional pre-existing planner; by default a fresh
        :class:`SqlPlanner` is created.  All layouts of one database
        share the planner so advanced-cut slot indices stay aligned
        across builds and serving.
    """

    def __init__(
        self,
        table: Optional[Table],
        min_block_size: int = 1000,
        planner: Optional[SqlPlanner] = None,
        schema=None,
    ) -> None:
        if table is None and schema is None:
            raise ValueError("Database needs a table or a schema")
        self.table = table
        self.schema = schema if schema is not None else table.schema
        self.min_block_size = min_block_size
        self.planner = (
            planner if planner is not None else SqlPlanner(self.schema)
        )
        self.result_cache = ResultCache()
        self._lock = threading.Lock()
        self._generation = 0
        self._layouts: List[LayoutHandle] = []
        self._active: Optional[LayoutHandle] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_table(
        cls, table: Table, min_block_size: int = 1000
    ) -> "Database":
        """A database over an in-memory table (no layout yet)."""
        return cls(table, min_block_size=min_block_size)

    @classmethod
    def open(cls, path) -> "Database":
        """Restore a database from a directory written by :meth:`save`
        (or by ``repro.cli build`` — the formats are the same).

        The layout's build workload is re-planned through a fresh
        planner so advanced-cut slot indices line up with the saved
        tree's registry.
        """
        from pathlib import Path

        path = Path(path)
        meta = load_layout_meta(path)
        store = load_store(path)
        table: Optional[Table] = None
        if (path / _TABLE_DIR / "table.npz").exists():
            table = load_table(path / _TABLE_DIR)
        planner = SqlPlanner(store.schema)
        statements = tuple(meta.get("queries") or ())
        registry: Optional[CutRegistry] = None
        num_advanced = 0
        signature: Optional[WorkloadSignature] = None
        if statements:
            workload = planner.plan_workload(list(statements))
            registry = planner.candidate_cuts(workload)
            num_advanced = registry.num_advanced_cuts
            # Fallback baseline for layouts saved before signatures
            # were persisted: recompute from the build statements.
            signature = WorkloadSignature.from_queries(workload)
        if meta.get(SIGNATURE_KEY):
            signature = WorkloadSignature.from_json(meta[SIGNATURE_KEY])
        tree: Optional[QdTree] = None
        tree_path = layout_tree_path(path)
        if tree_path.exists():
            if registry is None:
                raise ValueError(
                    f"layout at {path} has a tree but no build queries "
                    f"in its metadata; cannot rebind tree cuts"
                )
            tree = QdTree.load(str(tree_path), store.schema, registry)
        generation = int(meta.get("generation", 1))
        strategy = str(meta.get("strategy") or meta.get("method") or "unknown")
        db = cls(
            table,
            min_block_size=int(meta.get("min_block_size", 1000)),
            planner=planner,
            schema=store.schema,
        )
        handle = LayoutHandle(
            generation=generation,
            strategy=strategy,
            store=store,
            tree=tree,
            num_advanced_cuts=num_advanced,
            statements=statements,
            label=str(meta.get("label", strategy)),
            workload_signature=signature,
        )
        db._generation = generation
        db._layouts.append(handle)
        db._active = handle
        return db

    def save(self, path, layout: Optional[LayoutHandle] = None,
             include_table: bool = False) -> None:
        """Persist a layout (default: the active one) to a directory.

        Writes the block store, the qd-tree (when present) and the
        metadata document — strategy name, generation, block-size
        floor and build statements — through the canonical
        :mod:`repro.storage.catalog` artifact names, so the CLI and
        :meth:`open` read the same format.  ``include_table=True``
        additionally persists the logical table (needed if the
        reopened database should build new layouts or ingest).
        """
        handle = self._resolve(layout)
        if handle.tree is not None and not handle.statements:
            raise ValueError(
                "cannot persist a tree layout built from a pre-planned "
                "Workload: the tree's cuts cannot be rebound on load; "
                "build from SQL statements to save"
            )
        from pathlib import Path

        path = Path(path)
        save_store(handle.store, path)
        if handle.tree is not None:
            handle.tree.save(str(layout_tree_path(path)))
        meta: Dict[str, object] = {
            # "method" kept alongside "strategy" so pre-facade
            # readers of layout-meta.json keep working.
            "method": handle.strategy,
            "strategy": handle.strategy,
            "generation": handle.generation,
            "label": handle.label or handle.strategy,
            "min_block_size": self.min_block_size,
            "num_blocks": handle.store.num_blocks,
            "queries": list(handle.statements),
        }
        if handle.workload_signature is not None:
            meta[SIGNATURE_KEY] = handle.workload_signature.to_json()
        save_layout_meta(path, meta)
        if include_table:
            if self.table is None:
                raise ValueError("no logical table to persist")
            save_table(self.table, path / _TABLE_DIR)

    # ------------------------------------------------------------------
    # Layout lifecycle
    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        """The active layout's generation (0 before any build)."""
        return self._active.generation if self._active else 0

    @property
    def active_layout(self) -> Optional[LayoutHandle]:
        return self._active

    def layouts(self) -> Tuple[LayoutHandle, ...]:
        """Every layout built or opened by this database, oldest first."""
        return tuple(self._layouts)

    def _next_generation(self) -> int:
        with self._lock:
            self._generation += 1
            return self._generation

    def _resolve(self, layout: Optional[LayoutHandle]) -> LayoutHandle:
        handle = layout if layout is not None else self._active
        if handle is None:
            raise ValueError(
                "no layout yet: call build_layout() first "
                "(or pass layout=...)"
            )
        return handle

    def _plan_workload(
        self, workload: Union[Workload, Sequence[str], None]
    ) -> Tuple[Optional[Workload], Tuple[str, ...]]:
        """Accept SQL statements or a pre-planned Workload."""
        if workload is None:
            return None, ()
        if isinstance(workload, Workload):
            return workload, ()
        statements = tuple(workload)
        if not all(isinstance(s, str) for s in statements):
            raise ValueError(
                "workload must be a Workload or a sequence of SQL strings"
            )
        return self.planner.plan_workload(list(statements)), statements

    def build_layout(
        self,
        strategy: str = "greedy",
        workload: Union[Workload, Sequence[str], None] = None,
        min_block_size: Optional[int] = None,
        sample_ratio: Optional[float] = None,
        sample_seed: int = 0,
        registry: Optional[CutRegistry] = None,
        label: Optional[str] = None,
        activate: bool = True,
        **options,
    ) -> LayoutHandle:
        """Build a layout through the strategy registry.

        ``workload`` may be SQL statements (planned through the
        database's shared planner and kept for persistence) or an
        already-planned :class:`Workload`; workload-oblivious
        strategies accept ``None``.  ``sample_ratio`` learns tree
        strategies on a row sample with the block-size floor scaled
        accordingly (Sec. 5.2.1).  Extra keyword ``options`` go to the
        strategy adapter (e.g. ``episodes=``/``seed=`` for woodblock,
        ``column=`` for range).  The new layout receives the next
        generation number; ``activate=True`` (default) makes it the
        database's serving layout and purges result-cache entries of
        other generations.
        """
        if self.table is None:
            raise ValueError(
                "this database has no logical table (opened layout-only); "
                "cannot build new layouts"
            )
        b = min_block_size if min_block_size is not None else self.min_block_size
        planned, statements = self._plan_workload(workload)
        if registry is None and planned is not None:
            registry = self.planner.candidate_cuts(planned)
        if sample_ratio is None:
            sample, sample_b = self.table, b
        else:
            rng = np.random.default_rng(sample_seed)
            sample = self.table.sample(sample_ratio, rng)
            sample_b = max(1, round(b * sample_ratio))
        impl = get_strategy(strategy)
        ctx = BuildContext(
            schema=self.schema,
            table=self.table,
            sample=sample,
            min_block_size=b,
            sample_block_size=sample_b,
            workload=planned,
            registry=registry,
            options=dict(options),
        )
        t0 = time.perf_counter()
        built = impl.build(ctx)
        build_seconds = time.perf_counter() - t0
        if built.tree is not None:
            bids = built.tree.freeze(self.table)
            store = BlockStore.from_assignment(
                self.table, bids, descriptions=built.tree.leaf_descriptions()
            )
        else:
            assert built.assignment is not None
            store = BlockStore.from_assignment(self.table, built.assignment)
        handle = LayoutHandle(
            generation=self._next_generation(),
            strategy=strategy,
            store=store,
            tree=built.tree,
            build_seconds=build_seconds,
            num_advanced_cuts=(
                registry.num_advanced_cuts if registry is not None else 0
            ),
            statements=statements,
            diagnostics=built.diagnostics,
            label=label or strategy,
            workload_signature=(
                WorkloadSignature.from_queries(planned)
                if planned is not None
                else None
            ),
        )
        with self._lock:
            self._layouts.append(handle)
        if activate:
            self.swap_layout(handle)
        return handle

    def swap_layout(self, handle: LayoutHandle) -> LayoutHandle:
        """Make ``handle`` the active serving layout.

        Changing the active generation purges result-cache entries of
        every other generation — lookups are generation-keyed anyway,
        so this is memory hygiene, and together they guarantee a swap
        can never surface a stale result.

        Thread-safety (the adapt loop swaps from a background thread
        while queries are in flight): the lifecycle mutation and the
        purge happen under the database lock, and the lock ordering is
        strictly ``Database._lock`` → ``ResultCache._lock`` — the hot
        query path takes only the cache lock, so the two can never
        deadlock.  A query racing the swap on the *old* generation may
        re-publish an old-generation cache entry after the purge;
        that entry is unreachable from the new generation's lookups
        (keys carry the generation) and still bit-correct if that
        generation is ever swapped back in (generations name immutable
        stores), so a stale result remains structurally impossible —
        ``tests/test_db_differential.py`` races swaps against hot
        queries to prove it.
        """
        with self._lock:
            if handle not in self._layouts:
                raise ValueError("unknown layout handle (not built here)")
            self._active = handle
            self.result_cache.retain(handle.generation)
        return handle

    def drop_layout(self, handle: LayoutHandle) -> None:
        """Forget a non-active layout, releasing its store.

        Generations are immutable but not free: every ingest produces
        a new merged store, and a long-running ingest loop would
        otherwise keep every superseded generation's blocks reachable
        forever.  Dropping the active layout is refused (swap first);
        the handle's cached result-cache entries, if any, are purged.
        """
        with self._lock:
            if handle is self._active:
                raise ValueError(
                    "cannot drop the active layout; swap first"
                )
            try:
                self._layouts.remove(handle)
            except ValueError:
                raise ValueError(
                    "unknown layout handle (not built here)"
                ) from None
            if self._active is not None:
                self.result_cache.retain(self._active.generation)

    def ingest(
        self, batch: Table, segment_rows: Optional[int] = None
    ) -> LayoutHandle:
        """Route ``batch`` through the active layout's learned tree and
        merge it into the store — producing a NEW generation.

        This is the paper's Problem 2: the frozen qd-tree is the
        learned partitioning function, evaluated through
        :class:`~repro.core.ingest.IngestionPipeline`.  The active
        handle's store is never mutated (generations are immutable);
        instead a new handle with a merged store and the next
        generation number is built, activated, and returned — which
        also invalidates all cached results of older generations.
        """
        active = self._resolve(None)
        if active.tree is None:
            raise ValueError(
                f"ingest needs a tree-backed layout (active strategy "
                f"{active.strategy!r} has no learned partitioning function)"
            )
        pipeline = IngestionPipeline(
            active.tree,
            segment_rows=segment_rows or max(1, batch.num_rows),
        )
        # route(), not ingest(): the merge below materializes blocks
        # itself, so the pipeline's per-leaf segment buffers would be
        # a dead second copy of the batch.
        bids = pipeline.route(batch)
        store = active.store
        base = store.logical_rows
        descriptions = active.tree.leaf_descriptions()
        merged: Dict[int, Block] = {}
        for bid in np.unique(bids):
            bid = int(bid)
            mask = bids == bid
            rows = batch.filter(mask)
            new_ids = base + np.flatnonzero(mask)
            if bid in store:
                old = store.block(bid)
                table = old.to_table().concat(rows)
                ids: Optional[np.ndarray]
                if old.row_ids is not None:
                    ids = np.concatenate([old.row_ids, new_ids])
                else:
                    ids = None
                description = old.description
            else:
                table = rows
                ids = new_ids
                description = descriptions.get(bid)
            if ids is not None:
                ids.setflags(write=False)
            merged[bid] = Block(
                bid, table, description=description, row_ids=ids
            )
        blocks = [
            merged.get(block.block_id, block) for block in store
        ] + [merged[bid] for bid in sorted(merged) if bid not in store]
        new_store = BlockStore(
            self.schema, blocks, logical_rows=base + batch.num_rows
        )
        if self.table is not None:
            self.table = self.table.concat(batch)
        handle = LayoutHandle(
            generation=self._next_generation(),
            strategy=active.strategy,
            store=new_store,
            tree=active.tree,
            num_advanced_cuts=active.num_advanced_cuts,
            statements=active.statements,
            label=active.label,
            workload_signature=active.workload_signature,
        )
        with self._lock:
            self._layouts.append(handle)
        self.swap_layout(handle)
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _pipeline_for(self, handle: LayoutHandle) -> QueryPipeline:
        """The handle's library-path pipeline, built on demand.

        One :func:`~repro.exec.pipeline.single_layout_pipeline`
        configuration per handle — the same stages every serving
        facade runs, wired to the database's shared planner and
        generation-keyed result cache, minus the metrics/scheduler a
        live service adds.
        """
        if handle._pipeline is None:
            handle._pipeline = single_layout_pipeline(
                planner=self.planner,
                engine=handle.engine(),
                router=handle.router(),
                store=handle.store,
                result_cache=self.result_cache,
                generation=handle.generation,
            )
        return handle._pipeline

    def execute(
        self, sql: str, layout: Optional[LayoutHandle] = None
    ) -> ServeResult:
        """Execute one statement on the caller's thread (library path).

        Runs the shared :class:`~repro.exec.pipeline.QueryPipeline`:
        routes through the layout's tree when it has one (memoized per
        predicate), consults and populates the generation-keyed result
        cache, and returns the same
        :class:`~repro.exec.pipeline.ServeResult` a serving facade
        would.
        """
        return self._pipeline_for(self._resolve(layout)).execute(sql)

    def collect_row_ids(
        self, sql: str, layout: Optional[LayoutHandle] = None
    ) -> np.ndarray:
        """Matched original-table row ids for one statement (sorted,
        deduped, memoized in the cache's byte-bounded row-id store);
        requires row-id provenance on the layout's blocks."""
        return self._pipeline_for(self._resolve(layout)).collect_row_ids(sql)

    def _resolve_result_cache(
        self, result_cache: Union[bool, ResultCache]
    ) -> Optional[ResultCache]:
        """``True`` -> the database's shared cache, ``False``/``None``
        -> no caching, an instance -> that private cache."""
        if result_cache is True:
            return self.result_cache
        if result_cache is False or result_cache is None:
            return None
        return result_cache

    def serve(
        self,
        layout: Optional[LayoutHandle] = None,
        shards: int = 1,
        partition: str = "rr",
        profile: CostProfile = SPARK_PARQUET,
        cache_budget_bytes: Optional[int] = DEFAULT_CACHE_BUDGET,
        max_workers: int = 4,
        queue_depth: int = 64,
        result_cache: Union[bool, ResultCache] = True,
        admission: str = "lru",
        record_sink: Optional[object] = None,
        tracer: Optional[object] = None,
        **kwargs,
    ):
        """Stand up the serving tier over a layout (default: active).

        ``shards=1`` returns a :class:`LayoutService`; ``shards>1`` a
        scatter-gather :class:`ShardedLayoutService` (``max_workers``
        then sizes each shard's pool).  Both share the database's
        planner and — unless ``result_cache=False`` — its
        generation-keyed result cache, stamped with the layout's
        generation (pass a :class:`ResultCache` instance instead of
        ``True`` to give the service a private cache, e.g. for
        like-for-like benchmark comparisons).  ``admission`` picks the
        buffer-pool admission policy (``"lru"`` or ``"lfu"``) and
        ``record_sink`` (e.g. a :class:`~repro.adapt.log.QueryLog`)
        observes every served query, and ``tracer`` (a
        :class:`~repro.obs.trace.Tracer`) records one per-stage trace
        per served query.  Close the service when done (both are
        context managers).
        """
        handle = self._resolve(layout)
        rc = self._resolve_result_cache(result_cache)
        if shards > 1:
            return ShardedLayoutService(
                handle.store,
                handle.tree,
                num_shards=shards,
                partition=partition,
                profile=profile,
                num_advanced_cuts=handle.num_advanced_cuts,
                cache_budget_bytes=cache_budget_bytes,
                max_workers_per_shard=max_workers,
                queue_depth=queue_depth,
                planner=self.planner,
                result_cache=rc,
                generation=handle.generation,
                admission=admission,
                record_sink=record_sink,
                tracer=tracer,
                **kwargs,
            )
        if kwargs:
            # The sharded branch forwards extras (coordinator_workers,
            # ...); silently swallowing them here would make typos and
            # shard-only options look like they took effect.
            raise TypeError(
                "unknown serve() options for unsharded serving: "
                + ", ".join(sorted(kwargs))
            )
        return LayoutService(
            handle.store,
            handle.tree,
            profile=profile,
            num_advanced_cuts=handle.num_advanced_cuts,
            cache_budget_bytes=cache_budget_bytes,
            max_workers=max_workers,
            queue_depth=queue_depth,
            planner=self.planner,
            result_cache=rc,
            generation=handle.generation,
            admission=admission,
            record_sink=record_sink,
            tracer=tracer,
        )

    def serve_multi(
        self,
        layouts: Optional[Sequence[LayoutHandle]] = None,
        profile: CostProfile = SPARK_PARQUET,
        cache_budget_bytes: Optional[int] = DEFAULT_CACHE_BUDGET,
        max_workers: int = 4,
        queue_depth: int = 64,
        result_cache: Union[bool, ResultCache] = True,
        arbiter: Union[str, object] = "static",
        record_sink: Optional[object] = None,
        tracer: Optional[object] = None,
    ) -> MultiLayoutService:
        """Serve the table under several layouts, cheapest layout wins.

        ``layouts`` defaults to every layout of this database holding
        the **current data version** — superseded pre-ingest
        generations are excluded, because a layout missing ingested
        rows would not merely be slower, it would return wrong
        results (and the arbiter would even *prefer* it: fewer rows
        means fewer surviving blocks).  Passing an explicit mix of
        data versions raises for the same reason.  Each query is
        routed against every candidate layout's qd-tree, scored with
        the blocks-surviving × bytes-scanned cost model, and executed
        on the argmin layout; per-layout win counts appear in
        ``service.snapshot().layout_wins``.  The result cache (shared
        with the database by default, same semantics as
        :meth:`serve`) keys entries on the winning layout's
        generation.  Close the service when done (context manager).

        ``arbiter`` selects the arbitration policy: ``"static"`` (the
        lexicographic argmin), ``"learned"`` (a fresh ε-greedy
        :class:`~repro.adapt.arbiter.LearnedArbiter` folding realized
        costs back into the decision), or a policy instance of your
        own.  ``record_sink`` (e.g. a
        :class:`~repro.adapt.log.QueryLog`) observes every served
        query.
        """
        with self._lock:
            known = list(self._layouts)
            active = self._active
        current_rows = active.store.logical_rows if active else None
        if layouts is not None:
            handles = list(layouts)
        else:
            handles = [
                h for h in known if h.store.logical_rows == current_rows
            ]
        if not handles:
            raise ValueError(
                "no layouts to serve: call build_layout() first "
                "(or pass layouts=[...])"
            )
        for handle in handles:
            if handle not in known:
                raise ValueError("unknown layout handle (not built here)")
        row_counts = {h.store.logical_rows for h in handles}
        if len(row_counts) > 1:
            raise ValueError(
                "layouts hold different data versions "
                f"(logical row counts {sorted(row_counts)}); arbitrating "
                "across them would serve stale results — rebuild the "
                "stale layouts on the current table first"
            )
        rc = self._resolve_result_cache(result_cache)
        if arbiter == "static":
            policy = None
        elif arbiter == "learned":
            policy = LearnedArbiter()
        else:
            policy = arbiter  # a caller-supplied policy instance
        return MultiLayoutService(
            handles,
            profile=profile,
            cache_budget_bytes=cache_budget_bytes,
            max_workers=max_workers,
            queue_depth=queue_depth,
            planner=self.planner,
            result_cache=rc,
            arbiter_policy=policy,
            record_sink=record_sink,
            tracer=tracer,
        )

    def auto_adapt(
        self,
        policy: Optional[AdaptPolicy] = None,
        profile: CostProfile = SPARK_PARQUET,
        cache_budget_bytes: Optional[int] = DEFAULT_CACHE_BUDGET,
        max_workers: int = 4,
        queue_depth: int = 64,
        admission: str = "lru",
        result_cache: Union[bool, ResultCache] = True,
        tracer: Optional[object] = None,
    ) -> AdaptiveService:
        """Serve the active layout with online drift adaptation.

        Returns an :class:`~repro.adapt.service.AdaptiveService`: a
        :class:`LayoutService` front whose query stream feeds a
        :class:`~repro.adapt.log.QueryLog`; when the live mix diverges
        from the layout's build-time workload signature past
        ``policy.threshold``, a candidate layout is rebuilt from the
        logged window in a background thread, evaluated offline on the
        blocks-scanned cost model, and — if it wins by
        ``policy.min_improvement`` — installed through
        :meth:`swap_layout` (new generation, cache purge) with the
        serving path hot-swapped onto it.  Results stay bit-identical
        throughout; only the work to produce them shrinks.
        ``result_cache`` has :meth:`serve` semantics (``True`` = the
        database's shared cache, ``False`` = uncached, an instance =
        private).  Close the service when done (context manager).
        """
        return AdaptiveService(
            self,
            policy=policy,
            profile=profile,
            cache_budget_bytes=cache_budget_bytes,
            max_workers=max_workers,
            queue_depth=queue_depth,
            admission=admission,
            result_cache=self._resolve_result_cache(result_cache),
            tracer=tracer,
        )

    def __repr__(self) -> str:
        active = (
            f"gen {self._active.generation} ({self._active.strategy})"
            if self._active
            else "none"
        )
        return (
            f"Database(rows={self.table.num_rows if self.table else '?'}, "
            f"layouts={len(self._layouts)}, active={active}, "
            f"cached={len(self.result_cache)})"
        )
