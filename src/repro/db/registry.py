"""Pluggable layout-construction strategies behind one registry.

The paper's contribution is a *family* of layout builders — the greedy
qd-tree (Sec. 4), the Woodblock deep-RL agent (Sec. 5) and the
baselines they are compared against (Sec. 7.3) — but each historically
had a bespoke entry point.  :class:`LayoutStrategy` is the one
protocol they all implement now: given a :class:`BuildContext` (table,
construction sample, workload, candidate cuts, block-size floor), a
strategy returns a :class:`BuiltLayout` — either a qd-tree to freeze
or a per-row BID assignment — and :class:`repro.db.Database`
materializes it into a block store.

Strategies are looked up by name in a string-keyed registry
(:func:`get_strategy`); third-party partitioners join by calling
:func:`register_strategy`.  Unknown names raise
:class:`UnknownStrategyError`, whose message lists every registered
name — the CLI surfaces it verbatim.

Each adapter constructs exactly the configuration its legacy entry
point (``build_greedy_tree``, ``Woodblock``, ``baselines/*``) would
have used, so for equal inputs the built layout is identical — the
differential suite in ``tests/test_db_differential.py`` holds every
registered strategy to that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..baselines import (
    BottomUpConfig,
    BottomUpPartitioner,
    HashPartitioner,
    KdTreePartitioner,
    RandomPartitioner,
    RangePartitioner,
)
from ..core.cuts import CutRegistry
from ..core.greedy import GreedyConfig, build_greedy_tree
from ..core.tree import QdTree
from ..core.workload import Workload
from ..rl.woodblock import Woodblock, WoodblockConfig
from ..storage.schema import Schema
from ..storage.table import Table

__all__ = [
    "BuildContext",
    "BuiltLayout",
    "LayoutStrategy",
    "UnknownStrategyError",
    "get_strategy",
    "register_strategy",
    "strategy_names",
]


@dataclass(frozen=True)
class BuildContext:
    """Everything a strategy may draw on to construct a layout.

    ``table`` is the full table the layout will be materialized over;
    ``sample`` is the (possibly smaller) construction sample with
    ``sample_block_size`` the block-size floor scaled to it
    (Sec. 5.2.1) — tree builders learn on the sample, partitioners
    assign BIDs over the full table with the unscaled
    ``min_block_size``.  ``workload``/``registry`` are ``None`` for
    workload-oblivious strategies.  ``options`` carries
    strategy-specific knobs; adapters reject unknown keys so typos
    fail loudly.
    """

    schema: Schema
    table: Table
    sample: Table
    min_block_size: int
    sample_block_size: int
    workload: Optional[Workload] = None
    registry: Optional[CutRegistry] = None
    options: Dict[str, object] = field(default_factory=dict)

    def require_workload(self, strategy: str) -> Tuple[Workload, CutRegistry]:
        """The (workload, registry) pair, or a helpful error."""
        if self.workload is None or self.registry is None:
            raise ValueError(
                f"strategy {strategy!r} is workload-driven: pass "
                f"workload=... (SQL statements or a Workload) to "
                f"build_layout()"
            )
        return self.workload, self.registry


@dataclass(frozen=True)
class BuiltLayout:
    """What a strategy hands back: a tree to freeze, or a per-row BID
    assignment over ``ctx.table`` (exactly one must be set).
    ``diagnostics`` carries builder-specific artifacts (e.g. the
    Woodblock training result)."""

    tree: Optional[QdTree] = None
    assignment: Optional[np.ndarray] = None
    diagnostics: Optional[object] = None

    def __post_init__(self) -> None:
        if (self.tree is None) == (self.assignment is None):
            raise ValueError(
                "BuiltLayout needs exactly one of tree / assignment"
            )


class LayoutStrategy:
    """Protocol every registered strategy implements.

    Subclassing is optional — any object with a ``name`` attribute and
    a ``build(ctx: BuildContext) -> BuiltLayout`` method qualifies.
    """

    name: str = ""

    def build(self, ctx: BuildContext) -> BuiltLayout:
        raise NotImplementedError


class UnknownStrategyError(ValueError):
    """Raised for a strategy name the registry does not know."""

    def __init__(self, name: str, known: Tuple[str, ...]) -> None:
        self.strategy = name
        self.known = known
        super().__init__(
            f"unknown layout strategy {name!r}; registered strategies: "
            + ", ".join(known)
        )


_REGISTRY: Dict[str, LayoutStrategy] = {}


def register_strategy(
    strategy: LayoutStrategy, replace: bool = False
) -> LayoutStrategy:
    """Add a strategy under ``strategy.name``; returns it for chaining."""
    name = strategy.name
    if not name:
        raise ValueError("strategy needs a non-empty name")
    if name in _REGISTRY and not replace:
        raise ValueError(f"strategy {name!r} already registered")
    _REGISTRY[name] = strategy
    return strategy


def strategy_names() -> Tuple[str, ...]:
    """Registered strategy names, in registration order."""
    return tuple(_REGISTRY)


def get_strategy(name: str) -> LayoutStrategy:
    """Look a strategy up by name (:class:`UnknownStrategyError` on miss)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownStrategyError(name, strategy_names()) from None


# ----------------------------------------------------------------------
# Adapter plumbing
# ----------------------------------------------------------------------


def _take(options: Dict[str, object], strategy: str, **defaults):
    """Pop known option keys with defaults; reject leftovers."""
    values = [options.pop(key, default) for key, default in defaults.items()]
    if options:
        raise ValueError(
            f"strategy {strategy!r} got unknown options: "
            + ", ".join(sorted(map(str, options)))
            + f" (accepts: {', '.join(defaults)})"
        )
    return values


def _numeric_names(schema: Schema) -> Tuple[str, ...]:
    return tuple(col.name for col in schema.numeric_columns)


# ----------------------------------------------------------------------
# The built-in strategies
# ----------------------------------------------------------------------


class GreedyStrategy(LayoutStrategy):
    """Greedy top-down qd-tree (wraps :func:`build_greedy_tree`)."""

    name = "greedy"

    def build(self, ctx: BuildContext) -> BuiltLayout:
        workload, registry = ctx.require_workload(self.name)
        allow_small, allow_zero, max_depth = _take(
            dict(ctx.options),
            self.name,
            allow_small_children=False,
            allow_zero_gain=False,
            max_depth=None,
        )
        tree = build_greedy_tree(
            ctx.schema,
            registry,
            ctx.sample,
            workload,
            GreedyConfig(
                min_leaf_size=ctx.sample_block_size,
                allow_small_children=bool(allow_small),
                allow_zero_gain=bool(allow_zero),
                max_depth=max_depth,
            ),
        )
        return BuiltLayout(tree=tree)


class WoodblockStrategy(LayoutStrategy):
    """Woodblock deep-RL qd-tree (wraps :class:`Woodblock`)."""

    name = "woodblock"

    def build(self, ctx: BuildContext) -> BuiltLayout:
        workload, registry = ctx.require_workload(self.name)
        episodes, budget, hidden, seed, allow_small = _take(
            dict(ctx.options),
            self.name,
            episodes=150,
            time_budget_seconds=None,
            hidden_dim=128,
            seed=0,
            allow_small_children=False,
        )
        agent = Woodblock(
            ctx.schema,
            registry,
            ctx.sample,
            workload,
            WoodblockConfig(
                min_leaf_size=ctx.sample_block_size,
                episodes=int(episodes),
                time_budget_seconds=budget,
                hidden_dim=int(hidden),
                seed=int(seed),
                allow_small_children=bool(allow_small),
            ),
        )
        result = agent.train()
        return BuiltLayout(tree=result.best_tree, diagnostics=result)


class KdTreeStrategy(LayoutStrategy):
    """Median-split k-d tree baseline (workload-oblivious)."""

    name = "kdtree"

    def build(self, ctx: BuildContext) -> BuiltLayout:
        (columns,) = _take(dict(ctx.options), self.name, columns=None)
        partitioner = KdTreePartitioner(
            columns=tuple(columns) if columns else _numeric_names(ctx.schema),
            min_block_size=ctx.min_block_size,
        )
        return BuiltLayout(assignment=partitioner.partition(ctx.table))


class HashStrategy(LayoutStrategy):
    """Hash partitioning baseline (workload-oblivious)."""

    name = "hash"

    def build(self, ctx: BuildContext) -> BuiltLayout:
        columns, num_blocks = _take(
            dict(ctx.options), self.name, columns=None, num_blocks=None
        )
        if num_blocks is None:
            num_blocks = max(
                1, int(np.ceil(ctx.table.num_rows / ctx.min_block_size))
            )
        partitioner = HashPartitioner(
            columns=tuple(columns) if columns else _numeric_names(ctx.schema),
            num_blocks=int(num_blocks),
        )
        return BuiltLayout(assignment=partitioner.partition(ctx.table))


class RangeStrategy(LayoutStrategy):
    """Single-column range partitioning baseline."""

    name = "range"

    def build(self, ctx: BuildContext) -> BuiltLayout:
        (column,) = _take(dict(ctx.options), self.name, column=None)
        if column is None:
            numeric = _numeric_names(ctx.schema)
            if not numeric:
                raise ValueError(
                    "range strategy needs a numeric column "
                    "(pass column=...)"
                )
            column = numeric[0]
        partitioner = RangePartitioner(
            column=str(column), block_size=ctx.min_block_size
        )
        return BuiltLayout(assignment=partitioner.partition(ctx.table))


class RandomStrategy(LayoutStrategy):
    """Shuffled fixed-size blocks baseline."""

    name = "random"

    def build(self, ctx: BuildContext) -> BuiltLayout:
        (seed,) = _take(dict(ctx.options), self.name, seed=0)
        partitioner = RandomPartitioner(
            block_size=ctx.min_block_size, seed=int(seed)
        )
        return BuiltLayout(assignment=partitioner.partition(ctx.table))


class BottomUpStrategy(LayoutStrategy):
    """Bottom-Up row grouping (Sun et al.), the paper's SOTA baseline."""

    name = "bottom_up"

    def build(self, ctx: BuildContext) -> BuiltLayout:
        workload, registry = ctx.require_workload(self.name)
        max_features, freq, selectivity, max_block = _take(
            dict(ctx.options),
            self.name,
            max_features=15,
            frequency_threshold=1,
            selectivity_threshold=None,
            max_block_size=None,
        )
        partitioner = BottomUpPartitioner(
            registry,
            workload,
            BottomUpConfig(
                min_block_size=ctx.min_block_size,
                max_features=int(max_features),
                frequency_threshold=int(freq),
                selectivity_threshold=selectivity,
                max_block_size=max_block,
            ),
        )
        return BuiltLayout(
            assignment=partitioner.partition(ctx.table),
            diagnostics=tuple(partitioner.selected_features),
        )


for _strategy in (
    GreedyStrategy(),
    WoodblockStrategy(),
    KdTreeStrategy(),
    HashStrategy(),
    RangeStrategy(),
    RandomStrategy(),
    BottomUpStrategy(),
):
    register_strategy(_strategy)
