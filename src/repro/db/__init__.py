"""Unified database facade over learned layouts.

One coherent API for the whole lifecycle the paper's family of layout
builders implies: :class:`Database` owns the logical table, builds
layouts through the pluggable :class:`LayoutStrategy` registry
(``greedy``, ``woodblock``, ``kdtree``, ``hash``, ``range``,
``random``, ``bottom_up``), versions every layout with a monotonically
increasing **generation** (:class:`LayoutHandle`), persists them
through the storage catalog, serves them through :mod:`repro.serve`,
and layers a generation-keyed result cache over everything so repeated
queries skip routing, pruning and scanning — with invalidation tied to
ingest and layout swaps.

>>> db = Database.from_table(table, min_block_size=1000)
>>> greedy = db.build_layout("greedy", workload=statements)
>>> kdtree = db.build_layout("kdtree", activate=False)
>>> db.execute("SELECT * FROM t WHERE x < 10").stats.tuples_scanned
>>> with db.serve(shards=4, partition="subtree") as service:
...     service.run_closed_loop(statements, repeat=20)
"""

from .database import Database, LayoutHandle
from .registry import (
    BuildContext,
    BuiltLayout,
    LayoutStrategy,
    UnknownStrategyError,
    get_strategy,
    register_strategy,
    strategy_names,
)

__all__ = [
    "BuildContext",
    "BuiltLayout",
    "Database",
    "LayoutHandle",
    "LayoutStrategy",
    "UnknownStrategyError",
    "get_strategy",
    "register_strategy",
    "strategy_names",
]
