"""Scan-oriented execution engine with pluggable cost profiles."""

from .executor import ColumnReader, QueryStats, ScanEngine, default_column_reader
from .profiles import (
    COMMERCIAL_DBMS,
    DISTRIBUTED_SPARK,
    SPARK_PARQUET,
    CostProfile,
)
from .stats import WorkloadReport, speedup_cdf

__all__ = [
    "COMMERCIAL_DBMS",
    "ColumnReader",
    "CostProfile",
    "DISTRIBUTED_SPARK",
    "QueryStats",
    "SPARK_PARQUET",
    "ScanEngine",
    "WorkloadReport",
    "default_column_reader",
    "speedup_cdf",
]
