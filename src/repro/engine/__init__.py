"""Scan-oriented execution engine with pluggable cost profiles."""

from .executor import QueryStats, ScanEngine
from .profiles import (
    COMMERCIAL_DBMS,
    DISTRIBUTED_SPARK,
    SPARK_PARQUET,
    CostProfile,
)
from .stats import WorkloadReport, speedup_cdf

__all__ = [
    "COMMERCIAL_DBMS",
    "CostProfile",
    "DISTRIBUTED_SPARK",
    "QueryStats",
    "SPARK_PARQUET",
    "ScanEngine",
    "WorkloadReport",
    "speedup_cdf",
]
