"""Scan-oriented query execution over a block store.

The engine executes a query in the paper's two modes:

* **qd-tree routing** (Sec. 3.3, the default in the paper's physical
  experiments): the caller supplies the pruned BID list obtained from
  :class:`~repro.core.router.QueryRouter` (the ``BID IN (...)``
  rewrite); min-max indexes still apply on top.
* **no route**: no BID filter; only the per-block min-max (SMA) index
  prunes — the baseline partition-pruning path every modern engine
  implements.

Every retrieved block is fully scanned (filter evaluated over its
rows), matching scan-oriented processing; per-query statistics capture
blocks/tuples scanned and both modeled and wall-clock runtime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..core.hypercube import Hypercube, Interval
from ..core.node import NodeDescription
from ..core.workload import Query, Workload
from ..storage.blocks import Block, BlockStore
from .profiles import CostProfile, SPARK_PARQUET

__all__ = [
    "ColumnReader",
    "QueryStats",
    "ScanEngine",
    "default_column_reader",
]

#: Pluggable column-read path: ``(block, column names) -> decoded
#: columns``.  The default decodes from the block's encoded chunks;
#: a serving tier substitutes a buffer-pool read (see
#: :class:`repro.serve.BlockCache`) so cached and uncached scans share
#: one execution path.
ColumnReader = Callable[[Block, Sequence[str]], Mapping[str, np.ndarray]]


def default_column_reader(
    block: Block, names: Sequence[str]
) -> Mapping[str, np.ndarray]:
    """The uncached read path: decode straight from the block."""
    return block.read_columns(names)


@dataclass
class QueryStats:
    """Accounting for one executed query."""

    query_name: str
    template: str
    blocks_considered: int
    blocks_scanned: int
    tuples_scanned: int
    rows_returned: int
    columns_read: int
    modeled_ms: float
    wall_seconds: float
    #: Decoded bytes the filter columns occupied in memory (0 for
    #: legacy call sites that never touch the serving tier).
    bytes_read: int = 0

    def result_key(self) -> Tuple:
        """Deterministic fields only — equal for any two executions of
        the same query on the same layout, regardless of timing or
        which read path (cached/uncached) served the columns."""
        return (
            self.query_name,
            self.template,
            self.blocks_considered,
            self.blocks_scanned,
            self.tuples_scanned,
            self.rows_returned,
            self.columns_read,
            self.modeled_ms,
        )


class ScanEngine:
    """Executes queries against a :class:`BlockStore` under a profile."""

    def __init__(
        self,
        store: BlockStore,
        profile: CostProfile = SPARK_PARQUET,
        num_advanced_cuts: int = 0,
        column_reader: Optional[ColumnReader] = None,
    ) -> None:
        self.store = store
        self.profile = profile
        self._num_advanced = num_advanced_cuts
        self._column_reader: ColumnReader = column_reader or default_column_reader
        self._store_bids = store.bid_set
        # Min-max metadata is held as NodeDescriptions so the same
        # conservative intersection logic drives SMA pruning.
        self._block_descriptions: Dict[int, NodeDescription] = {}
        for block in store:
            self._block_descriptions[block.block_id] = self._describe(block)

    def _describe(self, block: Block) -> NodeDescription:
        intervals: Dict[str, Interval] = {}
        masks: Dict[str, np.ndarray] = {}
        for col in block.schema.numeric_columns:
            bounds = block.minmax.bounds(col.name)
            if bounds is not None:
                intervals[col.name] = Interval(bounds[0], bounds[1], True, True)
        for col in block.schema.categorical_columns:
            stats = block.minmax.column_stats(col.name)
            if (
                self.profile.block_dictionaries
                and stats is not None
                and stats.distinct is not None
            ):
                masks[col.name] = stats.distinct
            elif stats is not None:
                # Without dictionaries only the code range is known.
                dom = col.domain_size
                bits = np.zeros(dom, dtype=bool)
                lo = max(int(stats.minimum), 0)
                hi = min(int(stats.maximum), dom - 1)
                bits[lo : hi + 1] = True
                masks[col.name] = bits
            else:
                masks[col.name] = np.ones(col.domain_size, dtype=bool)
        # Min-max metadata carries no advanced-cut information: both
        # possibility bits stay set (cannot prune on them).
        ones = np.ones(self._num_advanced, dtype=bool)
        return NodeDescription(
            block.schema, Hypercube(intervals), masks, ones, ones.copy()
        )

    # ------------------------------------------------------------------

    def prune_blocks(
        self, query: Query, candidate_bids: Optional[Iterable[int]] = None
    ) -> List[int]:
        """BIDs surviving min-max pruning within the candidate set."""
        if candidate_bids is None:
            candidates = list(self.store.block_ids)
        else:
            candidates = sorted(set(candidate_bids) & self._store_bids)
        return [
            bid
            for bid in candidates
            if self._block_descriptions[bid].may_match(query.predicate)
        ]

    def collect_row_ids(
        self,
        query: Query,
        block_ids: Optional[Iterable[int]] = None,
        pruned: bool = False,
    ) -> np.ndarray:
        """Original-table row ids the query matches (sorted, deduped).

        Requires blocks built with row-id provenance (see
        :class:`~repro.storage.blocks.Block`); differential harnesses
        use this to prove two execution topologies return the same
        *rows*, not merely the same counts.  Deduplication makes the
        result well-defined under replicated layouts.  Pass
        ``pruned=True`` when ``block_ids`` is already an SMA-pruned
        survivor list (the serving tier memoizes one per predicate) to
        skip re-pruning.
        """
        if pruned and block_ids is not None:
            survivors = list(block_ids)
        else:
            survivors = self.prune_blocks(query, block_ids)
        filter_columns = sorted(query.predicate.referenced_columns())
        matched = []
        for block in self.store.blocks(survivors):
            if block.row_ids is None:
                raise ValueError(
                    f"block {block.block_id} carries no row-id provenance"
                )
            data = self._column_reader(block, filter_columns)
            mask = query.predicate.evaluate(data)
            matched.append(block.row_ids[mask])
        if not matched:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(matched))

    def execute(
        self, query: Query, block_ids: Optional[Iterable[int]] = None
    ) -> QueryStats:
        """Run one query; ``block_ids`` is the routed BID list, if any."""
        considered = (
            len(self._store_bids)
            if block_ids is None
            else len(set(block_ids) & self._store_bids)
        )
        t0 = time.perf_counter()
        survivors = self.prune_blocks(query, block_ids)
        return self._scan(query, survivors, considered, t0)

    def execute_pruned(
        self,
        query: Query,
        survivors: Sequence[int],
        blocks_considered: int,
    ) -> QueryStats:
        """Serving fast path: scan an already-pruned survivor list.

        ``survivors`` must be exactly what :meth:`prune_blocks` would
        return for this query (the serving tier memoizes it per
        predicate fingerprint); ``blocks_considered`` is the pre-prune
        candidate count so the stats match :meth:`execute` bit for bit
        on every deterministic field (``wall_seconds`` here covers the
        scan only — the pruning it skipped is the point).
        """
        return self._scan(query, list(survivors), blocks_considered)

    def _scan(
        self,
        query: Query,
        survivors: List[int],
        considered: int,
        t0: Optional[float] = None,
    ) -> QueryStats:
        if t0 is None:
            t0 = time.perf_counter()
        filter_columns = sorted(query.predicate.referenced_columns())
        scan_columns = sorted(
            set(filter_columns) | set(query.scan_columns())
        )
        if not self.profile.columnar:
            scan_columns = list(self.store.schema.column_names)
        tuples_scanned = 0
        rows_returned = 0
        bytes_read = 0
        for block in self.store.blocks(survivors):
            data = self._column_reader(block, filter_columns)
            mask = query.predicate.evaluate(data)
            tuples_scanned += block.num_rows
            rows_returned += int(mask.sum())
            bytes_read += block.decoded_nbytes(filter_columns)
        wall = time.perf_counter() - t0
        modeled = self.profile.modeled_ms(
            blocks_scanned=len(survivors),
            tuples_scanned=tuples_scanned,
            columns_read=len(scan_columns),
        )
        return QueryStats(
            query_name=query.name,
            template=query.template,
            blocks_considered=considered,
            blocks_scanned=len(survivors),
            tuples_scanned=tuples_scanned,
            rows_returned=rows_returned,
            columns_read=len(scan_columns),
            modeled_ms=modeled,
            wall_seconds=wall,
            bytes_read=bytes_read,
        )

    def execute_workload(
        self,
        workload: Workload,
        routed_bids: Optional[Sequence[Optional[Sequence[int]]]] = None,
    ) -> List[QueryStats]:
        """Run every query; ``routed_bids[i]`` is query *i*'s BID list
        (``None`` entries fall back to no-route SMA pruning)."""
        if routed_bids is not None and len(routed_bids) != len(workload):
            raise ValueError("routed_bids must align with the workload")
        stats = []
        for i, query in enumerate(workload):
            bids = routed_bids[i] if routed_bids is not None else None
            stats.append(self.execute(query, bids))
        return stats
