"""Workload-level reporting over per-query execution statistics.

Aggregates :class:`~repro.engine.executor.QueryStats` into the numbers
the paper's figures show: total/aggregate runtimes (Fig. 7a/b),
per-template means (Fig. 5), per-query speedup CDFs (Fig. 7c), and
logical access percentages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .executor import QueryStats

__all__ = ["WorkloadReport", "speedup_cdf"]


@dataclass
class WorkloadReport:
    """All per-query stats for one (layout, engine) combination."""

    label: str
    stats: List[QueryStats]

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------

    @property
    def total_modeled_ms(self) -> float:
        return sum(s.modeled_ms for s in self.stats)

    @property
    def total_wall_seconds(self) -> float:
        return sum(s.wall_seconds for s in self.stats)

    @property
    def total_tuples_scanned(self) -> int:
        return sum(s.tuples_scanned for s in self.stats)

    @property
    def total_blocks_scanned(self) -> int:
        return sum(s.blocks_scanned for s in self.stats)

    def access_percentage(self, total_rows: int) -> float:
        """% of (tuple, query) pairs scanned — the Table 2 metric."""
        if total_rows == 0 or not self.stats:
            return 0.0
        return 100.0 * self.total_tuples_scanned / (total_rows * len(self.stats))

    # ------------------------------------------------------------------
    # Per-template (Fig. 5)
    # ------------------------------------------------------------------

    def per_template_modeled_ms(self) -> Dict[str, float]:
        """Template -> mean modeled runtime over its instances."""
        groups: Dict[str, List[float]] = {}
        for s in self.stats:
            groups.setdefault(s.template or s.query_name, []).append(s.modeled_ms)
        return {t: float(np.mean(v)) for t, v in groups.items()}

    def per_query_modeled_ms(self) -> np.ndarray:
        return np.array([s.modeled_ms for s in self.stats])

    # ------------------------------------------------------------------

    def speedup_over(self, baseline: "WorkloadReport") -> float:
        """Aggregate modeled speedup of this layout over ``baseline``."""
        mine = self.total_modeled_ms
        theirs = baseline.total_modeled_ms
        return theirs / mine if mine > 0 else float("inf")

    def summary(self) -> Dict[str, float]:
        """Headline numbers for tables."""
        return {
            "queries": float(len(self.stats)),
            "total_modeled_ms": self.total_modeled_ms,
            "total_tuples_scanned": float(self.total_tuples_scanned),
            "total_blocks_scanned": float(self.total_blocks_scanned),
        }


def speedup_cdf(
    baseline: WorkloadReport, improved: WorkloadReport
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-query speedup CDF (paper Fig. 7c).

    Returns ``(sorted speedups, cumulative fraction)`` where speedup is
    ``baseline_ms / improved_ms`` per query.
    """
    base = baseline.per_query_modeled_ms()
    mine = improved.per_query_modeled_ms()
    if len(base) != len(mine):
        raise ValueError("reports cover different query counts")
    with np.errstate(divide="ignore"):
        speedups = np.where(mine > 0, base / np.maximum(mine, 1e-12), np.inf)
    xs = np.sort(speedups)
    ys = np.arange(1, len(xs) + 1) / len(xs)
    return xs, ys
