"""Execution-engine cost profiles.

The paper measures physical runtimes on three engines (single-node
Spark over Parquet, a commercial DBMS over its own columnar format, and
a distributed Spark cluster over blob storage, Sec. 7.1).  Our engine
replays the same scan work over our block store and *models* the I/O
cost of each environment with a small linear model:

``runtime = blocks_scanned * block_open_ms
          + tuples_scanned * columns_read * tuple_column_scan_ns``

Profiles differ in the constants and in two structural switches the
paper calls out:

* ``columnar`` — columnar engines only read the columns a query
  references; the row-oriented DBMS profile charges every column;
* ``block_dictionaries`` — whether blocks carry categorical
  distinct-value sets; the paper attributes the DBMS's poor ``no
  route`` behaviour to the lack of block-level dictionaries for
  categorical fields (Sec. 7.5.1).

The constants are calibrated to *our* block scale, not the paper's
wall clock: the paper's blocks hold >= 100K tuples, ours hold
~50-5000, so per-block open cost is scaled down by the same factor to
preserve the paper's open-cost : scan-cost balance (open ~= 10-20% of
one average block scan).  Modeled milliseconds are therefore unit-
consistent within an experiment but not comparable to the paper's
seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CostProfile",
    "SPARK_PARQUET",
    "DISTRIBUTED_SPARK",
    "COMMERCIAL_DBMS",
]


@dataclass(frozen=True)
class CostProfile:
    """Linear I/O cost model of one execution environment."""

    name: str
    block_open_ms: float
    tuple_column_scan_ns: float
    columnar: bool
    block_dictionaries: bool

    def modeled_ms(
        self, blocks_scanned: int, tuples_scanned: int, columns_read: int
    ) -> float:
        """Modeled runtime in milliseconds for one query's scan."""
        return (
            blocks_scanned * self.block_open_ms
            + tuples_scanned * columns_read * self.tuple_column_scan_ns * 1e-6
        )


#: Single-node / distributed Spark over Parquet files on disk.
SPARK_PARQUET = CostProfile(
    name="spark-parquet",
    block_open_ms=0.01,
    tuple_column_scan_ns=60.0,
    columnar=True,
    block_dictionaries=True,
)

#: Spark cluster over remote blob storage: opening a block is pricier.
DISTRIBUTED_SPARK = CostProfile(
    name="distributed-spark",
    block_open_ms=0.05,
    tuple_column_scan_ns=80.0,
    columnar=True,
    block_dictionaries=True,
)

#: The commercial DBMS: fast row-at-a-time scans from local SSD, but
#: row-oriented I/O and no block-level categorical dictionaries.
COMMERCIAL_DBMS = CostProfile(
    name="commercial-dbms",
    block_open_ms=0.003,
    tuple_column_scan_ns=25.0,
    columnar=False,
    block_dictionaries=False,
)
