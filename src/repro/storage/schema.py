"""Relational schema with dictionary encoding for categorical columns.

The qd-tree paper (Sec. 3) assumes every attribute's domain is a dense
integer range ``[0, |Dom_i|)``: numeric columns are used as-is (or
dictionary-encoded if sparse) and categorical columns are
dictionary-encoded so that equality / ``IN`` cuts operate on small ints.
This module owns those dictionaries.

A :class:`Schema` is an ordered collection of :class:`Column` objects.
Columns are either *numeric* (ordered domain, range predicates allowed)
or *categorical* (unordered dictionary-encoded domain, equality / ``IN``
predicates allowed).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ColumnKind", "Column", "Schema", "Dictionary", "SchemaError"]


class SchemaError(ValueError):
    """Raised for malformed schema definitions or unknown columns."""


class ColumnKind(enum.Enum):
    """The two attribute classes the qd-tree distinguishes.

    ``NUMERIC`` columns have an ordered domain and admit range cuts
    (``<, <=, >, >=``).  ``CATEGORICAL`` columns are dictionary-encoded
    and admit equality cuts (``=, IN``), tracked via per-node bit masks
    (paper Table 1).
    """

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


class Dictionary:
    """A bidirectional value <-> code mapping for one categorical column.

    Codes are assigned densely in insertion order, so a column with
    ``n`` distinct values uses codes ``0..n-1`` — exactly the
    ``[0, |Dom_i|)`` domain the paper assumes.
    """

    def __init__(self, values: Optional[Iterable[object]] = None) -> None:
        self._value_to_code: Dict[object, int] = {}
        self._code_to_value: List[object] = []
        if values is not None:
            for value in values:
                self.add(value)

    def __len__(self) -> int:
        return len(self._code_to_value)

    def __contains__(self, value: object) -> bool:
        return value in self._value_to_code

    def __iter__(self) -> Iterator[object]:
        return iter(self._code_to_value)

    def add(self, value: object) -> int:
        """Intern ``value``, returning its (possibly new) code."""
        code = self._value_to_code.get(value)
        if code is None:
            code = len(self._code_to_value)
            self._value_to_code[value] = code
            self._code_to_value.append(value)
        return code

    def encode(self, value: object) -> int:
        """Return the code for ``value``; raises ``KeyError`` if unseen."""
        return self._value_to_code[value]

    def decode(self, code: int) -> object:
        """Return the original value for ``code``."""
        return self._code_to_value[code]

    def encode_many(self, values: Iterable[object]) -> np.ndarray:
        """Vectorized :meth:`encode` over an iterable of values."""
        return np.fromiter(
            (self._value_to_code[v] for v in values), dtype=np.int64
        )

    def values(self) -> Tuple[object, ...]:
        """All interned values, ordered by code."""
        return tuple(self._code_to_value)


@dataclass
class Column:
    """One attribute of a relation.

    Parameters
    ----------
    name:
        Attribute name; must be unique within a schema.
    kind:
        ``ColumnKind.NUMERIC`` or ``ColumnKind.CATEGORICAL``.
    domain:
        For numeric columns the half-open value range ``(lo, hi)`` that
        bounds all values; used to initialize the root hypercube.  For
        categorical columns the domain is implied by the dictionary.
    dictionary:
        Dictionary for categorical columns; created lazily when omitted.
    """

    name: str
    kind: ColumnKind
    domain: Optional[Tuple[float, float]] = None
    dictionary: Optional[Dictionary] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.kind is ColumnKind.CATEGORICAL and self.dictionary is None:
            self.dictionary = Dictionary()
        if self.kind is ColumnKind.NUMERIC and self.domain is not None:
            lo, hi = self.domain
            if lo > hi:
                raise SchemaError(
                    f"column {self.name!r}: domain lo {lo} > hi {hi}"
                )

    @property
    def is_categorical(self) -> bool:
        return self.kind is ColumnKind.CATEGORICAL

    @property
    def is_numeric(self) -> bool:
        return self.kind is ColumnKind.NUMERIC

    @property
    def domain_size(self) -> int:
        """``|Dom|`` for categorical columns."""
        if not self.is_categorical:
            raise SchemaError(
                f"column {self.name!r} is numeric; use .domain instead"
            )
        assert self.dictionary is not None
        return len(self.dictionary)

    def encode(self, value: object) -> float:
        """Map a raw value into the encoded domain."""
        if self.is_categorical:
            assert self.dictionary is not None
            return self.dictionary.encode(value)
        return float(value)  # type: ignore[arg-type]

    def decode(self, code: float) -> object:
        """Inverse of :meth:`encode` (identity for numeric columns)."""
        if self.is_categorical:
            assert self.dictionary is not None
            return self.dictionary.decode(int(code))
        return code


def numeric(name: str, domain: Optional[Tuple[float, float]] = None) -> Column:
    """Shorthand constructor for a numeric column."""
    return Column(name, ColumnKind.NUMERIC, domain=domain)


def categorical(name: str, values: Optional[Iterable[object]] = None) -> Column:
    """Shorthand constructor for a categorical column."""
    return Column(
        name, ColumnKind.CATEGORICAL, dictionary=Dictionary(values)
    )


class Schema:
    """Ordered, name-addressable collection of columns.

    The schema is the single source of truth for dictionary encodings;
    qd-tree nodes, candidate cuts, and the storage layer all consult it.
    """

    def __init__(self, columns: Sequence[Column]) -> None:
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        self._columns: Tuple[Column, ...] = tuple(columns)
        self._by_name: Dict[str, Column] = {c.name: c for c in columns}
        self._index: Dict[str, int] = {c.name: i for i, c in enumerate(columns)}

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.column_names == other.column_names

    def __repr__(self) -> str:
        return f"Schema({[c.name for c in self._columns]})"

    @property
    def columns(self) -> Tuple[Column, ...]:
        return self._columns

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    @property
    def numeric_columns(self) -> Tuple[Column, ...]:
        return tuple(c for c in self._columns if c.is_numeric)

    @property
    def categorical_columns(self) -> Tuple[Column, ...]:
        return tuple(c for c in self._columns if c.is_categorical)

    def position(self, name: str) -> int:
        """Ordinal position of column ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}") from None

    def encode_literal(self, column: str, value: object) -> float:
        """Encode one literal for predicates over ``column``."""
        return self[column].encode(value)

    def encode_literals(
        self, column: str, values: Iterable[object]
    ) -> Tuple[float, ...]:
        """Encode a literal list (for ``IN`` predicates)."""
        col = self[column]
        return tuple(col.encode(v) for v in values)
