"""Physical data blocks and the block store.

A :class:`Block` is the unit of I/O in a scan-oriented system: a
horizontal slice of the table with a block ID (BID), an encoded columnar
payload, and a :class:`~repro.storage.minmax.MinMaxIndex`.  A
:class:`BlockStore` is an ordered collection of blocks produced by some
partitioner (a qd-tree, a baseline, ...), the object the execution
engine scans.

The paper's physical experiments convert each qd-tree leaf into one
Parquet file; here each leaf becomes one :class:`Block` (optionally
persisted to disk as ``.npz`` via :mod:`repro.storage.catalog`).
"""

from __future__ import annotations

from dataclasses import field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .columnar import EncodedChunk, decode_chunk, encode_column
from .minmax import MinMaxIndex
from .schema import Schema, SchemaError
from .table import Table

__all__ = ["Block", "BlockStore"]


class Block:
    """One physical block: encoded columns + SMA index + metadata.

    Parameters
    ----------
    block_id:
        Dense integer BID assigned by the partitioner.
    table:
        The rows assigned to this block.
    description:
        Optional human/machine-readable semantic description (a
        predicate string for qd-tree leaves; ``None`` for baselines,
        whose blocks are *not* complete).
    with_dictionaries:
        Whether the min-max index keeps categorical distinct-value bit
        sets (block dictionaries).
    """

    def __init__(
        self,
        block_id: int,
        table: Table,
        description: Optional[str] = None,
        with_dictionaries: bool = True,
        row_ids: Optional[np.ndarray] = None,
    ) -> None:
        self.block_id = block_id
        self.schema = table.schema
        self.num_rows = table.num_rows
        self.description = description
        # Optional provenance: original table row indices of this
        # block's rows, in block row order.  In-memory only (not
        # persisted by the catalog); differential test harnesses use it
        # to compare matched row-id sets across execution topologies.
        # An already-read-only int64 array is taken by reference (a
        # builder can freeze its own fresh array to avoid a copy);
        # anything still writeable is copied so the caller's array is
        # never mutated.
        if row_ids is not None:
            row_ids = np.asarray(row_ids, dtype=np.int64)
            if len(row_ids) != table.num_rows:
                raise ValueError(
                    f"row_ids length {len(row_ids)} != rows {table.num_rows}"
                )
            if row_ids.flags.writeable:
                row_ids = row_ids.copy()
                row_ids.setflags(write=False)
        self.row_ids = row_ids
        self._chunks: Dict[str, EncodedChunk] = {
            name: encode_column(arr) for name, arr in table.columns().items()
        }
        self.minmax = MinMaxIndex.build(table, with_dictionaries=with_dictionaries)

    # ------------------------------------------------------------------

    def read_column(self, name: str) -> np.ndarray:
        """Decode and return one column (a columnar engine reads only
        the columns a query references)."""
        try:
            chunk = self._chunks[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}") from None
        return decode_chunk(chunk)

    def read_columns(self, names: Sequence[str]) -> Dict[str, np.ndarray]:
        """Decode several columns at once."""
        return {name: self.read_column(name) for name in names}

    def decoded_nbytes(self, names: Sequence[str]) -> int:
        """Bytes the named columns occupy once decoded (buffer-pool
        cost), computed from chunk metadata without decoding."""
        total = 0
        for name in names:
            try:
                chunk = self._chunks[name]
            except KeyError:
                raise SchemaError(f"unknown column {name!r}") from None
            total += chunk.num_values * chunk.dtype.itemsize
        return total

    def to_table(self) -> Table:
        """Decode the full block back into a :class:`Table`."""
        cols = {name: self.read_column(name) for name in self.schema.column_names}
        return Table(self.schema, cols)

    # ------------------------------------------------------------------

    @property
    def encoded_nbytes(self) -> int:
        """Bytes the encoded block occupies on storage."""
        return sum(chunk.nbytes for chunk in self._chunks.values())

    def column_nbytes(self, names: Sequence[str]) -> int:
        """Encoded bytes of just the named columns (columnar reads)."""
        return sum(self._chunks[name].nbytes for name in names)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return f"Block(id={self.block_id}, rows={self.num_rows})"


class BlockStore:
    """An ordered set of blocks making up one physical layout.

    Iteration order is BID order.  The store also remembers the total
    logical row count, which may be *less* than the sum of block sizes
    when the layout replicates rows (Sec. 6.2 data overlap).
    """

    def __init__(
        self,
        schema: Schema,
        blocks: Iterable[Block],
        logical_rows: Optional[int] = None,
    ) -> None:
        self.schema = schema
        self._blocks: List[Block] = sorted(blocks, key=lambda b: b.block_id)
        seen = [b.block_id for b in self._blocks]
        if len(set(seen)) != len(seen):
            raise ValueError(f"duplicate block ids: {seen}")
        self._by_id: Dict[int, Block] = {b.block_id: b for b in self._blocks}
        self._bid_set = frozenset(self._by_id)
        stored = sum(b.num_rows for b in self._blocks)
        self.logical_rows = logical_rows if logical_rows is not None else stored

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_assignment(
        cls,
        table: Table,
        block_ids: np.ndarray,
        descriptions: Optional[Mapping[int, str]] = None,
        with_dictionaries: bool = True,
        with_row_ids: bool = True,
    ) -> "BlockStore":
        """Build a store from a per-row BID assignment.

        This is the "partition the dataset by the BID field" step of
        Sec. 3.1.  ``block_ids`` may contain any non-negative ints; BIDs
        are used as given (no re-densification) so they can match
        qd-tree leaf ids.  ``with_row_ids=False`` skips row-id
        provenance (8 bytes/row) for builds that will never need
        row-level differential checks.
        """
        block_ids = np.asarray(block_ids)
        if len(block_ids) != table.num_rows:
            raise ValueError(
                f"assignment length {len(block_ids)} != rows {table.num_rows}"
            )
        if len(block_ids) and block_ids.min() < 0:
            raise ValueError("negative block id in assignment")
        blocks = []
        for bid in np.unique(block_ids):
            member = block_ids == bid
            rows = table.filter(member)
            desc = descriptions.get(int(bid)) if descriptions else None
            if with_row_ids:
                # Freeze our own fresh array so Block takes it by
                # reference instead of copying.
                ids: Optional[np.ndarray] = np.flatnonzero(member)
                ids.setflags(write=False)
            else:
                ids = None
            blocks.append(
                Block(
                    int(bid),
                    rows,
                    description=desc,
                    with_dictionaries=with_dictionaries,
                    row_ids=ids,
                )
            )
        return cls(table.schema, blocks, logical_rows=table.num_rows)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def stored_rows(self) -> int:
        """Physically stored rows (>= logical_rows with overlap)."""
        return sum(b.num_rows for b in self._blocks)

    @property
    def block_ids(self) -> Tuple[int, ...]:
        return tuple(b.block_id for b in self._blocks)

    @property
    def bid_set(self) -> frozenset:
        """Membership set of all BIDs (O(1) lookups)."""
        return self._bid_set

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._by_id

    def block(self, block_id: int) -> Block:
        """Fetch a block by BID."""
        try:
            return self._by_id[block_id]
        except KeyError:
            raise KeyError(f"no block with id {block_id}") from None

    def blocks(self, block_ids: Optional[Iterable[int]] = None) -> List[Block]:
        """Blocks with the given BIDs, in BID order (all when ``None``);
        BIDs absent from the store are ignored."""
        if block_ids is None:
            return list(self._blocks)
        wanted = set(block_ids) & self._bid_set
        return [self._by_id[bid] for bid in sorted(wanted)]

    # ------------------------------------------------------------------
    # Partitioning (sharded serving)
    # ------------------------------------------------------------------

    def partition(
        self,
        num_shards: int,
        strategy: str = "rr",
        assignment: Optional[Mapping[int, int]] = None,
    ) -> List["BlockStore"]:
        """Split into ``num_shards`` disjoint stores sharing the same
        :class:`Block` objects (no data is copied).

        Strategies
        ----------
        ``"rr"``
            Round-robin by BID order: shard ``i`` owns every
            ``num_shards``-th block.  Balances block counts regardless
            of layout shape but scatters neighbouring qd-tree leaves
            across shards.
        ``"assigned"``
            An explicit BID -> shard mapping supplied via
            ``assignment`` (how the qd-tree subtree strategy is
            expressed; see
            :func:`repro.core.router.subtree_shard_assignment`).
            Every BID in the store must be mapped to a shard in
            ``[0, num_shards)``.

        Every shard keeps its own ``bid_set``, so per-shard membership
        checks and SMA pruning see only shard-local blocks.  Shard
        ``logical_rows`` is its stored row count: with replicated
        layouts the parent's logical/stored distinction is a property
        of the whole layout, not of any one shard.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if assignment is not None:
            strategy = "assigned"
        if strategy == "rr":
            shard_of = {
                bid: i % num_shards for i, bid in enumerate(self.block_ids)
            }
        elif strategy == "assigned":
            if assignment is None:
                raise ValueError("strategy 'assigned' requires an assignment")
            missing = self._bid_set - set(assignment)
            if missing:
                raise ValueError(f"assignment missing BIDs: {sorted(missing)}")
            shard_of = {bid: int(assignment[bid]) for bid in self.block_ids}
            bad = {s for s in shard_of.values() if not 0 <= s < num_shards}
            if bad:
                raise ValueError(
                    f"shard indices {sorted(bad)} out of range [0, {num_shards})"
                )
        else:
            raise ValueError(f"unknown partition strategy {strategy!r}")
        members: List[List[Block]] = [[] for _ in range(num_shards)]
        for block in self._blocks:
            members[shard_of[block.block_id]].append(block)
        return [BlockStore(self.schema, blocks) for blocks in members]

    def min_block_size(self) -> int:
        """Smallest block's row count (to verify the ``b`` constraint)."""
        if not self._blocks:
            return 0
        return min(b.num_rows for b in self._blocks)

    def encoded_nbytes(self) -> int:
        """Total encoded bytes across blocks."""
        return sum(b.encoded_nbytes for b in self._blocks)

    def storage_overhead(self) -> float:
        """stored_rows / logical_rows — 1.0 means no replication."""
        if self.logical_rows == 0:
            return 1.0
        return self.stored_rows / self.logical_rows

    def __repr__(self) -> str:
        return (
            f"BlockStore(blocks={self.num_blocks}, "
            f"rows={self.stored_rows})"
        )
