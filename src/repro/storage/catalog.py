"""On-disk persistence for block stores.

Each block is written as one ``.npz`` file (block-<bid>.npz) plus a
JSON catalog describing the schema, dictionaries, block descriptions and
row counts — the moral equivalent of a directory of Parquet files plus
a metastore entry.  Loading reconstructs a fully functional
:class:`~repro.storage.blocks.BlockStore` (re-encoding chunks and
rebuilding min-max indexes from the raw data).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from .blocks import Block, BlockStore
from .schema import Column, ColumnKind, Dictionary, Schema
from .table import Table

__all__ = [
    "META_FILE",
    "SIGNATURE_KEY",
    "TREE_FILE",
    "layout_meta_path",
    "layout_tree_path",
    "load_layout_meta",
    "load_store",
    "load_table",
    "save_layout_meta",
    "save_store",
    "save_table",
]

_CATALOG_NAME = "catalog.json"
_TABLE_NAME = "table.npz"

#: Canonical on-disk names of a layout directory's artifacts.  Both
#: the CLI and :class:`repro.db.Database` persistence go through these
#: (and the helpers below) so the two can never drift on what a saved
#: layout looks like: ``catalog.json`` + block npzs (the store),
#: ``TREE_FILE`` (the qd-tree, when the layout has one) and
#: ``META_FILE`` (strategy, generation and build workload).
TREE_FILE = "qdtree.json"
META_FILE = "layout-meta.json"

#: Key under which ``META_FILE`` carries the build-time workload
#: signature (:class:`repro.adapt.signature.WorkloadSignature` JSON).
#: Persisting it is what lets a reopened database's drift detector
#: know what mix the layout was built for.
SIGNATURE_KEY = "workload_signature"


def layout_tree_path(path: Union[str, Path]) -> Path:
    """Where a layout directory keeps its serialized qd-tree."""
    return Path(path) / TREE_FILE


def layout_meta_path(path: Union[str, Path]) -> Path:
    """Where a layout directory keeps its metadata document."""
    return Path(path) / META_FILE


def save_layout_meta(path: Union[str, Path], meta: Dict[str, object]) -> None:
    """Write a layout directory's metadata document."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    layout_meta_path(path).write_text(json.dumps(meta, indent=2))


def load_layout_meta(path: Union[str, Path]) -> Dict[str, object]:
    """Read a layout directory's metadata document."""
    meta_path = layout_meta_path(path)
    if not meta_path.exists():
        raise ValueError(f"no layout metadata ({META_FILE}) in {path}")
    return json.loads(meta_path.read_text())


def _schema_to_json(schema: Schema) -> List[Dict[str, object]]:
    out: List[Dict[str, object]] = []
    for col in schema:
        entry: Dict[str, object] = {"name": col.name, "kind": col.kind.value}
        if col.domain is not None:
            entry["domain"] = list(col.domain)
        if col.is_categorical:
            assert col.dictionary is not None
            entry["dictionary"] = [repr(v) for v in col.dictionary.values()]
            entry["dictionary_raw"] = [
                v if isinstance(v, (str, int, float, bool)) else repr(v)
                for v in col.dictionary.values()
            ]
        out.append(entry)
    return out


def _schema_from_json(data: List[Dict[str, object]]) -> Schema:
    columns = []
    for entry in data:
        kind = ColumnKind(entry["kind"])
        domain = tuple(entry["domain"]) if "domain" in entry else None  # type: ignore[arg-type]
        dictionary = None
        if kind is ColumnKind.CATEGORICAL:
            dictionary = Dictionary(entry.get("dictionary_raw", []))
        columns.append(
            Column(str(entry["name"]), kind, domain=domain, dictionary=dictionary)
        )
    return Schema(columns)


def save_table(table: Table, path: Union[str, Path]) -> None:
    """Persist a single table (schema + one npz of all columns)."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    with open(path / _CATALOG_NAME, "w") as f:
        json.dump({"schema": _schema_to_json(table.schema)}, f, indent=2)
    np.savez_compressed(path / _TABLE_NAME, **table.columns())


def load_table(path: Union[str, Path]) -> Table:
    """Inverse of :func:`save_table`."""
    path = Path(path)
    with open(path / _CATALOG_NAME) as f:
        meta = json.load(f)
    schema = _schema_from_json(meta["schema"])
    with np.load(path / _TABLE_NAME) as data:
        cols = {name: data[name] for name in schema.column_names}
    return Table(schema, cols)


def save_store(store: BlockStore, path: Union[str, Path]) -> None:
    """Persist a block store as one npz per block + a JSON catalog."""
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    blocks_meta = []
    for block in store:
        fname = f"block-{block.block_id}.npz"
        table = block.to_table()
        np.savez_compressed(path / fname, **table.columns())
        blocks_meta.append(
            {
                "block_id": block.block_id,
                "file": fname,
                "num_rows": block.num_rows,
                "description": block.description,
            }
        )
    catalog = {
        "schema": _schema_to_json(store.schema),
        "logical_rows": store.logical_rows,
        "blocks": blocks_meta,
    }
    with open(path / _CATALOG_NAME, "w") as f:
        json.dump(catalog, f, indent=2)


def load_store(
    path: Union[str, Path], with_dictionaries: bool = True
) -> BlockStore:
    """Inverse of :func:`save_store`."""
    path = Path(path)
    with open(path / _CATALOG_NAME) as f:
        catalog = json.load(f)
    schema = _schema_from_json(catalog["schema"])
    blocks = []
    for meta in catalog["blocks"]:
        with np.load(path / str(meta["file"])) as data:
            cols = {name: data[name] for name in schema.column_names}
        table = Table(schema, cols)
        blocks.append(
            Block(
                int(meta["block_id"]),
                table,
                description=meta.get("description"),
                with_dictionaries=with_dictionaries,
            )
        )
    return BlockStore(schema, blocks, logical_rows=int(catalog["logical_rows"]))
