"""Block-based columnar storage substrate.

Provides the storage layer the paper's experiments run on: dictionary-
encoded tables, encoded column chunks, physical blocks with min-max
(SMA) indexes, and npz/JSON persistence.
"""

from .blocks import Block, BlockStore
from .catalog import (
    META_FILE,
    TREE_FILE,
    layout_meta_path,
    layout_tree_path,
    load_layout_meta,
    load_store,
    load_table,
    save_layout_meta,
    save_store,
    save_table,
)
from .columnar import (
    EncodedChunk,
    Encoding,
    decode_chunk,
    encode_column,
)
from .minmax import ColumnStats, MinMaxIndex
from .schema import (
    Column,
    ColumnKind,
    Dictionary,
    Schema,
    SchemaError,
    categorical,
    numeric,
)
from .table import Table

__all__ = [
    "Block",
    "BlockStore",
    "META_FILE",
    "TREE_FILE",
    "Column",
    "ColumnKind",
    "ColumnStats",
    "Dictionary",
    "EncodedChunk",
    "Encoding",
    "MinMaxIndex",
    "Schema",
    "SchemaError",
    "Table",
    "categorical",
    "decode_chunk",
    "encode_column",
    "layout_meta_path",
    "layout_tree_path",
    "load_layout_meta",
    "load_store",
    "load_table",
    "numeric",
    "save_layout_meta",
    "save_store",
    "save_table",
]
