"""Lightweight columnar chunk encodings (dictionary, RLE, bit-width).

The paper stores each qd-tree leaf as a Parquet file (Sec. 7.1).  This
module provides the equivalent substrate for our engine: a self-
describing encoded representation per column chunk, so blocks persisted
by :mod:`repro.storage.blocks` behave like real columnar files —
encoded, size-accountable, and decodable column-at-a-time.

Encodings implemented:

``PLAIN``
    Raw int64/float64 buffer.
``RLE``
    Run-length encoding (values + run lengths); wins on sorted or
    low-cardinality chunks, as in Parquet's RLE pages.
``BITPACK``
    Offset + minimal-width unsigned packing for integer chunks with a
    narrow value range (dictionary codes especially).

:func:`encode_column` picks the smallest encoding, mirroring how real
writers choose per-page encodings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "Encoding",
    "EncodedChunk",
    "encode_column",
    "decode_chunk",
    "rle_encode",
    "rle_decode",
    "bitpack_encode",
    "bitpack_decode",
]


class Encoding(enum.Enum):
    """The chunk encodings :func:`encode_column` chooses among."""

    PLAIN = "plain"
    RLE = "rle"
    BITPACK = "bitpack"


@dataclass(frozen=True)
class EncodedChunk:
    """One encoded column chunk.

    ``payload`` is a tuple of numpy arrays whose meaning depends on the
    encoding; ``num_values`` is the decoded length and ``dtype`` the
    decoded dtype.
    """

    encoding: Encoding
    payload: Tuple[np.ndarray, ...]
    num_values: int
    dtype: np.dtype

    @property
    def nbytes(self) -> int:
        """Encoded size in bytes (what would hit storage)."""
        return sum(arr.nbytes for arr in self.payload)


# ----------------------------------------------------------------------
# Run-length encoding
# ----------------------------------------------------------------------


def rle_encode(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(run_values, run_lengths)`` for a 1-D array."""
    values = np.asarray(values)
    n = len(values)
    if n == 0:
        return values[:0], np.empty(0, dtype=np.int64)
    change = np.empty(n, dtype=bool)
    change[0] = True
    np.not_equal(values[1:], values[:-1], out=change[1:])
    starts = np.flatnonzero(change)
    run_values = values[starts]
    lengths = np.diff(np.append(starts, n)).astype(np.int64)
    return run_values, lengths


def rle_decode(run_values: np.ndarray, run_lengths: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rle_encode`."""
    return np.repeat(run_values, run_lengths)


# ----------------------------------------------------------------------
# Bit-width packing (offset + minimal unsigned width)
# ----------------------------------------------------------------------

_WIDTH_DTYPES = (
    (8, np.uint8),
    (16, np.uint16),
    (32, np.uint32),
    (64, np.uint64),
)


def _width_dtype(max_delta: int) -> np.dtype:
    bits = max(int(max_delta).bit_length(), 1)
    for width, dtype in _WIDTH_DTYPES:
        if bits <= width:
            return np.dtype(dtype)
    return np.dtype(np.uint64)


def bitpack_encode(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(offset[1], packed)`` for an integer array.

    Values are stored as ``value - min`` in the smallest unsigned dtype
    wide enough for the range.  (Byte-granular rather than true
    bit-granular packing: the compression behaviour is the same shape
    with far simpler code.)
    """
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError(f"bitpack requires integers, got {values.dtype}")
    if len(values) == 0:
        return np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.uint8)
    lo = int(values.min())
    hi = int(values.max())
    dtype = _width_dtype(hi - lo)
    packed = (values.astype(np.int64) - lo).astype(dtype)
    return np.array([lo], dtype=np.int64), packed


def bitpack_decode(offset: np.ndarray, packed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`bitpack_encode`."""
    return packed.astype(np.int64) + int(offset[0])


# ----------------------------------------------------------------------
# Chunk-level dispatch
# ----------------------------------------------------------------------


def encode_column(values: np.ndarray) -> EncodedChunk:
    """Encode a column chunk with the smallest applicable encoding."""
    values = np.asarray(values)
    candidates = [
        EncodedChunk(Encoding.PLAIN, (values,), len(values), values.dtype)
    ]
    run_values, run_lengths = rle_encode(values)
    candidates.append(
        EncodedChunk(
            Encoding.RLE, (run_values, run_lengths), len(values), values.dtype
        )
    )
    if np.issubdtype(values.dtype, np.integer):
        offset, packed = bitpack_encode(values)
        candidates.append(
            EncodedChunk(
                Encoding.BITPACK, (offset, packed), len(values), values.dtype
            )
        )
    return min(candidates, key=lambda c: c.nbytes)


def decode_chunk(chunk: EncodedChunk) -> np.ndarray:
    """Decode any :class:`EncodedChunk` back to its original array."""
    if chunk.encoding is Encoding.PLAIN:
        return chunk.payload[0]
    if chunk.encoding is Encoding.RLE:
        decoded = rle_decode(*chunk.payload)
    elif chunk.encoding is Encoding.BITPACK:
        decoded = bitpack_decode(*chunk.payload)
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unknown encoding {chunk.encoding}")
    return decoded.astype(chunk.dtype, copy=False)
