"""Min-max (small materialized aggregate / zone map) block indexes.

Every block in a scan-oriented store carries per-column minimum and
maximum values (paper Sec. 1, Sec. 8 "Partition Pruning").  The engine
consults this index to skip blocks whose value ranges cannot intersect a
query.  For categorical columns we additionally keep a distinct-value
bit set — the "block dictionary" the paper credits for categorical
pruning on Parquet (Sec. 7.5.1); the commercial-DBMS cost profile can be
configured without it to reproduce the paper's ``no route`` collapse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .table import Table

__all__ = ["ColumnStats", "MinMaxIndex"]


@dataclass(frozen=True)
class ColumnStats:
    """Per-block statistics for one column.

    ``minimum``/``maximum`` are over encoded values.  ``distinct`` is a
    ``|Dom|``-sized bit vector for categorical columns (1 = value
    present in the block) and ``None`` for numeric columns.
    """

    minimum: float
    maximum: float
    distinct: Optional[np.ndarray] = field(default=None)

    def contains_value(self, value: float) -> bool:
        """May the block contain ``value``? Exact for categoricals."""
        if not self.minimum <= value <= self.maximum:
            return False
        if self.distinct is not None:
            idx = int(value)
            if 0 <= idx < len(self.distinct):
                return bool(self.distinct[idx])
            return False
        return True

    def overlaps_range(
        self,
        lo: float,
        hi: float,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> bool:
        """May the block contain any value in the given interval?"""
        if hi < self.minimum or (hi == self.minimum and not hi_inclusive):
            return False
        if lo > self.maximum or (lo == self.maximum and not lo_inclusive):
            return False
        return True


class MinMaxIndex:
    """The SMA index over one block's rows.

    Parameters
    ----------
    stats:
        Column name -> :class:`ColumnStats`.  Columns absent from the
        mapping are treated as unbounded (the block can never be skipped
        on them).
    """

    def __init__(self, stats: Dict[str, ColumnStats]) -> None:
        self._stats = dict(stats)

    @classmethod
    def build(
        cls,
        table: Table,
        with_dictionaries: bool = True,
        columns: Optional[Sequence[str]] = None,
    ) -> "MinMaxIndex":
        """Compute the index over ``table``'s rows.

        ``with_dictionaries=False`` drops the categorical distinct-value
        bit sets, modelling engines without block-level dictionaries.
        """
        names = columns if columns is not None else table.schema.column_names
        stats: Dict[str, ColumnStats] = {}
        for name in names:
            arr = table.column(name)
            if len(arr) == 0:
                continue
            col = table.schema[name]
            distinct = None
            if col.is_categorical and with_dictionaries:
                dom = max(col.domain_size, int(arr.max()) + 1)
                distinct = np.zeros(dom, dtype=bool)
                distinct[np.unique(arr).astype(np.int64)] = True
            stats[name] = ColumnStats(
                minimum=float(arr.min()),
                maximum=float(arr.max()),
                distinct=distinct,
            )
        return cls(stats)

    def __contains__(self, column: str) -> bool:
        return column in self._stats

    def column_stats(self, column: str) -> Optional[ColumnStats]:
        """Stats for a column, or ``None`` when untracked."""
        return self._stats.get(column)

    def columns(self) -> Tuple[str, ...]:
        return tuple(self._stats)

    def bounds(self, column: str) -> Optional[Tuple[float, float]]:
        """(min, max) for a column, or ``None`` when untracked."""
        stats = self._stats.get(column)
        if stats is None:
            return None
        return stats.minimum, stats.maximum

    def without_dictionaries(self) -> "MinMaxIndex":
        """A copy that dropped all categorical distinct-value sets."""
        return MinMaxIndex(
            {
                name: ColumnStats(s.minimum, s.maximum, None)
                for name, s in self._stats.items()
            }
        )

    def __repr__(self) -> str:
        return f"MinMaxIndex(columns={list(self._stats)})"
