"""In-memory columnar table: the tuple set ``V`` of the paper.

A :class:`Table` pairs a :class:`~repro.storage.schema.Schema` with one
numpy array per column (all the same length).  Categorical columns hold
dictionary codes (int64); numeric columns hold int64 or float64.

Tables are immutable-by-convention: operations like :meth:`take` and
:meth:`sample` return new tables sharing column buffers where possible.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

from .schema import Column, ColumnKind, Schema, SchemaError

__all__ = ["Table"]


class Table:
    """A dictionary-encoded columnar table.

    Parameters
    ----------
    schema:
        Column definitions (owns categorical dictionaries).
    columns:
        Mapping from column name to a 1-D numpy array of encoded values.
        Every schema column must be present and all arrays must share
        one length.
    """

    def __init__(self, schema: Schema, columns: Mapping[str, np.ndarray]) -> None:
        self._schema = schema
        data: Dict[str, np.ndarray] = {}
        length: Optional[int] = None
        for col in schema:
            if col.name not in columns:
                raise SchemaError(f"missing data for column {col.name!r}")
            arr = np.asarray(columns[col.name])
            if arr.ndim != 1:
                raise SchemaError(
                    f"column {col.name!r} must be 1-D, got shape {arr.shape}"
                )
            if length is None:
                length = len(arr)
            elif len(arr) != length:
                raise SchemaError(
                    f"column {col.name!r} has length {len(arr)}, "
                    f"expected {length}"
                )
            data[col.name] = arr
        extra = set(columns) - set(schema.column_names)
        if extra:
            raise SchemaError(f"data for unknown columns: {sorted(extra)}")
        self._data = data
        self._length = length or 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_raw(
        cls, schema: Schema, raw: Mapping[str, Sequence[object]]
    ) -> "Table":
        """Build a table from raw (unencoded) python values.

        Categorical values are interned into the schema's dictionaries
        in first-seen order.
        """
        encoded: Dict[str, np.ndarray] = {}
        for col in schema:
            values = raw[col.name]
            if col.kind is ColumnKind.CATEGORICAL:
                assert col.dictionary is not None
                codes = np.fromiter(
                    (col.dictionary.add(v) for v in values), dtype=np.int64
                )
                encoded[col.name] = codes
            else:
                encoded[col.name] = np.asarray(values, dtype=np.float64)
        return cls(schema, encoded)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """A zero-row table with the given schema."""
        cols = {
            c.name: np.empty(0, dtype=np.int64 if c.is_categorical else np.float64)
            for c in schema
        }
        return cls(schema, cols)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return self._length

    def __len__(self) -> int:
        return self._length

    def column(self, name: str) -> np.ndarray:
        """The encoded array for column ``name``."""
        try:
            return self._data[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}") from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def columns(self) -> Dict[str, np.ndarray]:
        """A shallow copy of the name -> array mapping."""
        return dict(self._data)

    def row(self, index: int) -> Dict[str, object]:
        """Decode one row back to raw python values (for debugging)."""
        out: Dict[str, object] = {}
        for col in self._schema:
            out[col.name] = col.decode(self._data[col.name][index])
        return out

    def iter_rows(self) -> Iterator[Dict[str, object]]:
        """Iterate decoded rows (slow; intended for tests/examples)."""
        for i in range(self._length):
            yield self.row(i)

    # ------------------------------------------------------------------
    # Relational-ish operations
    # ------------------------------------------------------------------

    def take(self, indices: np.ndarray) -> "Table":
        """Select rows by position, preserving order."""
        idx = np.asarray(indices)
        cols = {name: arr[idx] for name, arr in self._data.items()}
        return Table(self._schema, cols)

    def filter(self, mask: np.ndarray) -> "Table":
        """Select rows where the boolean ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self._length:
            raise SchemaError(
                f"mask length {len(mask)} != table length {self._length}"
            )
        cols = {name: arr[mask] for name, arr in self._data.items()}
        return Table(self._schema, cols)

    def slice(self, start: int, stop: int) -> "Table":
        """Rows ``[start, stop)`` as a view-backed table."""
        cols = {name: arr[start:stop] for name, arr in self._data.items()}
        return Table(self._schema, cols)

    def sample(self, ratio: float, rng: np.random.Generator) -> "Table":
        """A uniform random sample of ``ratio`` of the rows.

        This is the construction sample the paper takes at algorithm
        initialization (Sec. 5.2.1; ``s`` between 0.1% and 1% is
        typical).  At least one row is returned for non-empty tables.
        """
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"sample ratio must be in (0, 1], got {ratio}")
        if self._length == 0:
            return self
        k = max(1, int(round(self._length * ratio)))
        idx = rng.choice(self._length, size=min(k, self._length), replace=False)
        idx.sort()
        return self.take(idx)

    def concat(self, other: "Table") -> "Table":
        """Stack two tables with identical schemas."""
        if other.schema.column_names != self._schema.column_names:
            raise SchemaError("cannot concat tables with different schemas")
        cols = {
            name: np.concatenate([arr, other._data[name]])
            for name, arr in self._data.items()
        }
        return Table(self._schema, cols)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def min_max(self, name: str) -> Tuple[float, float]:
        """(min, max) of a column; raises on empty tables."""
        arr = self._data[name]
        if len(arr) == 0:
            raise ValueError(f"min_max on empty column {name!r}")
        return float(arr.min()), float(arr.max())

    def distinct_codes(self, name: str) -> np.ndarray:
        """Sorted distinct encoded values of a column."""
        return np.unique(self._data[name])

    def nbytes(self) -> int:
        """Total in-memory size of the column buffers."""
        return sum(arr.nbytes for arr in self._data.values())

    def __repr__(self) -> str:
        return (
            f"Table(rows={self._length}, "
            f"cols={len(self._schema)})"
        )
