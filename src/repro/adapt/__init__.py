"""Online workload-drift adaptation: the control plane over serving.

The qd-tree paper builds a layout *once* from a training workload;
every layer grown since (serving, sharding, caching, multi-layout
arbitration) serves that frozen artifact.  This package closes the
loop the paper leaves as future work — **observe the live query
stream, learn realized costs, rebuild and hot-swap layouts in the
background**:

* :class:`QueryLog` (:mod:`~repro.adapt.log`) — bounded, thread-safe
  ring of normalized query fingerprints + realized per-query costs,
  fed by the ``RecordStage`` at the tail of every
  :class:`~repro.exec.pipeline.QueryPipeline` configuration;
* :class:`WorkloadSignature` / :func:`divergence`
  (:mod:`~repro.adapt.signature`) — comparable template/filter-column
  histograms; the build-time signature persists in layout metadata;
* :class:`DriftDetector` (:mod:`~repro.adapt.drift`) — windowed
  divergence between the build-time mix and the live log;
* :class:`LearnedArbiter` (:mod:`~repro.adapt.arbiter`) — ε-greedy
  bandit over layouts with realized-cost posteriors per (generation,
  template), a drop-in policy for the multi-layout
  :class:`~repro.exec.stages.ArbitrateStage`;
* :class:`Reoptimizer` (:mod:`~repro.adapt.reoptimize`) — drift-
  triggered background rebuild through the strategy registry, offline
  blocks-scanned evaluation, install-or-discard via the existing
  generation lifecycle;
* :class:`AdaptiveService` (:mod:`~repro.adapt.service`) — the
  serving facade tying it together, constructed via
  :meth:`repro.db.Database.auto_adapt`.
"""

from .arbiter import ArbiterStats, LearnedArbiter
from .drift import DriftDetector
from .log import QueryLog, QueryRecord
from .reoptimize import (
    AdaptEvent,
    AdaptPolicy,
    Reoptimizer,
    ReoptimizerStats,
    offline_blocks_cost,
)
from .service import AdaptiveService
from .signature import WorkloadSignature, divergence, template_key

__all__ = [
    "AdaptEvent",
    "AdaptPolicy",
    "AdaptiveService",
    "ArbiterStats",
    "DriftDetector",
    "LearnedArbiter",
    "QueryLog",
    "QueryRecord",
    "Reoptimizer",
    "ReoptimizerStats",
    "WorkloadSignature",
    "divergence",
    "offline_blocks_cost",
    "template_key",
]
