"""Background re-optimization: rebuild the layout the workload wants.

When the :class:`~repro.adapt.drift.DriftDetector` fires, the
:class:`Reoptimizer` closes the loop the paper leaves as future work:

1. **rebuild** — a candidate layout is built from the recent query
   log (frequency-weighted window SQL) through the existing
   :mod:`repro.db.registry` strategy registry, in a background thread,
   without touching the serving path (``activate=False`` — just
   another immutable generation);
2. **evaluate offline** — incumbent and candidate are compared on the
   logged window with the blocks-scanned cost model (route + min-max
   prune per query, frequency-weighted; no wall-clock, so the verdict
   is deterministic and single-core-fair);
3. **install or discard** — only a candidate beating the incumbent by
   ``min_improvement`` is installed, through the existing generation
   lifecycle (``db.swap_layout`` → result-cache purge), after which
   the detector is rebased onto the mix that triggered the rebuild.

Everything the loop needs from the database is duck-typed
(``build_layout`` / ``swap_layout`` / ``drop_layout`` /
``active_layout`` / ``planner``), so this module never imports
:mod:`repro.db`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from .drift import DriftDetector
from .log import QueryLog

__all__ = [
    "AdaptEvent",
    "AdaptPolicy",
    "Reoptimizer",
    "ReoptimizerStats",
    "offline_blocks_cost",
]


@dataclass(frozen=True)
class AdaptPolicy:
    """Knobs of the observe → detect → rebuild → swap loop."""

    #: Ring capacity of the query log feeding the loop.
    log_capacity: int = 4096
    #: Most-recent records the drift signature / rebuild workload use.
    window: int = 256
    #: Divergence (total variation, [0, 1]) that arms a rebuild.
    threshold: float = 0.3
    #: Evidence floor before any drift score counts.
    min_records: int = 32
    #: Drift is checked every this many recorded queries (the check is
    #: a histogram fold over the window — cheap, but not free).
    check_every: int = 16
    #: Strategy the candidate layout is rebuilt with (any registered
    #: name; the paper's greedy builder by default).
    strategy: str = "greedy"
    #: Fractional blocks-scanned improvement on the logged window the
    #: candidate must deliver to be installed (0.1 = 10% fewer).
    min_improvement: float = 0.1
    #: Arrivals to wait after a *rejected* rebuild before trying again
    #: (``None`` = half the window).  Early drift checks see a window
    #: still mixed with the old template; the cooldown lets the ring
    #: fill with the new mix instead of rebuilding on every check.
    cooldown: Optional[int] = None
    #: Drop the displaced incumbent from the database after a
    #: successful swap.  Every generation pins a full materialized
    #: copy of the table, so a long-running loop under recurring drift
    #: would otherwise grow memory by one dataset copy per swap.
    #: Disable to keep superseded generations around for rollback
    #: (caller-held handles stay usable either way).
    drop_superseded: bool = True

    def __post_init__(self) -> None:
        if self.window < 1 or self.log_capacity < self.window:
            raise ValueError("need log_capacity >= window >= 1")
        if not 0.0 <= self.min_improvement < 1.0:
            raise ValueError("min_improvement must be in [0, 1)")
        if self.check_every < 1:
            raise ValueError("check_every must be >= 1")
        if self.cooldown is not None and self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")

    @property
    def effective_cooldown(self) -> int:
        return (
            self.cooldown if self.cooldown is not None else self.window // 2
        )


@dataclass(frozen=True)
class AdaptEvent:
    """One completed rebuild decision (installed or discarded)."""

    kind: str  # "swap" | "rejected"
    drift_score: float
    strategy: str
    #: Window blocks-scanned cost, incumbent vs candidate.
    incumbent_blocks: int
    candidate_blocks: int
    #: Generation of the candidate layout (the new active generation
    #: when kind == "swap").
    generation: int

    @property
    def improvement(self) -> float:
        if self.incumbent_blocks <= 0:
            return 0.0
        return 1.0 - self.candidate_blocks / self.incumbent_blocks


@dataclass(frozen=True)
class ReoptimizerStats:
    """Counters over the re-optimizer's lifetime."""

    checks: int
    rebuilds: int
    swaps: int
    rejected: int
    in_progress: bool
    last_error: Optional[str] = None
    events: Tuple[AdaptEvent, ...] = field(default_factory=tuple)


def offline_blocks_cost(
    handle,
    weighted_queries: Sequence[Tuple[object, int]],
) -> int:
    """Blocks a layout would scan serving the weighted query list.

    Route (when the layout has a tree) + min-max prune per unique
    query, times its observed frequency — the avoided-work cost model
    every layout decision in this codebase reduces to.  No data is
    scanned and no wall-clock is read.
    """
    engine = handle.engine()
    router = handle.router()
    total = 0
    for query, count in weighted_queries:
        routed = (
            router.route(query).block_ids if router is not None else None
        )
        survivors = engine.prune_blocks(query, routed)
        total += count * len(survivors)
    return total


class Reoptimizer:
    """Drift-triggered background rebuild + evaluate + hot-swap.

    Parameters
    ----------
    db:
        The :class:`repro.db.Database` (duck-typed) owning layouts and
        the generation lifecycle.  Must hold a logical table (a
        layout-only database cannot rebuild).
    log / detector / policy:
        The observation ring, the armed drift detector, and the loop
        knobs.
    on_swap:
        Callback invoked (on the rebuild thread) with the newly
        installed :class:`~repro.db.LayoutHandle` after a successful
        swap — the adaptive service uses it to re-wire serving onto
        the new generation.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; when given, every
        drift check and rebuild decision records a control trace
        (``drift_check`` / ``rebuild``).  ``None`` keeps the hot-path
        ``poke`` untraced.
    """

    def __init__(
        self,
        db,
        log: QueryLog,
        detector: DriftDetector,
        policy: Optional[AdaptPolicy] = None,
        on_swap: Optional[Callable[[object], None]] = None,
        tracer: Optional[object] = None,
    ) -> None:
        if getattr(db, "table", None) is None:
            raise ValueError(
                "adaptation needs the logical table: a layout-only "
                "database cannot rebuild layouts"
            )
        self.db = db
        self.log = log
        self.detector = detector
        self.policy = policy or AdaptPolicy()
        self.on_swap = on_swap
        self.tracer = tracer
        self._lock = threading.Lock()
        #: Serializes rebuild bodies: poke()'s is-alive guard is only
        #: a cheap fast path, and adapt_now() may race the background
        #: thread — two concurrent rebuilds would double-swap and leak
        #: the first winner's generation.
        self._rebuild_mutex = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._arrivals = 0
        self._cooldown_until = 0
        self._checks = 0
        self._rebuilds = 0
        self._swaps = 0
        self._rejected = 0
        self._last_error: Optional[str] = None
        self._events: List[AdaptEvent] = []

    # -- the hot-path hook ---------------------------------------------

    def poke(self) -> bool:
        """Called after every recorded query (worker threads).  Cheap:
        a counter bump, a windowed histogram fold every
        ``check_every`` arrivals, and — at most once at a time — the
        launch of a background rebuild.  Returns whether a rebuild was
        launched."""
        with self._lock:
            if self._closed:
                return False
            self._arrivals += 1
            if self._arrivals % self.policy.check_every != 0:
                return False
            if self._arrivals < self._cooldown_until:
                return False
            if self._thread is not None and self._thread.is_alive():
                return False
            self._checks += 1
        tracer = self.tracer
        if tracer is not None:
            with tracer.control_span("drift_check") as attrs:
                drifted = self.detector.drifted(self.log)
                attrs["drifted"] = drifted
                attrs["score"] = self.detector.last_score
        else:
            drifted = self.detector.drifted(self.log)
        if not drifted:
            return False
        with self._lock:
            if self._closed or (
                self._thread is not None and self._thread.is_alive()
            ):
                return False
            self._rebuilds += 1
            self._thread = threading.Thread(
                target=self._rebuild_and_decide,
                name="repro-adapt-rebuild",
                daemon=True,
            )
            self._thread.start()
        return True

    def adapt_now(self) -> Optional[AdaptEvent]:
        """Synchronous rebuild + decision regardless of the detector —
        the deterministic entry point tests and the CLI use.  Returns
        the decision event (``None`` if the window was empty)."""
        with self._lock:
            self._rebuilds += 1
        return self._rebuild_and_decide()

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for an in-flight background rebuild to finish."""
        with self._lock:
            thread = self._thread
        if thread is not None:
            thread.join(timeout)

    def close(self) -> None:
        with self._lock:
            self._closed = True
        self.join()

    # -- the background loop body --------------------------------------

    def _rebuild_and_decide(self) -> Optional[AdaptEvent]:
        with self._rebuild_mutex:
            try:
                return self._traced_rebuild()
            except Exception as exc:  # the loop must never kill serving
                with self._lock:
                    self._last_error = f"{type(exc).__name__}: {exc}"
                    self._rejected += 1
                    self._cooldown_until = (
                        self._arrivals + self.policy.effective_cooldown
                    )
                return None

    def _traced_rebuild(self) -> Optional[AdaptEvent]:
        """Run the rebuild body, recording a ``rebuild`` control trace
        when a tracer is attached (attributes carry the decision)."""
        tracer = self.tracer
        if tracer is None:
            return self._rebuild_and_decide_inner()
        with tracer.control_span("rebuild") as attrs:
            event = self._rebuild_and_decide_inner()
            if event is None:
                attrs["kind"] = "empty_window"
            else:
                attrs.update(
                    kind=event.kind,
                    strategy=event.strategy,
                    drift_score=event.drift_score,
                    incumbent_blocks=event.incumbent_blocks,
                    candidate_blocks=event.candidate_blocks,
                    generation=event.generation,
                )
            return event

    def _rebuild_and_decide_inner(self) -> Optional[AdaptEvent]:
        drift_score = self.detector.last_score
        weighted_sql = self.log.statements(self.policy.window)
        if not weighted_sql:
            return None
        incumbent = self.db.active_layout
        # Frequency-weighted build workload: the window's statements,
        # repeated by observed count, so the builder optimizes for the
        # mix as served, not one-of-each.
        statements = [
            sql for sql, count in weighted_sql for _ in range(count)
        ]
        candidate = self.db.build_layout(
            self.policy.strategy,
            workload=statements,
            activate=False,
            label=f"adapt-{self.policy.strategy}",
        )
        planner = self.db.planner
        weighted_queries = [
            (planner.plan(sql).query, count) for sql, count in weighted_sql
        ]
        incumbent_blocks = offline_blocks_cost(incumbent, weighted_queries)
        candidate_blocks = offline_blocks_cost(candidate, weighted_queries)
        beats = candidate_blocks <= incumbent_blocks * (
            1.0 - self.policy.min_improvement
        )
        if beats:
            self.db.swap_layout(candidate)
            if self.policy.drop_superseded and incumbent is not None:
                try:
                    self.db.drop_layout(incumbent)
                except ValueError:
                    pass  # already dropped, or externally managed
            self.detector.rebase(self.log.signature(self.policy.window))
            event = AdaptEvent(
                kind="swap",
                drift_score=drift_score,
                strategy=self.policy.strategy,
                incumbent_blocks=incumbent_blocks,
                candidate_blocks=candidate_blocks,
                generation=candidate.generation,
            )
            with self._lock:
                self._swaps += 1
                self._events.append(event)
            if self.on_swap is not None:
                self.on_swap(candidate)
        else:
            self.db.drop_layout(candidate)
            event = AdaptEvent(
                kind="rejected",
                drift_score=drift_score,
                strategy=self.policy.strategy,
                incumbent_blocks=incumbent_blocks,
                candidate_blocks=candidate_blocks,
                generation=candidate.generation,
            )
            with self._lock:
                self._rejected += 1
                self._events.append(event)
                self._cooldown_until = (
                    self._arrivals + self.policy.effective_cooldown
                )
        return event

    # -- observability -------------------------------------------------

    def stats(self) -> ReoptimizerStats:
        with self._lock:
            return ReoptimizerStats(
                checks=self._checks,
                rebuilds=self._rebuilds,
                swaps=self._swaps,
                rejected=self._rejected,
                in_progress=(
                    self._thread is not None and self._thread.is_alive()
                ),
                last_error=self._last_error,
                events=tuple(self._events),
            )

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"Reoptimizer(swaps={s.swaps}, rejected={s.rejected}, "
            f"checks={s.checks}, in_progress={s.in_progress})"
        )
