"""Query-log capture: the observed side of the adaptation loop.

:class:`QueryLog` is a bounded, thread-safe ring of
:class:`QueryRecord` — one normalized fingerprint plus the *realized*
per-query costs (blocks surviving the prune, bytes scanned, cache
hit) for every statement the system served.  It is fed by the
``RecordStage`` at the tail of every
:class:`~repro.exec.pipeline.QueryPipeline` configuration, so the
serial baseline, ``db.execute``, :class:`LayoutService`, the sharded
coordinator and the multi-layout arbiter all populate the same log
shape.

The log answers two questions for the control plane:

* *what does live traffic look like?* — :meth:`signature` folds the
  most recent window into a
  :class:`~repro.adapt.signature.WorkloadSignature` the
  :class:`~repro.adapt.drift.DriftDetector` compares against the
  layout's build-time signature;
* *what would it cost to serve better?* — :meth:`statements` hands the
  window's SQL (frequency-weighted) to the
  :class:`~repro.adapt.reoptimize.Reoptimizer` as the training
  workload for a candidate layout.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .signature import WorkloadSignature, template_key

__all__ = ["QueryLog", "QueryRecord"]


@dataclass(frozen=True)
class QueryRecord:
    """One served query's fingerprint and realized cost."""

    sql: str
    #: Canonical filter shape (:func:`~repro.adapt.signature.template_key`).
    template: str
    #: Columns the filter referenced (sorted).
    filter_columns: Tuple[str, ...]
    #: Generation of the layout that answered (the arbitration winner's
    #: under multi-layout serving).
    generation: int
    blocks_considered: int
    blocks_scanned: int
    tuples_scanned: int
    bytes_read: int
    rows_returned: int
    #: True when the result came from the result cache (the costs above
    #: are then the original execution's — the deterministic cost of
    #: this layout, not of this arrival).
    cached: bool = False
    #: Label of the arbitration winner (multi-layout serving only).
    winner: Optional[str] = None


class QueryLog:
    """Bounded thread-safe ring of the most recent query records.

    Implements the record-sink protocol (:meth:`observe`) the
    pipeline's ``RecordStage`` calls, so a log can be passed directly
    as ``record_sink=`` to any serving facade or pipeline factory.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._records: "deque[QueryRecord]" = deque(maxlen=capacity)
        self._total = 0

    # -- the RecordStage sink protocol ---------------------------------

    def observe(self, ctx) -> None:
        """Fold one finished :class:`~repro.exec.context.ExecContext`
        into the ring (duck-typed so this module never imports
        :mod:`repro.exec`)."""
        query, stats = ctx.query, ctx.stats
        if query is None or stats is None:
            return
        self.append(
            QueryRecord(
                sql=ctx.sql,
                template=template_key(query),
                filter_columns=tuple(
                    sorted(query.predicate.referenced_columns())
                ),
                generation=ctx.generation,
                blocks_considered=stats.blocks_considered,
                blocks_scanned=stats.blocks_scanned,
                tuples_scanned=stats.tuples_scanned,
                bytes_read=stats.bytes_read,
                rows_returned=stats.rows_returned,
                cached=ctx.cached,
                winner=ctx.winner,
            )
        )

    def append(self, record: QueryRecord) -> None:
        with self._lock:
            self._records.append(record)
            self._total += 1

    # -- reading the window --------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def total_recorded(self) -> int:
        """Every record ever appended (ring overwrites don't subtract)."""
        with self._lock:
            return self._total

    def window(self, n: Optional[int] = None) -> Tuple[QueryRecord, ...]:
        """The ``n`` most recent records (default: the whole ring)."""
        with self._lock:
            records = tuple(self._records)
        if n is not None and n < len(records):
            records = records[-n:]
        return records

    def signature(self, n: Optional[int] = None) -> WorkloadSignature:
        """The live mix over the most recent window, as a signature.

        Goes through the same :meth:`WorkloadSignature.from_counts`
        constructor as the build-time side (no re-planning needed —
        the template/columns pair is everything ``from_queries`` would
        derive), so the two histograms are comparable by construction.
        """
        counts: Dict[Tuple[str, Tuple[str, ...]], int] = Counter(
            (r.template, r.filter_columns) for r in self.window(n)
        )
        return WorkloadSignature.from_counts(counts.items())

    def statements(
        self, n: Optional[int] = None
    ) -> List[Tuple[str, int]]:
        """Distinct SQL in the window with frequencies, most frequent
        first — the re-optimizer's training workload."""
        counts = Counter(r.sql for r in self.window(n))
        return counts.most_common()

    def blocks_scanned(self, n: Optional[int] = None) -> int:
        """Total blocks scanned over the window (uncached arrivals
        only — cached hits did no scan work)."""
        return sum(
            r.blocks_scanned for r in self.window(n) if not r.cached
        )

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"QueryLog({len(self._records)}/{self.capacity} records, "
                f"{self._total} total)"
            )
