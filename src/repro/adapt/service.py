"""Adaptive serving: a :class:`LayoutService` that re-learns its layout.

:class:`AdaptiveService` is the closed loop in one object.  It wraps
the ordinary single-layout serving facade and wires the adapt control
plane around it:

* every served query is recorded into a :class:`~repro.adapt.log
  .QueryLog` by the pipeline's tail stage;
* a :class:`~repro.adapt.drift.DriftDetector` periodically compares
  the live mix against the signature the active layout was built for;
* on drift, a :class:`~repro.adapt.reoptimize.Reoptimizer` rebuilds a
  candidate from the logged window in a **background thread**,
  evaluates it offline on the same window (blocks-scanned cost model)
  and — only if it wins by the policy margin — installs it through
  ``db.swap_layout`` (new generation, result-cache purge);
* the facade then **hot-swaps** its inner service onto the new
  generation: new arrivals serve from the new layout, in-flight
  queries finish on the old one (both generations hold identical
  rows, so every result stays bit-identical; ``ServeResult.generation``
  says which layout answered).

Clients keep the familiar surface: ``execute_sql`` / ``submit_sql`` /
``run_closed_loop`` / ``snapshot`` / ``report`` — plus the adaptation
ledger (:meth:`adapt_snapshot`, :attr:`events`).  Construct through
:meth:`repro.db.Database.auto_adapt`.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from ..engine.profiles import SPARK_PARQUET, CostProfile
from ..exec import ServeResult
from ..serve import (
    DEFAULT_CACHE_BUDGET,
    AdaptSnapshot,
    LayoutService,
    ReplayableService,
    ServingMetrics,
)
from ..serve.metrics import MetricsSnapshot
from .drift import DriftDetector
from .log import QueryLog
from .reoptimize import AdaptPolicy, Reoptimizer
from .signature import WorkloadSignature

__all__ = ["AdaptiveService"]


class _AdaptSink:
    """Pipeline record sink: log the query, then poke the loop.

    Deliberately tiny — it runs on serving worker threads, so it must
    never block (the reoptimizer's ``poke`` only bumps a counter and,
    every ``check_every`` arrivals, folds the window histogram; the
    rebuild itself always runs on its own thread).
    """

    def __init__(self, log: QueryLog, reoptimizer: Reoptimizer) -> None:
        self.log = log
        self.reoptimizer = reoptimizer

    def observe(self, ctx) -> None:
        self.log.observe(ctx)
        self.reoptimizer.poke()


class AdaptiveService(ReplayableService):
    """Single-layout serving with online workload-drift adaptation.

    Parameters
    ----------
    db:
        The owning :class:`repro.db.Database`; must hold a logical
        table (rebuilds need the rows) and an active layout.
    policy:
        The :class:`~repro.adapt.reoptimize.AdaptPolicy` loop knobs.
    profile / cache_budget_bytes / max_workers / queue_depth /
    admission:
        Forwarded to each inner :class:`LayoutService` (including the
        ones created by hot swaps).
    result_cache:
        The generation-keyed result cache the inner services consult;
        defaults to the database's shared cache (which the swap purges
        per the generation lifecycle).  ``None`` disables result
        caching (e.g. for uncached benchmarking).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` shared by every
        inner service across hot swaps AND the control plane — one
        tracer sees query traces from every generation plus the
        ``drift_check`` / ``rebuild`` / ``generation_swap`` control
        traces, on one timeline.
    """

    _UNSET = object()

    def __init__(
        self,
        db,
        policy: Optional[AdaptPolicy] = None,
        profile: CostProfile = SPARK_PARQUET,
        cache_budget_bytes: Optional[int] = DEFAULT_CACHE_BUDGET,
        max_workers: int = 4,
        queue_depth: int = 64,
        admission: str = "lru",
        result_cache: object = _UNSET,
        tracer: Optional[object] = None,
    ) -> None:
        active = db.active_layout
        if active is None:
            raise ValueError(
                "no layout yet: call build_layout() before auto_adapt()"
            )
        self.db = db
        self.policy = policy or AdaptPolicy()
        self._profile = profile
        self._cache_budget = cache_budget_bytes
        self._max_workers = max_workers
        self._queue_depth = queue_depth
        self._admission = admission
        self._result_cache = (
            db.result_cache if result_cache is self._UNSET else result_cache
        )
        self.tracer = tracer
        #: One collector across hot swaps: the observation window is
        #: the service's, not any single generation's.
        self.metrics = ServingMetrics()
        self.log = QueryLog(self.policy.log_capacity)
        baseline = active.workload_signature or WorkloadSignature()
        self.detector = DriftDetector(
            baseline,
            window=self.policy.window,
            threshold=self.policy.threshold,
            min_records=self.policy.min_records,
        )
        self.reoptimizer = Reoptimizer(
            db,
            self.log,
            self.detector,
            self.policy,
            on_swap=self._install,
            tracer=tracer,
        )
        self._sink = _AdaptSink(self.log, self.reoptimizer)
        self._swap_lock = threading.Lock()
        self._service = self._make_service(active)

    # -- generation hot-swap -------------------------------------------

    def _make_service(self, handle) -> LayoutService:
        return LayoutService(
            handle.store,
            handle.tree,
            profile=self._profile,
            num_advanced_cuts=handle.num_advanced_cuts,
            cache_budget_bytes=self._cache_budget,
            max_workers=self._max_workers,
            queue_depth=self._queue_depth,
            planner=self.db.planner,
            result_cache=self._result_cache,
            generation=handle.generation,
            metrics=self.metrics,
            record_sink=self._sink,
            admission=self._admission,
            tracer=self.tracer,
        )

    def _install(self, handle) -> None:
        """Hot-swap serving onto a freshly installed generation
        (called on the rebuild thread).  New arrivals see the new
        inner service immediately; the old scheduler drains its
        in-flight queries before shutting down, and those late results
        are still correct — their generation's store holds the same
        rows, it just skips fewer blocks."""
        tracer = self.tracer
        if tracer is not None:
            with tracer.control_span("generation_swap") as attrs:
                attrs["generation"] = handle.generation
                self._install_inner(handle)
        else:
            self._install_inner(handle)

    def _install_inner(self, handle) -> None:
        new = self._make_service(handle)
        with self._swap_lock:
            old, self._service = self._service, new
        old.close()
        # db.swap_layout purged the database's shared cache; a private
        # cache is ours to keep hygienic, or each swap would strand
        # the prior generation's entries as unreachable garbage.
        rc = self._result_cache
        if rc is not None and rc is not self.db.result_cache:
            rc.retain(handle.generation)

    @property
    def service(self) -> LayoutService:
        """The current inner service (changes across hot swaps)."""
        with self._swap_lock:
            return self._service

    @property
    def generation(self) -> int:
        """Generation currently being served."""
        return self.service.generation

    # -- the client surface --------------------------------------------

    def execute_sql(self, sql: str) -> ServeResult:
        """Serve one statement synchronously on the caller's thread."""
        return self.service.pipeline.execute(sql, time.perf_counter())

    def submit_sql(
        self, sql: str, block: bool = True, timeout: Optional[float] = None
    ):
        """Admit one statement; returns its future.  Retries once if a
        hot swap closed the scheduler between the reference read and
        the submit (the new service accepts the work)."""
        for attempt in (0, 1):
            service = self.service
            try:
                return service.submit_sql(sql, block=block, timeout=timeout)
            except RuntimeError:
                # Scheduler shut down mid-swap; re-read and retry once.
                if attempt or service is self.service:
                    raise
        raise AssertionError("unreachable")

    def collect_row_ids(self, sql: str):
        return self.service.collect_row_ids(sql)

    # -- observability & lifecycle -------------------------------------

    def adapt_snapshot(self) -> AdaptSnapshot:
        r = self.reoptimizer.stats()
        return AdaptSnapshot(
            drift_score=self.detector.last_score,
            swaps=r.swaps,
            rebuilds=r.rebuilds,
            rejected=r.rejected,
            log_records=len(self.log),
        )

    @property
    def events(self):
        """Completed rebuild decisions, oldest first."""
        return self.reoptimizer.stats().events

    def _cache_stats(self):
        return self.service._cache_stats()

    def snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot(
            self._cache_stats(), adapt=self.adapt_snapshot()
        )

    def _window_snapshot(self, cache_before) -> MetricsSnapshot:
        now = self._cache_stats()
        if now is None:
            cache = None
        elif cache_before is None:
            cache = now
        else:
            cache = now.since(cache_before)
            if cache.hits < 0 or cache.misses < 0:
                # A hot swap replaced the buffer pool mid-window:
                # `cache_before` belongs to the retired cache, so the
                # delta is meaningless.  The new pool's lifetime stats
                # ARE the window since the swap — report those.
                cache = now
        return self.metrics.snapshot(cache, adapt=self.adapt_snapshot())

    def publish_metrics(self, registry: object, **labels: object) -> None:
        """Publish the shared serving collector plus adapt-loop
        counters into a :class:`~repro.obs.registry.MetricsRegistry`.
        The serving collector survives hot swaps, so the registry view
        does too."""
        self.metrics.publish(registry, **labels)

        from ..obs.registry import Sample

        def collect():
            a = self.adapt_snapshot()
            yield Sample.of(
                "repro_adapt_drift_score",
                a.drift_score,
                labels,
                "Live-vs-baseline workload divergence",
                "gauge",
            )
            yield Sample.of(
                "repro_adapt_swaps_total",
                a.swaps,
                labels,
                "Generation hot-swaps installed",
                "counter",
            )
            yield Sample.of(
                "repro_adapt_rebuilds_total",
                a.rebuilds,
                labels,
                "Background rebuilds attempted",
                "counter",
            )
            yield Sample.of(
                "repro_adapt_rejected_total",
                a.rejected,
                labels,
                "Candidates built but discarded",
                "counter",
            )
            yield Sample.of(
                "repro_adapt_log_records",
                a.log_records,
                labels,
                "Records in the query-log ring",
                "gauge",
            )
            yield Sample.of(
                "repro_adapt_generation",
                self.generation,
                labels,
                "Generation currently serving",
                "gauge",
            )

        registry.register_collector(collect, name="adapt")

    def report(self) -> str:
        """Operator-facing report: serving window + adaptation ledger."""
        lines = [self.snapshot().report()]
        handle = self.db.active_layout
        lines.append(
            f"serving generation {self.generation} "
            f"({handle.strategy if handle else '?'}, "
            f"{self.service.store.num_blocks} blocks)"
        )
        for event in self.events:
            lines.append(
                f"  [{event.kind}] drift {event.drift_score:.3f}: "
                f"window blocks {event.incumbent_blocks} -> "
                f"{event.candidate_blocks} "
                f"({100 * event.improvement:+.1f}% improvement, "
                f"{event.strategy}, gen {event.generation})"
            )
        return "\n".join(lines)

    def join_adaptation(self, timeout: Optional[float] = None) -> None:
        """Wait for an in-flight background rebuild (tests, shutdown)."""
        self.reoptimizer.join(timeout)

    def close(self) -> None:
        self.reoptimizer.close()
        self.service.close()

    def __repr__(self) -> str:
        r = self.reoptimizer.stats()
        return (
            f"AdaptiveService(gen={self.generation}, "
            f"drift={self.detector.last_score:.3f}, swaps={r.swaps})"
        )
