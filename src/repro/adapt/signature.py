"""Workload signatures: what a query mix *looks like*, comparably.

A layout is only as good as the workload it was built for (the paper
trains the qd-tree on ``W`` and assumes queries keep resembling it).
To notice when that assumption breaks, both the build-time workload
and the live query stream are summarized into a
:class:`WorkloadSignature` — a pair of normalized histograms:

* ``templates`` — mass per *template key*, a canonical description of
  a query's filter shape (which columns, which operators).  Queries
  planned from SQL usually carry no explicit template name, so the key
  is derived from the predicate itself (:func:`template_key`), which
  makes two streams comparable even when neither was labelled.
* ``columns`` — mass per filter column (each query spreads its unit
  of mass evenly over the columns its predicate references).

Signatures are plain value objects: JSON-round-trippable (they are
persisted into layout metadata via the catalog, so a reopened database
still knows what its layout was built for) and comparable through
:func:`divergence` — a total-variation distance in ``[0, 1]`` where
``0`` means identical mixes and ``1`` means disjoint ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..core.predicates import AdvancedCut, ColumnPredicate
from ..core.workload import Query

__all__ = [
    "WorkloadSignature",
    "divergence",
    "template_key",
]


def template_key(query: Query) -> str:
    """A canonical name for a query's filter *shape*.

    Always derived from the predicate leaves — the sorted, deduped set
    of ``column op`` (and advanced-cut names) — so e.g. every instance
    of ``x >= ? AND x < ?`` maps to ``"x < & x >="`` regardless of its
    literals.  The query's *declared* ``template`` label is
    deliberately ignored: build workloads are often labelled
    (``repro.workloads`` generators set ``template=``) while live
    SQL-planned traffic never is, and keying the two sides differently
    would make identical statements look permanently divergent.
    Literals are excluded too: drift in *where the constants land*
    shows up in the realized-cost posteriors, while drift in *which
    columns are filtered* is what the template histogram is for.
    """
    parts = set()
    for leaf in query.predicate.leaves():
        if isinstance(leaf, ColumnPredicate):
            parts.add(f"{leaf.column} {leaf.op.value}")
        elif isinstance(leaf, AdvancedCut):
            parts.add(f"AC[{leaf.name}]")
        else:
            parts.add(repr(leaf))
    return " & ".join(sorted(parts)) if parts else "TRUE"


def _normalize(weights: Dict[str, float]) -> Dict[str, float]:
    total = sum(weights.values())
    if total <= 0:
        return {}
    return {k: v / total for k, v in sorted(weights.items())}


@dataclass(frozen=True)
class WorkloadSignature:
    """Normalized template/filter-column histograms of a query mix."""

    templates: Mapping[str, float] = field(default_factory=dict)
    columns: Mapping[str, float] = field(default_factory=dict)
    #: How many queries the signature summarizes (0 = empty signature).
    weight: int = 0

    @classmethod
    def from_counts(
        cls,
        weighted_shapes: Iterable[Tuple[Tuple[str, Tuple[str, ...]], int]],
    ) -> "WorkloadSignature":
        """The one histogram constructor: ``((template key, filter
        columns), count)`` pairs in, normalized signature out.  Both
        the build-time path (:meth:`from_queries`) and the live path
        (:meth:`repro.adapt.log.QueryLog.signature`) delegate here, so
        the mass-spreading and normalization rules cannot drift apart
        — a skew between the two sides would silently bias every
        drift score."""
        templates: Dict[str, float] = {}
        columns: Dict[str, float] = {}
        total = 0
        for (template, cols), n in weighted_shapes:
            n = int(n)
            if n <= 0:
                continue
            total += n
            templates[template] = templates.get(template, 0.0) + n
            if cols:
                share = n / len(cols)
                for col in cols:
                    columns[col] = columns.get(col, 0.0) + share
        return cls(
            templates=_normalize(templates),
            columns=_normalize(columns),
            weight=total,
        )

    @classmethod
    def from_queries(
        cls,
        queries: Iterable[Query],
        counts: Optional[Sequence[int]] = None,
    ) -> "WorkloadSignature":
        """Summarize planned queries (optionally frequency-weighted)."""
        return cls.from_counts(
            (
                (
                    template_key(query),
                    tuple(sorted(query.predicate.referenced_columns())),
                ),
                int(counts[i]) if counts is not None else 1,
            )
            for i, query in enumerate(queries)
        )

    @property
    def empty(self) -> bool:
        return self.weight == 0

    # -- persistence (layout-meta JSON) --------------------------------

    def to_json(self) -> Dict[str, object]:
        return {
            "templates": dict(self.templates),
            "columns": dict(self.columns),
            "weight": self.weight,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "WorkloadSignature":
        return cls(
            templates={
                str(k): float(v)
                for k, v in dict(data.get("templates", {})).items()
            },
            columns={
                str(k): float(v)
                for k, v in dict(data.get("columns", {})).items()
            },
            weight=int(data.get("weight", 0)),
        )

    def __repr__(self) -> str:
        top = sorted(self.templates.items(), key=lambda kv: -kv[1])[:3]
        shown = ", ".join(f"{k}: {v:.2f}" for k, v in top)
        return f"WorkloadSignature(weight={self.weight}, top=[{shown}])"


def _total_variation(
    p: Mapping[str, float], q: Mapping[str, float]
) -> float:
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def divergence(a: WorkloadSignature, b: WorkloadSignature) -> float:
    """Distance between two workload mixes in ``[0, 1]``.

    The max of the total-variation distances over the template and
    filter-column histograms: a shift in *either* view counts (two
    mixes can share columns but split into different templates, or
    vice versa).  Comparing against an empty signature scores ``0`` —
    no evidence is not evidence of drift.
    """
    if a.empty or b.empty:
        return 0.0
    return max(
        _total_variation(a.templates, b.templates),
        _total_variation(a.columns, b.columns),
    )
