"""Workload-drift detection: when does the live mix stop resembling
the mix the layout was built for?

:class:`DriftDetector` holds the layout's build-time
:class:`~repro.adapt.signature.WorkloadSignature` (persisted in
layout metadata, so it survives ``Database.save``/``open``) and scores
the divergence between it and the most recent window of the
:class:`~repro.adapt.log.QueryLog`.  The score is total-variation
distance in ``[0, 1]``; crossing ``threshold`` with at least
``min_records`` of evidence arms the re-optimizer.

After a successful swap the detector is :meth:`rebase`-d onto the
window that triggered it — the new layout was built *for* that mix,
so it becomes the new "no drift" reference.
"""

from __future__ import annotations

import threading
from typing import Optional

from .log import QueryLog
from .signature import WorkloadSignature, divergence

__all__ = ["DriftDetector"]


class DriftDetector:
    """Windowed divergence between a baseline and the live mix.

    Parameters
    ----------
    baseline:
        The build-time workload signature (empty signature = never
        fires; there is nothing to drift *from*).
    window:
        Number of most-recent log records the live signature covers.
    threshold:
        Divergence in ``[0, 1]`` at which :meth:`drifted` turns true.
    min_records:
        Evidence floor: the live window must hold at least this many
        records before any score counts (a two-query window trivially
        diverges from anything).
    """

    def __init__(
        self,
        baseline: Optional[WorkloadSignature] = None,
        window: int = 256,
        threshold: float = 0.3,
        min_records: int = 32,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if window < 1 or min_records < 1:
            raise ValueError("window and min_records must be >= 1")
        self._lock = threading.Lock()
        self._baseline = baseline or WorkloadSignature()
        self.window = window
        self.threshold = threshold
        self.min_records = min_records
        self._last_score = 0.0

    @property
    def baseline(self) -> WorkloadSignature:
        with self._lock:
            return self._baseline

    @property
    def last_score(self) -> float:
        """The most recently computed drift score."""
        with self._lock:
            return self._last_score

    def score(self, log: QueryLog) -> float:
        """Divergence between the baseline and the live window
        (``0.0`` until the window holds ``min_records`` records)."""
        live = log.signature(self.window)
        value = (
            0.0
            if live.weight < self.min_records
            else divergence(self.baseline, live)
        )
        with self._lock:
            self._last_score = value
        return value

    def drifted(self, log: QueryLog) -> bool:
        """True when the live mix has moved past the threshold."""
        return self.score(log) >= self.threshold

    def rebase(self, baseline: WorkloadSignature) -> None:
        """Adopt a new reference mix (called after a layout swap: the
        new layout was built for the drifted mix, so that mix is now
        the expectation)."""
        with self._lock:
            self._baseline = baseline
            self._last_score = 0.0

    def __repr__(self) -> str:
        return (
            f"DriftDetector(threshold={self.threshold}, "
            f"window={self.window}, last_score={self.last_score:.3f})"
        )
