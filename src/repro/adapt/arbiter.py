"""Learned multi-layout arbitration: realized costs over priors.

The static arbiter scores every candidate layout with **(blocks
surviving the min-max prune, estimated bytes the filter columns
occupy)** and takes the lexicographic argmin.  The first component is
exact — the prune *is* the scan's block list — but the second is a
min-max-stats estimate that knows nothing about what serving actually
pays (projection columns, dictionary widths, repeated templates).

:class:`LearnedArbiter` is a drop-in ``policy`` for
:class:`~repro.exec.stages.ArbitrateStage` that keeps the exact blocks
component as the primary criterion (so it can never scan *more* blocks
than the static arbiter) and replaces the bytes estimate with a
**realized-cost posterior** per (layout generation, template key),
learned online from the record sink.  Decision rule per arrival:

1. score each layout ``(blocks_surviving, posterior mean realized
   bytes)``, falling back to the static min-max bytes prior for
   (generation, template) arms that have never been observed;
2. with probability ``epsilon``, explore uniformly among the arms
   *tied on the exact blocks minimum* (exploration is free in blocks,
   it only samples the bytes dimension);
3. otherwise exploit: lexicographic argmin of the learned scores.

Because the primary component is exact and exploration never leaves
the blocks-minimal set, cumulative blocks scanned is ≤ the static
arbiter's by construction; on a stationary workload the posteriors
converge and the winners coincide with the static choice whenever the
priors ranked the layouts correctly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .signature import template_key

__all__ = ["ArbiterStats", "LearnedArbiter"]


@dataclass(frozen=True)
class ArbiterStats:
    """Counters describing the learned arbiter's behaviour so far."""

    #: Arbitration decisions taken.
    decisions: int
    #: Decisions that agreed with the static (blocks, bytes-estimate)
    #: argmin — the arbiter's "wins with the prior", convergence signal.
    agreements: int
    #: Decisions taken by ε-exploration rather than exploitation.
    explored: int
    #: Cumulative estimated extra bytes accepted to explore (chosen
    #: arm's learned bytes − best arm's learned bytes at decision
    #: time).  Zero in blocks: exploration never leaves the
    #: blocks-minimal set.
    regret_bytes: int
    #: Distinct (generation, template) arms with observed posteriors.
    arms_learned: int
    #: Realized-cost observations folded into the posteriors.
    observations: int

    @property
    def agreement_rate(self) -> float:
        return self.agreements / self.decisions if self.decisions else 0.0


class LearnedArbiter:
    """ε-greedy bandit over layouts, keyed by (generation, template).

    Implements both seams of the adaptive multi-layout loop: the
    ``policy`` protocol of :class:`~repro.exec.stages.ArbitrateStage`
    (:meth:`choose`) and the record-sink protocol of the pipeline's
    tail stage (:meth:`observe`), so wiring it in is::

        arbiter = LearnedArbiter(epsilon=0.05, seed=0)
        db.serve_multi(layouts, arbiter=arbiter)   # wires both ends

    Parameters
    ----------
    epsilon:
        Exploration probability among blocks-tied arms.  ``0`` makes
        the policy deterministic (pure exploitation over posteriors).
    seed:
        RNG seed for exploration draws (deterministic replays).
    """

    def __init__(self, epsilon: float = 0.05, seed: int = 0) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        #: (generation, template) -> (observations, mean realized bytes)
        self._posterior: Dict[Tuple[int, str], Tuple[int, float]] = {}
        self._decisions = 0
        self._agreements = 0
        self._explored = 0
        self._regret_bytes = 0
        self._observations = 0

    # -- the ArbitrateStage policy protocol ----------------------------

    def choose(
        self,
        query,
        bindings: Sequence[object],
        scores: Sequence[Tuple[int, int]],
    ) -> int:
        """Pick a layout index for this arrival (see module docstring)."""
        template = template_key(query)
        with self._lock:
            learned = []
            for binding, (blocks, bytes_est) in zip(bindings, scores):
                arm = (binding.generation, template)
                seen = self._posterior.get(arm)
                learned.append(
                    (blocks, seen[1] if seen is not None else float(bytes_est))
                )
            min_blocks = min(b for b, _ in learned)
            tied = [
                i for i, (b, _) in enumerate(learned) if b == min_blocks
            ]
            greedy = min(tied, key=lambda i: (learned[i][1], i))
            explore = (
                len(tied) > 1
                and self.epsilon > 0.0
                and self._rng.random() < self.epsilon
            )
            index = (
                int(tied[self._rng.integers(len(tied))]) if explore else greedy
            )
            self._decisions += 1
            static = min(range(len(scores)), key=lambda i: scores[i])
            if index == static:
                self._agreements += 1
            if explore:
                self._explored += 1
                self._regret_bytes += int(
                    round(learned[index][1] - learned[greedy][1])
                )
            return index

    # -- the RecordStage sink protocol ---------------------------------

    def observe(self, ctx) -> None:
        """Fold one finished execution's realized cost back into the
        posterior of the (generation, template) arm that served it."""
        query, stats = ctx.query, ctx.stats
        if query is None or stats is None:
            return
        arm = (ctx.generation, template_key(query))
        with self._lock:
            count, mean = self._posterior.get(arm, (0, 0.0))
            count += 1
            mean += (float(stats.bytes_read) - mean) / count
            self._posterior[arm] = (count, mean)
            self._observations += 1

    # -- observability -------------------------------------------------

    def posterior(
        self, generation: int, template: str
    ) -> Optional[Tuple[int, float]]:
        """(observations, mean realized bytes) for one arm, if seen."""
        with self._lock:
            return self._posterior.get((generation, template))

    def stats(self) -> ArbiterStats:
        with self._lock:
            return ArbiterStats(
                decisions=self._decisions,
                agreements=self._agreements,
                explored=self._explored,
                regret_bytes=self._regret_bytes,
                arms_learned=len(self._posterior),
                observations=self._observations,
            )

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"LearnedArbiter(decisions={s.decisions}, "
            f"agreement={s.agreement_rate:.2f}, arms={s.arms_learned})"
        )
