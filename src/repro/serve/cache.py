"""Memory-budgeted LRU buffer pool of decoded column arrays.

A scan engine re-decodes every block's filter columns on each query
(the paper's experiments run each query once, so this never mattered).
Under serving traffic the same (block, column) pairs are read over and
over; :class:`BlockCache` keeps decoded arrays in memory under a byte
budget with LRU eviction, shared across all queries and worker
threads.

The cache is a :data:`~repro.engine.executor.ColumnReader`: plug it
into :class:`~repro.engine.executor.ScanEngine` via ``column_reader=
cache.read_columns`` and cached and uncached execution share one scan
code path.

``admission="lfu"`` puts a tiny-LFU-style frequency gate in front of
the LRU: every (block, column) access bumps a decayed frequency
counter, and an insert that would evict may only proceed if the
newcomer has been touched at least as often as the LRU victim it
displaces.  One-shot scans of cold blocks then flow *through* the
cache without flushing the hot working set — the classic
scan-resistance failure of plain LRU.  Admission only decides what is
*kept*, never what is *returned*, so results are bit-identical under
either policy.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..storage.blocks import Block

__all__ = ["BlockCache", "CacheStats"]


@dataclass(frozen=True)
class CacheStats:
    """A consistent point-in-time snapshot of cache accounting."""

    hits: int
    misses: int
    evictions: int
    entries: int
    cached_bytes: int
    budget_bytes: int
    #: Bytes decoded on misses (the work the cache exists to avoid).
    decoded_bytes: int
    #: Bytes served straight from the pool (decode work avoided).
    served_bytes: int
    #: Inserts the LFU admission gate turned away (0 under plain LRU).
    admission_rejections: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @classmethod
    def merged(cls, parts: Sequence["CacheStats"]) -> "CacheStats":
        """Aggregate accounting across shards: counters and residency
        sum (each shard owns its own budget, like separate machines)."""
        return cls(
            hits=sum(p.hits for p in parts),
            misses=sum(p.misses for p in parts),
            evictions=sum(p.evictions for p in parts),
            entries=sum(p.entries for p in parts),
            cached_bytes=sum(p.cached_bytes for p in parts),
            budget_bytes=sum(p.budget_bytes for p in parts),
            decoded_bytes=sum(p.decoded_bytes for p in parts),
            served_bytes=sum(p.served_bytes for p in parts),
            admission_rejections=sum(p.admission_rejections for p in parts),
        )

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """Activity between ``earlier`` and this snapshot: cumulative
        counters become deltas; residency fields (entries,
        cached/budget bytes) keep this snapshot's point-in-time
        values."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            entries=self.entries,
            cached_bytes=self.cached_bytes,
            budget_bytes=self.budget_bytes,
            decoded_bytes=self.decoded_bytes - earlier.decoded_bytes,
            served_bytes=self.served_bytes - earlier.served_bytes,
            admission_rejections=(
                self.admission_rejections - earlier.admission_rejections
            ),
        )


#: Frequency counters are capped here (a key can't hoard history) and
#: halved once this many accesses have been sampled (old popularity
#: decays, so the gate tracks the *current* working set).
_FREQ_CAP = 15
_FREQ_SAMPLE_LIMIT = 32_768


class BlockCache:
    """Thread-safe LRU cache of decoded column arrays.

    Parameters
    ----------
    budget_bytes:
        Maximum decoded bytes held at once.  Inserting past the budget
        evicts least-recently-used entries; a single column larger than
        the whole budget is served decode-through (never cached).
    admission:
        ``"lru"`` (default) admits every insert; ``"lfu"`` adds the
        tiny-LFU frequency gate described in the module docstring —
        an insert may only displace the LRU victim if the newcomer has
        been accessed at least as often.  Either way, returned arrays
        are identical; only retention differs.
    """

    def __init__(self, budget_bytes: int, admission: str = "lru") -> None:
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        if admission not in ("lru", "lfu"):
            raise ValueError(
                f"admission must be 'lru' or 'lfu', got {admission!r}"
            )
        self.budget_bytes = budget_bytes
        self.admission = admission
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[int, str], np.ndarray]" = OrderedDict()
        self._cached_bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._decoded_bytes = 0
        self._served_bytes = 0
        self._admission_rejections = 0
        #: Decayed access-frequency sketch (LFU admission only).
        self._freq: Dict[Tuple[int, str], int] = {}
        self._freq_samples = 0

    # ------------------------------------------------------------------
    # The ColumnReader hook
    # ------------------------------------------------------------------

    def read_columns(
        self, block: Block, names: Sequence[str]
    ) -> Dict[str, np.ndarray]:
        """Serve decoded columns, filling the pool on misses.

        Cached arrays are marked read-only before they are shared:
        every consumer (and every thread) sees the same immutable
        buffer, so a hit is a dict lookup, not a copy.

        Columns requested by one call are equally recent; processing
        them in sorted-name order makes the LRU order — and therefore
        eviction under equal-recency ties — independent of the order
        the caller listed the names, so differential runs with a fixed
        seed reproduce the same cache state and eviction counts.
        """
        out: Dict[str, np.ndarray] = {}
        missing = []
        names = sorted(set(names))
        with self._lock:
            for name in names:
                key = (block.block_id, name)
                if self.admission == "lfu":
                    self._touch(key)
                arr = self._entries.get(key)
                if arr is not None:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    self._served_bytes += arr.nbytes
                    out[name] = arr
                else:
                    self._misses += 1
                    missing.append(name)
        # Decode outside the lock: numpy decode kernels release the GIL,
        # so concurrent misses on different blocks overlap.
        for name in missing:
            decoded = block.read_column(name)
            # Freeze a *view*, never the decoded array itself: for
            # PLAIN chunks read_column returns the block's own payload
            # by reference, and freezing that would make the block
            # (and any caller-owned source array) read-only for good.
            arr = decoded.view()
            arr.setflags(write=False)
            out[name] = arr
            with self._lock:
                self._decoded_bytes += arr.nbytes
                self._insert((block.block_id, name), arr)
        return out

    # ------------------------------------------------------------------

    def _touch(self, key: Tuple[int, str]) -> None:
        """Bump the decayed access-frequency counter (held lock)."""
        self._freq[key] = min(self._freq.get(key, 0) + 1, _FREQ_CAP)
        self._freq_samples += 1
        if self._freq_samples >= _FREQ_SAMPLE_LIMIT:
            # Halve every counter (dropping zeros) so popularity decays
            # and the sketch cannot grow without bound.
            self._freq = {
                k: v // 2 for k, v in self._freq.items() if v >= 2
            }
            self._freq_samples = 0

    def _insert(self, key: Tuple[int, str], arr: np.ndarray) -> None:
        """Insert under the held lock, evicting LRU entries to fit.

        Under LFU admission, each needed eviction is gated: the
        newcomer must have been accessed at least as often as the LRU
        victim it would displace, otherwise the insert is rejected and
        the resident working set survives (the newcomer was served
        decode-through either way).
        """
        if arr.nbytes > self.budget_bytes:
            return  # decode-through: can never fit
        existing = self._entries.pop(key, None)
        if existing is not None:
            self._cached_bytes -= existing.nbytes
        if self.admission == "lfu":
            freq_new = self._freq.get(key, 0)
            while self._cached_bytes + arr.nbytes > self.budget_bytes:
                victim = next(iter(self._entries))
                if self._freq.get(victim, 0) > freq_new:
                    self._admission_rejections += 1
                    return
                _, evicted = self._entries.popitem(last=False)
                self._cached_bytes -= evicted.nbytes
                self._evictions += 1
        self._entries[key] = arr
        self._cached_bytes += arr.nbytes
        while self._cached_bytes > self.budget_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._cached_bytes -= evicted.nbytes
            self._evictions += 1

    def invalidate(self, block_id: Optional[int] = None) -> int:
        """Drop entries for one BID (or all); returns entries dropped."""
        with self._lock:
            if block_id is None:
                dropped = len(self._entries)
                self._entries.clear()
                self._cached_bytes = 0
                return dropped
            keys = [k for k in self._entries if k[0] == block_id]
            for key in keys:
                self._cached_bytes -= self._entries.pop(key).nbytes
            return len(keys)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                cached_bytes=self._cached_bytes,
                budget_bytes=self.budget_bytes,
                decoded_bytes=self._decoded_bytes,
                served_bytes=self._served_bytes,
                admission_rejections=self._admission_rejections,
            )

    def publish(self, registry: object, **labels: object) -> None:
        """Publish a collector view of :meth:`stats` into a
        :class:`~repro.obs.registry.MetricsRegistry` (thin view — the
        :class:`CacheStats` snapshot stays the source of truth)."""
        from ..obs.registry import Sample

        def collect():
            s = self.stats()
            counters = (
                ("repro_cache_hits_total", s.hits, "Buffer-pool hits"),
                ("repro_cache_misses_total", s.misses, "Buffer-pool misses"),
                ("repro_cache_evictions_total", s.evictions, "Evictions"),
                (
                    "repro_cache_decoded_bytes_total",
                    s.decoded_bytes,
                    "Bytes decoded on misses",
                ),
                (
                    "repro_cache_served_bytes_total",
                    s.served_bytes,
                    "Bytes served straight from the pool",
                ),
                (
                    "repro_cache_admission_rejections_total",
                    s.admission_rejections,
                    "Inserts the admission gate turned away",
                ),
            )
            for name, value, help_text in counters:
                yield Sample.of(name, value, labels, help_text, "counter")
            gauges = (
                ("repro_cache_entries", s.entries, "Resident entries"),
                ("repro_cache_bytes", s.cached_bytes, "Resident bytes"),
                ("repro_cache_budget_bytes", s.budget_bytes, "Byte budget"),
            )
            for name, value, help_text in gauges:
                yield Sample.of(name, value, labels, help_text, "gauge")

        registry.register_collector(collect, name="block_cache")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"BlockCache(entries={s.entries}, "
            f"bytes={s.cached_bytes}/{s.budget_bytes}, "
            f"hit_rate={s.hit_rate:.2f})"
        )
