"""Serving-side observability: latency, throughput, cache efficiency.

:class:`ServingMetrics` is a thread-safe collector the
:class:`~repro.serve.service.LayoutService` feeds once per completed
query.  :meth:`ServingMetrics.snapshot` freezes the counters into a
:class:`MetricsSnapshot` with the numbers an operator watches: QPS,
latency percentiles (p50/p95/p99), cache hit rate, and bytes decoded
versus bytes served from the buffer pool.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..engine.executor import QueryStats
from .cache import CacheStats

__all__ = ["AdaptSnapshot", "MetricsSnapshot", "ServingMetrics"]


@dataclass(frozen=True)
class AdaptSnapshot:
    """Adaptation-loop observability attached to a metrics snapshot.

    Filled by the :mod:`repro.adapt` control plane (the serving tier
    itself never computes these): the current drift score, the
    rebuild/swap ledger, and — under learned multi-layout arbitration
    — the bandit's win/regret counters (``arbiter`` is duck-typed to
    :class:`repro.adapt.arbiter.ArbiterStats` so this module stays
    independent of the control plane).
    """

    #: Divergence between the build-time and live workload mixes.
    drift_score: float = 0.0
    #: Background rebuilds installed via generation swap.
    swaps: int = 0
    #: Rebuilds attempted (swaps + rejected + in flight).
    rebuilds: int = 0
    #: Candidates built but discarded (insufficient improvement).
    rejected: int = 0
    #: Records currently in the query-log ring.
    log_records: int = 0
    #: Learned-arbiter counters, when one is attached.
    arbiter: Optional[object] = None

    def report_lines(self) -> Tuple[str, ...]:
        lines = [
            f"drift score        {self.drift_score:.3f}",
            (
                f"adaptation         {self.swaps} swaps / "
                f"{self.rebuilds} rebuilds / {self.rejected} rejected "
                f"({self.log_records} log records)"
            ),
        ]
        if self.arbiter is not None:
            a = self.arbiter
            lines.append(
                f"learned arbiter    {a.decisions} decisions / "
                f"{100 * a.agreement_rate:.1f}% agree with prior / "
                f"{a.explored} explored / regret {a.regret_bytes} bytes "
                f"({a.arms_learned} arms)"
            )
        return tuple(lines)


@dataclass(frozen=True)
class MetricsSnapshot:
    """Frozen serving metrics over one observation window.

    ``bytes_read`` counts decoded bytes queries consumed; with a
    buffer pool attached, ``cache.decoded_bytes`` /
    ``cache.served_bytes`` split that into real decode work versus
    pool hits.
    """

    queries: int
    window_seconds: float
    qps: float
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    blocks_scanned: int
    tuples_scanned: int
    rows_returned: int
    bytes_read: int
    cache: Optional[CacheStats] = None
    #: Multi-layout arbitration: (layout label, queries won) pairs,
    #: most wins first; empty outside multi-layout serving.
    layout_wins: Tuple[Tuple[str, int], ...] = ()
    #: Adaptation-loop counters (``None`` outside adaptive serving).
    adapt: Optional[AdaptSnapshot] = None

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate if self.cache is not None else 0.0

    @property
    def bytes_decoded(self) -> int:
        """Bytes actually decoded (all of ``bytes_read`` when no
        buffer pool sits in front of the scan)."""
        if self.cache is not None:
            return self.cache.decoded_bytes
        return self.bytes_read

    def report(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"queries            {self.queries}",
            f"window             {self.window_seconds:.3f} s",
            f"throughput         {self.qps:.1f} qps",
            (
                f"latency mean/p50   {self.latency_mean_ms:.3f} / "
                f"{self.latency_p50_ms:.3f} ms"
            ),
            (
                f"latency p95/p99    {self.latency_p95_ms:.3f} / "
                f"{self.latency_p99_ms:.3f} ms"
            ),
            f"blocks scanned     {self.blocks_scanned}",
            f"tuples scanned     {self.tuples_scanned}",
            f"rows returned      {self.rows_returned}",
            f"bytes read         {self.bytes_read}",
            f"bytes decoded      {self.bytes_decoded}",
        ]
        if self.cache is not None:
            lines.append(
                f"cache hit rate     {100 * self.cache.hit_rate:.1f}% "
                f"({self.cache.hits} hits / {self.cache.misses} misses, "
                f"{self.cache.evictions} evictions)"
            )
            lines.append(
                f"cache residency    {self.cache.cached_bytes}/"
                f"{self.cache.budget_bytes} bytes "
                f"in {self.cache.entries} entries"
            )
        if self.layout_wins:
            won = ", ".join(f"{label}: {n}" for label, n in self.layout_wins)
            lines.append(f"layout wins        {won}")
        if self.adapt is not None:
            lines.extend(self.adapt.report_lines())
        return "\n".join(lines)


def _percentile(latencies_ms: np.ndarray, q: float) -> float:
    """Percentile that degenerates to 0.0 on an empty window instead
    of letting ``np.percentile`` raise on a zero-length sample."""
    return float(np.percentile(latencies_ms, q)) if len(latencies_ms) else 0.0


class ServingMetrics:
    """Accumulates per-query observations from concurrent workers.

    Latency samples are kept in a bounded window (``max_samples`` most
    recent) so a long-lived service cannot grow without limit; the
    scalar counters stay cumulative.
    """

    def __init__(self, max_samples: int = 100_000) -> None:
        self._lock = threading.Lock()
        self._latencies: "deque[float]" = deque(maxlen=max_samples)
        self._queries = 0
        self._blocks_scanned = 0
        self._tuples_scanned = 0
        self._rows_returned = 0
        self._bytes_read = 0
        self._wins: Dict[str, int] = {}
        self._window_start = time.perf_counter()
        self._last_record = self._window_start

    def record(
        self,
        latency_seconds: float,
        stats: QueryStats,
        cached: bool = False,
        winner: Optional[str] = None,
    ) -> None:
        """Record one completed query (called by any worker thread).

        ``cached=True`` marks a result served from a result cache: the
        query and its latency count (traffic really happened) and so
        does ``rows_returned`` (results really left the service), but
        the scan-work counters do NOT — no block was touched, and
        double-booking the original execution's tuples/bytes here
        would inflate the IO report with work that never ran.

        ``winner`` is the label of the layout the multi-layout arbiter
        picked for this query (counted for cached hits too: the
        decision stands, the cache merely spared the scan).
        """
        with self._lock:
            self._latencies.append(latency_seconds)
            self._queries += 1
            self._rows_returned += stats.rows_returned
            if not cached:
                self._blocks_scanned += stats.blocks_scanned
                self._tuples_scanned += stats.tuples_scanned
                self._bytes_read += stats.bytes_read
            if winner is not None:
                self._wins[winner] = self._wins.get(winner, 0) + 1
            self._last_record = time.perf_counter()

    def win_counts(self) -> Dict[str, int]:
        """Per-layout queries won (multi-layout serving only)."""
        with self._lock:
            return dict(self._wins)

    def reset(self) -> None:
        """Start a fresh observation window."""
        with self._lock:
            self._latencies.clear()
            self._queries = 0
            self._blocks_scanned = 0
            self._tuples_scanned = 0
            self._rows_returned = 0
            self._bytes_read = 0
            self._wins.clear()
            self._window_start = time.perf_counter()
            self._last_record = self._window_start

    def publish(self, registry: object, **labels: object) -> None:
        """Publish this collector into a
        :class:`~repro.obs.registry.MetricsRegistry`.

        Registers a collector callback that freezes one
        :class:`MetricsSnapshot` per export — this object stays the
        source of truth and its snapshot stays the API; the registry
        merely *views* it (no behavior change, no double accounting).
        """
        from ..obs.registry import Sample

        def collect():
            snap = self.snapshot()
            counters = (
                ("repro_serve_queries_total", snap.queries, "Queries served"),
                (
                    "repro_serve_blocks_scanned_total",
                    snap.blocks_scanned,
                    "Blocks scanned (cache hits excluded)",
                ),
                (
                    "repro_serve_tuples_scanned_total",
                    snap.tuples_scanned,
                    "Tuples scanned (cache hits excluded)",
                ),
                (
                    "repro_serve_rows_returned_total",
                    snap.rows_returned,
                    "Rows returned to clients",
                ),
                (
                    "repro_serve_bytes_read_total",
                    snap.bytes_read,
                    "Decoded bytes queries consumed",
                ),
            )
            for name, value, help_text in counters:
                yield Sample.of(name, value, labels, help_text, "counter")
            gauges = (
                ("repro_serve_qps", snap.qps, "Window throughput"),
                (
                    "repro_serve_window_seconds",
                    snap.window_seconds,
                    "Observation window length",
                ),
                (
                    "repro_serve_latency_mean_ms",
                    snap.latency_mean_ms,
                    "Mean latency over the window",
                ),
                (
                    "repro_serve_latency_p50_ms",
                    snap.latency_p50_ms,
                    "Median latency over the window",
                ),
                (
                    "repro_serve_latency_p95_ms",
                    snap.latency_p95_ms,
                    "p95 latency over the window",
                ),
                (
                    "repro_serve_latency_p99_ms",
                    snap.latency_p99_ms,
                    "p99 latency over the window",
                ),
            )
            for name, value, help_text in gauges:
                yield Sample.of(name, value, labels, help_text, "gauge")
            for layout, wins in snap.layout_wins:
                yield Sample.of(
                    "repro_serve_layout_wins_total",
                    wins,
                    {**labels, "layout": layout},
                    "Queries each layout won under arbitration",
                    "counter",
                )

        registry.register_collector(collect, name="serving_metrics")

    def snapshot(
        self,
        cache: Optional[CacheStats] = None,
        adapt: Optional[AdaptSnapshot] = None,
    ) -> MetricsSnapshot:
        """Freeze the current window (optionally attaching cache and
        adaptation accounting so one report covers the whole serving
        stack)."""
        with self._lock:
            wins = tuple(
                sorted(self._wins.items(), key=lambda kv: (-kv[1], kv[0]))
            )
            if not self._latencies and self._queries == 0:
                # Empty window: all-zero snapshot (percentiles included)
                # rather than asking numpy for percentiles of nothing.
                return MetricsSnapshot(
                    queries=0,
                    window_seconds=0.0,
                    qps=0.0,
                    latency_mean_ms=0.0,
                    latency_p50_ms=0.0,
                    latency_p95_ms=0.0,
                    latency_p99_ms=0.0,
                    blocks_scanned=0,
                    tuples_scanned=0,
                    rows_returned=0,
                    bytes_read=0,
                    cache=cache,
                    layout_wins=wins,
                    adapt=adapt,
                )
            lat_ms = np.asarray(self._latencies, dtype=np.float64) * 1000.0
            window = max(self._last_record - self._window_start, 0.0)
            queries = self._queries
            # Window spans from collector start/reset to the last
            # completion; an empty window degenerates to qps 0.
            qps = queries / window if window > 0 else 0.0
            return MetricsSnapshot(
                queries=queries,
                window_seconds=window,
                qps=qps,
                latency_mean_ms=float(lat_ms.mean()) if len(lat_ms) else 0.0,
                latency_p50_ms=_percentile(lat_ms, 50),
                latency_p95_ms=_percentile(lat_ms, 95),
                latency_p99_ms=_percentile(lat_ms, 99),
                blocks_scanned=self._blocks_scanned,
                tuples_scanned=self._tuples_scanned,
                rows_returned=self._rows_returned,
                bytes_read=self._bytes_read,
                cache=cache,
                layout_wins=wins,
                adapt=adapt,
            )
