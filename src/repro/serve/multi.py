"""Cost-arbitrated serving over several layouts of one table.

The qd-tree paper's core promise is routing each query to the layout
that skips the most blocks.  :class:`MultiLayoutService` delivers the
multi-layout version of that promise: the same table is served under
several :class:`~repro.db.LayoutHandle`-style layouts at once, and a
cost-model arbiter (:class:`~repro.exec.stages.ArbitrateStage`) routes
each unique predicate against every layout's qd-tree, scores the
candidates with a **blocks-surviving × bytes-scanned** model (min-max
stats as the priors that drive the prune), and executes on the argmin
layout.  Per-layout win counts land in :class:`ServingMetrics`
(``snapshot().layout_wins``), so a skewed workload visibly splits its
templates across the layouts that serve them cheapest.

This facade is the first genuinely *new* consumer of the shared
:class:`~repro.exec.pipeline.QueryPipeline`: it reuses the plan,
result-cache (keyed by the winning layout's generation) and scan
stages unchanged — only the route stage differs.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.router import QueryRouter
from ..engine.executor import ScanEngine
from ..engine.profiles import SPARK_PARQUET, CostProfile
from ..exec import LayoutBinding, ServeResult, multi_layout_pipeline
from ..sql.planner import SqlPlanner
from .cache import BlockCache, CacheStats
from .metrics import AdaptSnapshot, MetricsSnapshot, ServingMetrics
from .result_cache import ResultCache
from .scheduler import Scheduler
from .service import DEFAULT_CACHE_BUDGET, ReplayableService

__all__ = ["MultiLayoutService"]


class _SinkChain:
    """Fan one pipeline record out to several observers, in order."""

    def __init__(self, sinks) -> None:
        self.sinks = tuple(sinks)

    def observe(self, ctx) -> None:
        for sink in self.sinks:
            sink.observe(ctx)


def _chain_sinks(*sinks):
    """Collapse optional sinks into one (``None`` when all absent)."""
    present = [s for s in sinks if s is not None]
    if not present:
        return None
    if len(present) == 1:
        return present[0]
    return _SinkChain(present)


def _bindings_for(
    layouts: Sequence[object],
    profile: CostProfile,
    cache_budget_bytes: Optional[int],
) -> Tuple[Tuple[LayoutBinding, ...], Tuple[Optional[BlockCache], ...]]:
    """Build one (engine + router) binding per layout handle.

    ``layouts`` is duck-typed (``store``, ``tree``, ``generation``,
    ``num_advanced_cuts`` and a ``label``/``strategy`` name) so this
    module never imports :mod:`repro.db`.  Labels are disambiguated
    with the generation when two layouts share a name — win counts
    must be attributable.
    """
    labels = [
        getattr(handle, "label", "") or getattr(handle, "strategy", "layout")
        for handle in layouts
    ]
    duplicated = {label for label in labels if labels.count(label) > 1}
    labels = [
        f"{label}@gen{getattr(layouts[i], 'generation', i)}"
        if label in duplicated
        else label
        for i, label in enumerate(labels)
    ]
    per_layout_budget = (
        cache_budget_bytes // len(layouts) if cache_budget_bytes else None
    )
    bindings = []
    caches = []
    for handle, label in zip(layouts, labels):
        cache = BlockCache(per_layout_budget) if per_layout_budget else None
        engine = ScanEngine(
            handle.store,
            profile,
            num_advanced_cuts=getattr(handle, "num_advanced_cuts", 0),
            column_reader=cache.read_columns if cache is not None else None,
        )
        tree = getattr(handle, "tree", None)
        router = (
            QueryRouter(tree, max_latency_samples=10_000)
            if tree is not None
            else None
        )
        bindings.append(
            LayoutBinding(
                label=label,
                generation=getattr(handle, "generation", 0),
                store=handle.store,
                engine=engine,
                router=router,
            )
        )
        caches.append(cache)
    return tuple(bindings), tuple(caches)


class MultiLayoutService(ReplayableService):
    """Serve one table under several layouts, cheapest layout wins.

    Parameters
    ----------
    layouts:
        The candidate layouts (e.g. :class:`repro.db.LayoutHandle`
        instances).  Order matters only for ties: the earliest layout
        wins a tied score.
    profile:
        Cost profile shared by every layout's engine (one model, one
        comparable score).
    cache_budget_bytes:
        TOTAL buffer-pool budget, split evenly across layouts;
        ``0``/``None`` disables block caching.
    max_workers / queue_depth:
        Scheduler sizing (one pool serves all layouts — the arbiter
        decides where each query scans).
    planner:
        Shared planner (same advanced-cut caveat as
        :class:`~repro.serve.service.LayoutService`).
    result_cache:
        Optional generation-keyed result cache; entries key on the
        *winning* layout's generation, so the cache is exactly as
        stale-proof as single-layout serving.
    arbiter_policy:
        Optional pluggable arbitration policy (duck-typed
        ``choose(query, bindings, scores) -> index``, e.g.
        :class:`repro.adapt.arbiter.LearnedArbiter`); the static
        lexicographic argmin when ``None``.  A policy that also
        implements ``observe(ctx)`` is automatically wired as a
        record sink so realized costs feed its posteriors.
    record_sink:
        Optional query-log sink at the pipeline tail (chained after
        the policy's own observer when both are present).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; traced queries
        carry an ``arbitrate`` span with the winning layout label and
        generation.
    """

    def __init__(
        self,
        layouts: Sequence[object],
        profile: CostProfile = SPARK_PARQUET,
        cache_budget_bytes: Optional[int] = DEFAULT_CACHE_BUDGET,
        max_workers: int = 4,
        queue_depth: int = 64,
        planner: Optional[SqlPlanner] = None,
        result_cache: Optional[ResultCache] = None,
        arbiter_policy: Optional[object] = None,
        record_sink: Optional[object] = None,
        tracer: Optional[object] = None,
    ) -> None:
        layouts = list(layouts)
        if not layouts:
            raise ValueError("serve_multi needs at least one layout")
        schema = layouts[0].store.schema
        self.planner = planner if planner is not None else SqlPlanner(schema)
        self.profile = profile
        self.bindings, self._block_caches = _bindings_for(
            layouts, profile, cache_budget_bytes
        )
        self.metrics = ServingMetrics()
        self.scheduler = Scheduler(max_workers=max_workers, queue_depth=queue_depth)
        self.result_cache = result_cache
        self.arbiter_policy = arbiter_policy
        self.pipeline = multi_layout_pipeline(
            planner=self.planner,
            bindings=self.bindings,
            profile=profile,
            result_cache=result_cache,
            metrics=self.metrics,
            arbiter_policy=arbiter_policy,
            record_sink=_chain_sinks(
                arbiter_policy
                if hasattr(arbiter_policy, "observe")
                else None,
                record_sink,
            ),
            tracer=tracer,
        )
        self.tracer = tracer
        self._arbiter = self.pipeline.stage("route")

    # ------------------------------------------------------------------
    # Execution (delegates to the shared pipeline)
    # ------------------------------------------------------------------

    def _serve(self, sql: str, admitted_at: float) -> ServeResult:
        return self.pipeline.execute(sql, admitted_at)

    def execute_sql(self, sql: str) -> ServeResult:
        """Serve one statement synchronously; ``result.winner`` names
        the layout the arbiter picked."""
        return self._serve(sql, time.perf_counter())

    def submit_sql(
        self, sql: str, block: bool = True, timeout: Optional[float] = None
    ):
        """Admit one statement to the scheduler; returns its future."""
        return self.scheduler.submit(
            self._serve, sql, time.perf_counter(), block=block, timeout=timeout
        )

    def collect_row_ids(self, sql: str) -> np.ndarray:
        """Matched row ids through the winning layout (cached in the
        byte-bounded row-id store under the winner's generation)."""
        return self.pipeline.collect_row_ids(sql)

    # ------------------------------------------------------------------
    # Observability & lifecycle
    # ------------------------------------------------------------------

    @property
    def win_counts(self) -> Dict[str, int]:
        """Queries won per layout label in the current window."""
        return self.metrics.win_counts()

    def arbiter_scores(self, sql: str) -> Tuple[Tuple[str, Tuple[int, int]], ...]:
        """(label, (blocks surviving, estimated bytes)) per layout for
        one statement — the explain path for an arbitration decision."""
        query = self.planner.plan(sql).query
        choice = self._arbiter.choice_for(query)
        return tuple(
            (binding.label, score)
            for binding, score in zip(self.bindings, choice.scores)
        )

    def _cache_stats(self) -> Optional[CacheStats]:
        parts = [c.stats() for c in self._block_caches if c is not None]
        return CacheStats.merged(parts) if parts else None

    def snapshot(self) -> MetricsSnapshot:
        """Current-window metrics; under a learning policy the
        arbiter's win/regret counters ride along in ``adapt``."""
        adapt = None
        policy = self.arbiter_policy
        if policy is not None and hasattr(policy, "stats"):
            adapt = AdaptSnapshot(arbiter=policy.stats())
        return self.metrics.snapshot(self._cache_stats(), adapt=adapt)

    def publish_metrics(self, registry: object, **labels: object) -> None:
        """Publish this facade's collectors into a
        :class:`~repro.obs.registry.MetricsRegistry` (serving metrics
        incl. layout wins, scheduler, per-layout block caches)."""
        self.metrics.publish(registry, **labels)
        self.scheduler.publish(registry, **labels)
        for binding, cache in zip(self.bindings, self._block_caches):
            if cache is not None:
                cache.publish(registry, layout=binding.label, **labels)

    def report(self) -> str:
        """Operator-facing text report for the current window."""
        snap = self.snapshot()
        sched = self.scheduler.stats()
        lines = [snap.report()]
        lines.append(
            f"arbiter            {len(self.bindings)} layouts / "
            f"{len(self._arbiter.memo)} unique predicates scored"
        )
        lines.append(
            f"scheduler          {sched.submitted} submitted / "
            f"{sched.completed} completed / {sched.rejected} rejected "
            f"(peak in-flight {sched.max_in_flight})"
        )
        if self.result_cache is not None:
            rc = self.result_cache.stats()
            lines.append(
                f"result cache       {rc.entries} entries / "
                f"{100 * rc.hit_rate:.1f}% hit rate "
                f"({rc.tuples_avoided} tuple-scans avoided, "
                f"{rc.row_id_bytes} row-id bytes)"
            )
        return "\n".join(lines)

    def close(self) -> None:
        self.scheduler.shutdown()

    def __repr__(self) -> str:
        labels = ", ".join(b.label for b in self.bindings)
        return f"MultiLayoutService(layouts=[{labels}])"
