"""Thread-pool scheduler with bounded admission control.

A naive ``ThreadPoolExecutor`` accepts unbounded work: under heavy
traffic its internal queue grows without limit and tail latency
explodes.  :class:`Scheduler` caps the number of admitted-but-
unfinished queries at ``max_workers + queue_depth``; past that, a
submit either blocks (closed-loop clients) or raises
:class:`AdmissionRejected` (open-loop clients shed load).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..exec.errors import AdmissionRejected

__all__ = ["AdmissionRejected", "Scheduler", "SchedulerStats"]


@dataclass(frozen=True)
class SchedulerStats:
    """Counters describing scheduler behaviour so far.

    The counters reconcile by construction and tests assert it:
    ``submitted`` (admitted) = ``completed`` + ``in_flight``, and every
    offered unit of work is either admitted or ``rejected`` (shed).
    """

    submitted: int
    completed: int
    rejected: int
    max_in_flight: int
    #: Admitted but not yet finished at snapshot time.
    in_flight: int = 0

    @property
    def offered(self) -> int:
        """Everything clients tried to submit (admitted + shed)."""
        return self.submitted + self.rejected

    @classmethod
    def merged(cls, parts: Sequence["SchedulerStats"]) -> "SchedulerStats":
        """Aggregate across shards.  ``max_in_flight`` sums: each shard
        pool peaks independently, so the sum is the topology's peak
        concurrent capacity actually used (an upper bound on the true
        simultaneous peak)."""
        return cls(
            submitted=sum(p.submitted for p in parts),
            completed=sum(p.completed for p in parts),
            rejected=sum(p.rejected for p in parts),
            max_in_flight=sum(p.max_in_flight for p in parts),
            in_flight=sum(p.in_flight for p in parts),
        )


class Scheduler:
    """Bounded-queue thread pool executing serving work.

    Parameters
    ----------
    max_workers:
        Worker threads executing queries concurrently.
    queue_depth:
        Queries allowed to wait beyond the ones actively executing.
    """

    def __init__(self, max_workers: int = 4, queue_depth: int = 64) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        self.max_workers = max_workers
        self.queue_depth = queue_depth
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._slots = threading.BoundedSemaphore(max_workers + queue_depth)
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._rejected = 0
        self._in_flight = 0
        self._max_in_flight = 0
        self._shutdown = False

    # ------------------------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        block: bool = True,
        timeout: Optional[float] = None,
        **kwargs: Any,
    ) -> "Future[Any]":
        """Admit one unit of work; returns its future.

        With ``block=False`` (or on timeout) a full admission queue
        raises :class:`AdmissionRejected` instead of waiting.
        """
        if self._shutdown:
            raise RuntimeError("scheduler is shut down")
        if block:
            acquired = self._slots.acquire(timeout=timeout)
        else:
            acquired = self._slots.acquire(blocking=False)
        if not acquired:
            with self._lock:
                self._rejected += 1
            raise AdmissionRejected(
                f"admission queue full "
                f"({self.max_workers} workers + {self.queue_depth} waiting)"
            )
        with self._lock:
            self._submitted += 1
            self._in_flight += 1
            self._max_in_flight = max(self._max_in_flight, self._in_flight)
        try:
            future = self._pool.submit(fn, *args, **kwargs)
        except BaseException:
            self._slots.release()
            with self._lock:
                self._in_flight -= 1
            raise
        future.add_done_callback(self._release)
        return future

    def _release(self, _future: "Future[Any]") -> None:
        self._slots.release()
        with self._lock:
            self._completed += 1
            self._in_flight -= 1

    # ------------------------------------------------------------------

    def stats(self) -> SchedulerStats:
        with self._lock:
            return SchedulerStats(
                submitted=self._submitted,
                completed=self._completed,
                rejected=self._rejected,
                max_in_flight=self._max_in_flight,
                in_flight=self._in_flight,
            )

    def publish(self, registry: object, **labels: object) -> None:
        """Publish a collector view of :meth:`stats` into a
        :class:`~repro.obs.registry.MetricsRegistry` (thin view — the
        :class:`SchedulerStats` snapshot stays the source of truth)."""
        from ..obs.registry import Sample

        def collect():
            s = self.stats()
            counters = (
                (
                    "repro_scheduler_submitted_total",
                    s.submitted,
                    "Queries admitted",
                ),
                (
                    "repro_scheduler_completed_total",
                    s.completed,
                    "Queries completed",
                ),
                (
                    "repro_scheduler_rejected_total",
                    s.rejected,
                    "Queries shed at admission",
                ),
            )
            for name, value, help_text in counters:
                yield Sample.of(name, value, labels, help_text, "counter")
            gauges = (
                (
                    "repro_scheduler_in_flight",
                    s.in_flight,
                    "Admitted but unfinished right now",
                ),
                (
                    "repro_scheduler_max_in_flight",
                    s.max_in_flight,
                    "Peak concurrent admitted work",
                ),
            )
            for name, value, help_text in gauges:
                yield Sample.of(name, value, labels, help_text, "gauge")

        registry.register_collector(collect, name="scheduler")

    def shutdown(self, wait: bool = True) -> None:
        self._shutdown = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
