"""Concurrent query serving over learned layouts.

The paper evaluates layouts one query at a time; this subsystem turns
a finished layout into something that serves traffic: a thread-safe
:class:`LayoutService` facade (SQL in, routed/cached/scheduled scans
out), a memory-budgeted LRU :class:`BlockCache` buffer pool of decoded
columns, a bounded-admission :class:`Scheduler` thread pool, and a
:class:`ServingMetrics` collector (QPS, latency percentiles, cache hit
rate).

:class:`ResultCache` (:mod:`repro.serve.result_cache`) layers full
result memoization over the routing memo: finished
:class:`~repro.engine.executor.QueryStats` are keyed by (query
fingerprint, layout generation), so repeated queries skip routing,
pruning and scanning entirely, and a generation change (ingest or
layout swap through :class:`repro.db.Database`) can never serve a
stale result.

:class:`ShardedLayoutService` (:mod:`repro.serve.shard`) scales the
same facade out: the block store is partitioned across N shards —
round-robin by BID or by qd-tree subtree — each running its own
:class:`LayoutService`, behind a scatter-gather coordinator that fans
each query out only to the shards owning surviving blocks and merges
per-shard stats into one bit-identical result.
"""

from .cache import BlockCache, CacheStats
from .metrics import MetricsSnapshot, ServingMetrics
from .result_cache import CachedResult, ResultCache, ResultCacheStats
from .scheduler import AdmissionRejected, Scheduler, SchedulerStats
from .service import (
    DEFAULT_CACHE_BUDGET,
    LayoutService,
    ReplayResult,
    ReplayableService,
    ServeResult,
    run_serial_baseline,
)
from .shard import ShardSnapshot, ShardedLayoutService

__all__ = [
    "AdmissionRejected",
    "BlockCache",
    "DEFAULT_CACHE_BUDGET",
    "CacheStats",
    "CachedResult",
    "LayoutService",
    "MetricsSnapshot",
    "ReplayResult",
    "ReplayableService",
    "ResultCache",
    "ResultCacheStats",
    "Scheduler",
    "SchedulerStats",
    "ServeResult",
    "ServingMetrics",
    "ShardSnapshot",
    "ShardedLayoutService",
    "run_serial_baseline",
]
