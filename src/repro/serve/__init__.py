"""Concurrent query serving over learned layouts.

The paper evaluates layouts one query at a time; this subsystem turns
a finished layout into something that serves traffic: a thread-safe
:class:`LayoutService` facade (SQL in, routed/cached/scheduled scans
out), a memory-budgeted LRU :class:`BlockCache` buffer pool of decoded
columns, a bounded-admission :class:`Scheduler` thread pool, and a
:class:`ServingMetrics` collector (QPS, latency percentiles, cache hit
rate).
"""

from .cache import BlockCache, CacheStats
from .metrics import MetricsSnapshot, ServingMetrics
from .scheduler import AdmissionRejected, Scheduler, SchedulerStats
from .service import (
    LayoutService,
    ReplayResult,
    ServeResult,
    run_serial_baseline,
)

__all__ = [
    "AdmissionRejected",
    "BlockCache",
    "CacheStats",
    "LayoutService",
    "MetricsSnapshot",
    "ReplayResult",
    "Scheduler",
    "SchedulerStats",
    "ServeResult",
    "ServingMetrics",
    "run_serial_baseline",
]
