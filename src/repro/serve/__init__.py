"""Concurrent query serving over learned layouts.

The paper evaluates layouts one query at a time; this subsystem turns
a finished layout into something that serves traffic: a thread-safe
:class:`LayoutService` facade (SQL in, routed/cached/scheduled scans
out), a memory-budgeted LRU :class:`BlockCache` buffer pool of decoded
columns, a bounded-admission :class:`Scheduler` thread pool, and a
:class:`ServingMetrics` collector (QPS, latency percentiles, cache hit
rate).

:class:`ShardedLayoutService` (:mod:`repro.serve.shard`) scales the
same facade out: the block store is partitioned across N shards —
round-robin by BID or by qd-tree subtree — each running its own
:class:`LayoutService`, behind a scatter-gather coordinator that fans
each query out only to the shards owning surviving blocks and merges
per-shard stats into one bit-identical result.
"""

from .cache import BlockCache, CacheStats
from .metrics import MetricsSnapshot, ServingMetrics
from .scheduler import AdmissionRejected, Scheduler, SchedulerStats
from .service import (
    LayoutService,
    ReplayResult,
    ReplayableService,
    ServeResult,
    run_serial_baseline,
)
from .shard import ShardSnapshot, ShardedLayoutService

__all__ = [
    "AdmissionRejected",
    "BlockCache",
    "CacheStats",
    "LayoutService",
    "MetricsSnapshot",
    "ReplayResult",
    "ReplayableService",
    "Scheduler",
    "SchedulerStats",
    "ServeResult",
    "ServingMetrics",
    "ShardSnapshot",
    "ShardedLayoutService",
    "run_serial_baseline",
]
