"""Concurrent query serving over learned layouts.

The paper evaluates layouts one query at a time; this subsystem turns
a finished layout into something that serves traffic.  Every facade is
a thin configuration of the shared :mod:`repro.exec` query pipeline —
the facades own resources (buffer pools, schedulers, metrics), the
pipeline owns the plan/route/cache/prune/scan/merge logic:

* :class:`LayoutService` — thread-safe serving of one layout (SQL in
  -> routed, cached, scheduled scans out) with a memory-budgeted LRU
  :class:`BlockCache` buffer pool, a bounded-admission
  :class:`Scheduler` thread pool, and :class:`ServingMetrics` (QPS,
  latency percentiles, cache hit rate).
* :class:`ShardedLayoutService` (:mod:`repro.serve.shard`) — the block
  store partitioned across N shards (round-robin by BID or by qd-tree
  subtree), each running its own :class:`LayoutService`, behind a
  scatter-gather coordinator that fans each query out only to the
  shards owning surviving blocks and merges per-shard stats into one
  bit-identical result.
* :class:`MultiLayoutService` (:mod:`repro.serve.multi`) — the same
  table under several layouts at once, with a cost-model arbiter
  routing each query to the layout that scans the least
  (blocks-surviving × bytes-scanned argmin) and per-layout win counts
  in the metrics.

:class:`ResultCache` (now in :mod:`repro.exec.result_cache`) layers
full result memoization over the routing memo: finished
:class:`~repro.engine.executor.QueryStats` are keyed by (query
fingerprint, layout generation), so repeated queries skip pruning and
scanning entirely, and a generation change (ingest or layout swap
through :class:`repro.db.Database`) can never serve a stale result.
The cache's byte-bounded row-id store makes repeated
``collect_row_ids`` calls free as well.
"""

from .cache import BlockCache, CacheStats
from .metrics import AdaptSnapshot, MetricsSnapshot, ServingMetrics
from .multi import MultiLayoutService
from .result_cache import CachedResult, ResultCache, ResultCacheStats
from .scheduler import AdmissionRejected, Scheduler, SchedulerStats
from .service import (
    DEFAULT_CACHE_BUDGET,
    LayoutService,
    ReplayResult,
    ReplayableService,
    RouteMemo,
    ServeResult,
    run_serial_baseline,
)
from .shard import ShardSnapshot, ShardedLayoutService

__all__ = [
    "AdaptSnapshot",
    "AdmissionRejected",
    "BlockCache",
    "DEFAULT_CACHE_BUDGET",
    "CacheStats",
    "CachedResult",
    "LayoutService",
    "MetricsSnapshot",
    "MultiLayoutService",
    "ReplayResult",
    "ReplayableService",
    "ResultCache",
    "ResultCacheStats",
    "RouteMemo",
    "Scheduler",
    "SchedulerStats",
    "ServeResult",
    "ServingMetrics",
    "ShardSnapshot",
    "ShardedLayoutService",
    "run_serial_baseline",
]
