"""Sharded scatter-gather serving over a partitioned block store.

:class:`ShardedLayoutService` splits a finished
:class:`~repro.storage.blocks.BlockStore` into N disjoint shards
(round-robin by BID, or by qd-tree subtree to preserve routing
locality), runs one full :class:`~repro.serve.service.LayoutService` —
engine, buffer pool, scheduler, metrics — per shard, and fronts them
with a scatter-gather coordinator.  The coordinator is a configuration
of the shared :class:`~repro.exec.pipeline.QueryPipeline`::

    SQL text
      -> PlanStage         (shared, memoized)
      -> RouteStage        (one tree walk per unique predicate)
      -> ResultCacheStage  (a hit skips the whole scatter — no shard
                           sees the query at all)
      -> ShardPruneStage   (one SMA prune per unique predicate,
                           memoized as per-shard survivor lists)
      -> ScatterScanStage  (submit shard-local scans ONLY to the
                           shards owning surviving blocks)
      -> MergeStage        (per-shard QueryStats folded into one
                           result with the same ``result_key`` as
                           unsharded execution)

Partition-strategy trade-offs (see also
:func:`repro.core.router.subtree_shard_assignment`):

* ``"rr"`` (round-robin) balances block counts and rows across shards
  regardless of layout shape, and spreads every query's survivors over
  all shards — maximum intra-query parallelism, but every query pays
  coordination with every shard.
* ``"subtree"`` cuts the qd-tree's left-to-right leaf order into
  contiguous runs of near-equal row weight, so neighbouring leaves
  (which selective queries co-touch) land on the same shard — fan-out
  per query is small, at the risk of a hot subtree skewing load onto
  one shard.

Correctness bar: for every query, the merged stats must be
bit-identical (``QueryStats.result_key``) to the unsharded
:class:`LayoutService` and to serial uncached execution — the
differential suite in ``tests/test_shard_differential.py`` enforces
this, in the spirit of partition-aware query answering where the
partitioned plan is *proved* equivalent to the unpartitioned one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.router import QueryRouter, subtree_shard_assignment
from ..core.tree import QdTree
from ..engine.profiles import SPARK_PARQUET, CostProfile
from ..exec import RouteMemo, ServeResult, sharded_pipeline
from ..sql.planner import SqlPlanner
from ..storage.blocks import BlockStore
from .cache import CacheStats
from .metrics import MetricsSnapshot, ServingMetrics
from .result_cache import ResultCache
from .scheduler import Scheduler, SchedulerStats
from .service import (
    DEFAULT_CACHE_BUDGET,
    LayoutService,
    ReplayableService,
)

__all__ = ["ShardSnapshot", "ShardedLayoutService"]


@dataclass(frozen=True)
class ShardSnapshot:
    """One shard's point-in-time observability bundle."""

    shard: int
    num_blocks: int
    metrics: MetricsSnapshot
    scheduler: SchedulerStats


class ShardedLayoutService(ReplayableService):
    """Scatter-gather front end over N per-shard :class:`LayoutService`.

    Parameters
    ----------
    store:
        The full layout's block store; partitioned across shards at
        construction (blocks are shared by reference, never copied).
    tree:
        Optional qd-tree.  Routing happens once, at the coordinator;
        shards never re-route (they are built without routers).
        Required for ``partition="subtree"``.
    num_shards:
        Shard count.  ``1`` degenerates to a coordinator in front of a
        single service (useful as a like-for-like scaling baseline).
    partition:
        ``"rr"`` or ``"subtree"`` — see the module docstring for the
        trade-offs.
    cache_budget_bytes:
        TOTAL buffer-pool budget, split evenly across shards (each
        shard machine owns its memory in a real deployment).
        ``0``/``None`` disables caching on every shard.
    max_workers_per_shard / queue_depth:
        Per-shard scheduler sizing.
    coordinator_workers:
        Front-end admission pool size; defaults to
        ``num_shards * max_workers_per_shard`` so coordinator threads
        (which block gathering shard futures) can keep every shard
        worker busy.
    planner:
        Shared planner; pass the build workload's planner whenever the
        layout used advanced cuts (same caveat as
        :class:`LayoutService`).
    result_cache / generation:
        Optional generation-keyed
        :class:`~repro.serve.result_cache.ResultCache`, consulted at
        the coordinator: a hit skips the whole scatter — no shard sees
        the query at all (same semantics as :class:`LayoutService`).
    record_sink / admission:
        Query-log sink appended at the coordinator pipeline's tail
        (shards never double-record) and the per-shard buffer-pool
        admission policy — same semantics as :class:`LayoutService`.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` attached at the
        coordinator pipeline: each query's trace carries the
        ``scatter_scan`` span plus one ``scatter_scan.shard<i>`` child
        span per owning shard.  Shards are never traced individually
        (the coordinator observes the whole scatter).
    """

    def __init__(
        self,
        store: BlockStore,
        tree: Optional[QdTree] = None,
        num_shards: int = 2,
        partition: str = "rr",
        profile: CostProfile = SPARK_PARQUET,
        num_advanced_cuts: int = 0,
        cache_budget_bytes: Optional[int] = DEFAULT_CACHE_BUDGET,
        max_workers_per_shard: int = 2,
        queue_depth: int = 64,
        coordinator_workers: Optional[int] = None,
        planner: Optional[SqlPlanner] = None,
        result_cache: Optional[ResultCache] = None,
        generation: int = 0,
        record_sink: Optional[object] = None,
        admission: str = "lru",
        tracer: Optional[object] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if partition not in ("rr", "subtree"):
            raise ValueError(f"unknown partition strategy {partition!r}")
        if partition == "subtree" and tree is None:
            raise ValueError("partition='subtree' requires a qd-tree")
        self.store = store
        self.num_shards = num_shards
        self.partition = partition
        self.profile = profile
        self.planner = planner if planner is not None else SqlPlanner(store.schema)

        if partition == "subtree":
            assert tree is not None
            assignment = subtree_shard_assignment(
                tree,
                num_shards,
                weights={b.block_id: b.num_rows for b in store},
            )
            shard_stores = store.partition(num_shards, assignment=assignment)
        else:
            shard_stores = store.partition(num_shards, strategy="rr")
        self._shard_of: Dict[int, int] = {
            bid: i for i, sub in enumerate(shard_stores) for bid in sub.bid_set
        }
        per_shard_budget = (
            cache_budget_bytes // num_shards if cache_budget_bytes else None
        )
        self.shards: Tuple[LayoutService, ...] = tuple(
            LayoutService(
                sub,
                tree=None,  # the coordinator owns routing
                profile=profile,
                num_advanced_cuts=num_advanced_cuts,
                cache_budget_bytes=per_shard_budget,
                max_workers=max_workers_per_shard,
                queue_depth=queue_depth,
                planner=self.planner,
                admission=admission,
            )
            for sub in shard_stores
        )
        self.router: Optional[QueryRouter] = (
            QueryRouter(tree, max_latency_samples=10_000)
            if tree is not None
            else None
        )
        self.metrics = ServingMetrics()
        self.scheduler = Scheduler(
            max_workers=(
                coordinator_workers
                if coordinator_workers is not None
                else num_shards * max_workers_per_shard
            ),
            queue_depth=queue_depth,
        )
        self.result_cache = result_cache
        self.generation = generation
        self.pipeline = sharded_pipeline(
            planner=self.planner,
            shards=self.shards,
            router=self.router,
            store=store,
            profile=profile,
            result_cache=result_cache,
            generation=generation,
            metrics=self.metrics,
            record_sink=record_sink,
            tracer=tracer,
        )
        self.tracer = tracer
        self._route_memo: RouteMemo = self.pipeline.stage("route").memo
        self._scatter = self.pipeline.stage("scan")

    # ------------------------------------------------------------------
    # Execution (delegates to the shared pipeline)
    # ------------------------------------------------------------------

    def _serve(self, sql: str, admitted_at: float) -> ServeResult:
        return self.pipeline.execute(sql, admitted_at)

    def execute_sql(self, sql: str) -> ServeResult:
        """Serve one statement, scattering from the caller's thread."""
        return self._serve(sql, time.perf_counter())

    def submit_sql(
        self, sql: str, block: bool = True, timeout: Optional[float] = None
    ):
        """Admit one statement to the coordinator pool; returns its
        future.  Coordinator workers scatter to shard pools and block
        gathering — shard workers never wait on the coordinator, so the
        two scheduler layers cannot deadlock."""
        return self.scheduler.submit(
            self._serve, sql, time.perf_counter(), block=block, timeout=timeout
        )

    def collect_row_ids(self, sql: str) -> np.ndarray:
        """Matched original-table row ids, unioned across shards
        (sorted, deduped, cached per predicate in the byte-bounded
        row-id store); requires row-id provenance on the blocks."""
        return self.pipeline.collect_row_ids(sql)

    # ------------------------------------------------------------------
    # Observability & lifecycle
    # ------------------------------------------------------------------

    def _cache_stats(self) -> Optional[CacheStats]:
        parts = [s.cache.stats() for s in self.shards if s.cache is not None]
        return CacheStats.merged(parts) if parts else None

    def _reset_window(self) -> None:
        self.metrics.reset()
        for shard in self.shards:
            shard.metrics.reset()
        self._scatter.reset_fanout()

    def shard_snapshots(self) -> Tuple[ShardSnapshot, ...]:
        """Per-shard metrics/scheduler snapshots (aggregate view comes
        from :meth:`snapshot` / :meth:`scheduler_stats`)."""
        return tuple(
            ShardSnapshot(
                shard=i,
                num_blocks=service.store.num_blocks,
                metrics=service.snapshot(),
                scheduler=service.scheduler.stats(),
            )
            for i, service in enumerate(self.shards)
        )

    def scheduler_stats(self) -> Tuple[SchedulerStats, SchedulerStats]:
        """(coordinator stats, aggregate-over-shards stats)."""
        return (
            self.scheduler.stats(),
            SchedulerStats.merged([s.scheduler.stats() for s in self.shards]),
        )

    @property
    def mean_fanout(self) -> float:
        """Mean shards scattered to per query (the partition-locality
        metric: lower means the strategy kept survivors together)."""
        return self._scatter.mean_fanout

    def publish_metrics(self, registry: object, **labels: object) -> None:
        """Publish coordinator + per-shard collectors into a
        :class:`~repro.obs.registry.MetricsRegistry`; shard series are
        distinguished by a ``shard`` label."""
        self.metrics.publish(registry, **labels)
        self.scheduler.publish(registry, role="coordinator", **labels)
        for i, shard in enumerate(self.shards):
            shard.metrics.publish(registry, shard=i, **labels)
            shard.scheduler.publish(registry, role="shard", shard=i, **labels)
            if shard.cache is not None:
                shard.cache.publish(registry, shard=i, **labels)

    def report(self) -> str:
        """Operator-facing text report: aggregate, then per shard."""
        snap = self.snapshot()
        coord, agg = self.scheduler_stats()
        lines = [snap.report()]
        lines.append(
            f"topology           {self.num_shards} shards "
            f"({self.partition}), mean fan-out {self.mean_fanout:.2f}"
        )
        lines.append(
            f"coordinator        {coord.submitted} submitted / "
            f"{coord.completed} completed / {coord.rejected} rejected "
            f"(peak in-flight {coord.max_in_flight})"
        )
        lines.append(
            f"shard pools        {agg.submitted} scans / "
            f"{agg.completed} completed (peak in-flight {agg.max_in_flight})"
        )
        for s in self.shard_snapshots():
            lines.append(
                f"  shard {s.shard:<2} {s.num_blocks:>4} blocks  "
                f"{s.metrics.queries:>6} scans  "
                f"p50 {s.metrics.latency_p50_ms:.3f} ms  "
                f"hit rate {100 * s.metrics.cache_hit_rate:.1f}%"
            )
        if self.router is not None:
            lines.append(
                f"route memo         {len(self._route_memo)} unique predicates"
            )
        if self.result_cache is not None:
            rc = self.result_cache.stats()
            lines.append(
                f"result cache       {rc.entries} entries / "
                f"{100 * rc.hit_rate:.1f}% hit rate "
                f"(gen {self.generation}, "
                f"{rc.tuples_avoided} tuple-scans avoided, "
                f"{rc.row_id_bytes} row-id bytes)"
            )
        return "\n".join(lines)

    def close(self) -> None:
        self.scheduler.shutdown()
        for shard in self.shards:
            shard.close()

    def __repr__(self) -> str:
        return (
            f"ShardedLayoutService(shards={self.num_shards}, "
            f"partition={self.partition!r}, "
            f"blocks={self.store.num_blocks})"
        )
