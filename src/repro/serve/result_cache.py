"""Generation-keyed memoization of full query results.

The routing memo (:class:`~repro.serve.service.RouteMemo`) spares a
repeated predicate the tree walk and the per-block min-max
intersection, but the surviving blocks are still *scanned* on every
arrival.  :class:`ResultCache` closes that gap: the finished
:class:`~repro.engine.executor.QueryStats` (and the routed BID list
that produced it) is memoized per **(query fingerprint, layout
generation)**, so a repeat of the same query against the same layout
generation skips planning's downstream entirely — no routing, no
pruning, no scan.

The layout *generation* is the invalidation story.  Every layout a
:class:`~repro.db.Database` builds — and every ingest, which produces
a new store — is stamped with a monotonically increasing generation
number.  Serving facades look entries up under the generation of the
layout they serve; a generation change (``db.ingest``,
``db.swap_layout``) therefore makes every old entry unreachable, and
the database additionally purges them eagerly (:meth:`retain`) so the
cache never carries dead weight.  Within one generation the store is
immutable, which is what makes result memoization sound at all.

Entries are shared across facades: a single :class:`ResultCache` can
sit behind the library path (``db.execute``), an unsharded
:class:`~repro.serve.service.LayoutService` and a sharded coordinator
at once — all three produce ``result_key``-identical stats for the
same (query, generation), so whichever computes first populates the
entry for the others.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.workload import Query
from ..engine.executor import QueryStats

__all__ = ["CachedResult", "ResultCache", "ResultCacheStats"]

#: (query fingerprint, layout generation) — see :meth:`ResultCache.key_for`.
_Key = Tuple[object, int]


@dataclass(frozen=True)
class CachedResult:
    """One memoized query outcome.

    ``stats`` is the first execution's :class:`QueryStats`; every
    deterministic field (``result_key()``) is — by the per-generation
    immutability argument above — exactly what a fresh execution would
    produce.  ``wall_seconds`` inside is the *original* scan's wall
    time; serving facades report the (much smaller) hit latency
    through their metrics instead.
    """

    stats: QueryStats
    routed_block_ids: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class ResultCacheStats:
    """A consistent point-in-time snapshot of cache accounting."""

    hits: int
    misses: int
    entries: int
    evictions: int
    #: Entries dropped by generation purges (ingest / swap_layout).
    invalidated: int
    #: Tuple-scans a fresh execution would have performed but a hit
    #: avoided — the work the cache exists to skip.
    tuples_avoided: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def since(self, earlier: "ResultCacheStats") -> "ResultCacheStats":
        """Activity between ``earlier`` and this snapshot (counters
        become deltas; ``entries`` keeps the point-in-time value)."""
        return ResultCacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            entries=self.entries,
            evictions=self.evictions - earlier.evictions,
            invalidated=self.invalidated - earlier.invalidated,
            tuples_avoided=self.tuples_avoided - earlier.tuples_avoided,
        )


class ResultCache:
    """Bounded, thread-safe (fingerprint, generation) -> result memo.

    Parameters
    ----------
    cap:
        Maximum entries held; inserts past the cap evict
        least-recently-used entries, so a long-lived database under
        ad-hoc traffic cannot grow without limit.
    """

    def __init__(self, cap: int = 8192) -> None:
        if cap < 1:
            raise ValueError("cap must be >= 1")
        self.cap = cap
        self._lock = threading.Lock()
        self._entries: "OrderedDict[_Key, CachedResult]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidated = 0
        self._tuples_avoided = 0

    # ------------------------------------------------------------------

    @staticmethod
    def key_for(query: Query, profile: object = None) -> object:
        """The query fingerprint: every input that feeds a
        deterministic stat.  The predicate alone is NOT enough — two
        statements with the same WHERE clause but different
        projections scan different column counts — so the fingerprint
        also carries the scan columns, the provenance names, and the
        cost profile (``columns_read``/``modeled_ms`` depend on it)."""
        return (
            query.predicate,
            query.scan_columns(),
            query.name,
            query.template,
            profile,
        )

    def get(
        self, query: Query, generation: int, profile: object = None
    ) -> Optional[CachedResult]:
        """Memoized result for ``query`` under ``generation``, if any."""
        key = (self.key_for(query, profile), generation)
        with self._lock:
            hit = self._entries.get(key)
            if hit is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            self._tuples_avoided += hit.stats.tuples_scanned
            return hit

    def put(
        self,
        query: Query,
        generation: int,
        result: CachedResult,
        profile: object = None,
    ) -> None:
        """Memoize one outcome (racing duplicate puts are benign —
        both computed the same deterministic fields)."""
        key = (self.key_for(query, profile), generation)
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.cap:
                self._entries.popitem(last=False)
                self._evictions += 1

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def retain(self, generation: int) -> int:
        """Drop every entry NOT belonging to ``generation``.

        Called by the database whenever the active generation changes
        (ingest, swap_layout): entries of other generations are
        unreachable from the new serving path anyway, so free them.
        Returns the number of entries dropped.
        """
        with self._lock:
            stale = [k for k in self._entries if k[1] != generation]
            for key in stale:
                del self._entries[key]
            self._invalidated += len(stale)
            return len(stale)

    def clear(self) -> int:
        """Drop everything; returns the number of entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._invalidated += dropped
            return dropped

    # ------------------------------------------------------------------

    def stats(self) -> ResultCacheStats:
        with self._lock:
            return ResultCacheStats(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._entries),
                evictions=self._evictions,
                invalidated=self._invalidated,
                tuples_avoided=self._tuples_avoided,
            )

    def generations(self) -> Tuple[int, ...]:
        """Distinct generations currently holding entries (sorted)."""
        with self._lock:
            return tuple(sorted({k[1] for k in self._entries}))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"ResultCache(entries={s.entries}, hit_rate={s.hit_rate:.2f}, "
            f"invalidated={s.invalidated})"
        )
