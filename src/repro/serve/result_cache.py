"""Compatibility shim: the result cache lives in :mod:`repro.exec`.

The generation-keyed :class:`ResultCache` moved next to the pipeline
stages that consult it (:mod:`repro.exec.result_cache`); this module
keeps the historical import path working.
"""

from ..exec.result_cache import (
    DEFAULT_ROW_ID_BUDGET,
    CachedResult,
    ResultCache,
    ResultCacheStats,
)

__all__ = [
    "CachedResult",
    "DEFAULT_ROW_ID_BUDGET",
    "ResultCache",
    "ResultCacheStats",
]
