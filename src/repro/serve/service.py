"""The serving facade: SQL in, routed + cached + scheduled scans out.

:class:`LayoutService` is the front door a client (or many concurrent
clients) talks to.  One call travels the whole stack::

    SQL text
      -> SqlPlanner       (memoized, thread-safe parse/plan)
      -> QueryRouter      (qd-tree BID pruning, memoized by predicate
                           fingerprint so repeated shapes skip the tree)
      -> ScanEngine       (one scan path; column reads served by the
                           shared BlockCache buffer pool when enabled)
      -> ServingMetrics   (latency/QPS/cache accounting)

Concurrency comes from :class:`~repro.serve.scheduler.Scheduler`: a
bounded thread pool whose admission queue back-pressures closed-loop
clients and sheds load for open-loop ones.  Scans parallelize despite
the GIL because the decode and filter kernels are vectorized numpy.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..core.predicates import Predicate
from ..core.router import QueryRouter
from ..core.tree import QdTree
from ..core.workload import Query
from ..engine.executor import QueryStats, ScanEngine
from ..engine.profiles import SPARK_PARQUET, CostProfile
from ..sql.planner import SqlPlanner
from ..storage.blocks import BlockStore
from .cache import BlockCache
from .metrics import MetricsSnapshot, ServingMetrics
from .scheduler import AdmissionRejected, Scheduler

__all__ = [
    "LayoutService",
    "ReplayResult",
    "ServeResult",
    "run_serial_baseline",
]

#: Default buffer-pool budget (bytes) — plenty for the generated
#: benchmark scales, small against any real machine.
DEFAULT_CACHE_BUDGET = 64 * 1024 * 1024


def run_serial_baseline(
    store: BlockStore,
    tree: QdTree,
    statements: Sequence[str],
    repeat: int = 1,
    planner: Optional[SqlPlanner] = None,
    num_advanced_cuts: int = 0,
    profile: CostProfile = SPARK_PARQUET,
) -> Tuple[float, Tuple[QueryStats, ...]]:
    """The pre-serving execution path, for speedup comparisons.

    Plans the statements once, then routes, SMA-prunes and scans every
    arrival from scratch, one at a time — exactly what executing the
    workload cost before :class:`LayoutService` existed.  Returns
    ``(sustained QPS, per-query stats)``.
    """
    engine = ScanEngine(store, profile, num_advanced_cuts=num_advanced_cuts)
    if planner is None:
        planner = SqlPlanner(store.schema)
    router = QueryRouter(tree)
    queries = [planner.plan(sql).query for sql in statements]
    t0 = time.perf_counter()
    stats = []
    for _ in range(repeat):
        for query in queries:
            routed = router.route(query)
            stats.append(engine.execute(query, routed.block_ids))
    seconds = time.perf_counter() - t0
    qps = len(stats) / seconds if seconds > 0 else 0.0
    return qps, tuple(stats)


@dataclass(frozen=True)
class ServeResult:
    """Outcome of one served query."""

    sql: str
    stats: QueryStats
    #: End-to-end seconds (queue wait + plan + route + scan when the
    #: query went through the scheduler; service time otherwise).
    latency_seconds: float
    #: BIDs the router narrowed the query to (``None`` without a tree).
    routed_block_ids: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one workload replay run."""

    issued: int
    completed: int
    rejected: int
    wall_seconds: float
    results: Tuple[ServeResult, ...]
    snapshot: MetricsSnapshot

    @property
    def qps(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0


class LayoutService:
    """Thread-safe query-serving facade over one physical layout.

    Parameters
    ----------
    store:
        The layout's block store.
    tree:
        Optional qd-tree; when given, queries are routed to the
        ``BID IN (...)`` list before scanning (Sec. 3.3), with routes
        memoized by predicate fingerprint.
    profile:
        Cost profile for modeled runtimes.
    num_advanced_cuts:
        Advanced-cut slots the layout was built with.
    cache_budget_bytes:
        Buffer-pool budget; ``0``/``None`` disables caching entirely
        (every scan decodes from the encoded chunks).
    max_workers / queue_depth:
        Scheduler sizing; see :class:`~repro.serve.scheduler.Scheduler`.
    planner:
        The planner that planned the layout's build workload.  Pass it
        whenever that workload contained advanced (column-vs-column)
        cuts: advanced-cut slot indices are handed out in planning
        order, so a fresh planner seeing served statements in a
        different order would bind the same comparison to a different
        slot and rout/prune on the wrong possibility bits.
    """

    def __init__(
        self,
        store: BlockStore,
        tree: Optional[QdTree] = None,
        profile: CostProfile = SPARK_PARQUET,
        num_advanced_cuts: int = 0,
        cache_budget_bytes: Optional[int] = DEFAULT_CACHE_BUDGET,
        max_workers: int = 4,
        queue_depth: int = 64,
        planner: Optional[SqlPlanner] = None,
    ) -> None:
        self.store = store
        self.planner = planner if planner is not None else SqlPlanner(store.schema)
        self.cache: Optional[BlockCache] = (
            BlockCache(cache_budget_bytes) if cache_budget_bytes else None
        )
        self.engine = ScanEngine(
            store,
            profile,
            num_advanced_cuts=num_advanced_cuts,
            column_reader=(
                self.cache.read_columns if self.cache is not None else None
            ),
        )
        self.router: Optional[QueryRouter] = (
            QueryRouter(tree, max_latency_samples=10_000)
            if tree is not None
            else None
        )
        self.metrics = ServingMetrics()
        self.scheduler = Scheduler(max_workers=max_workers, queue_depth=queue_depth)
        # Routing memo: predicate fingerprint -> (routed BIDs or None,
        # pre-prune candidate count, post-SMA survivor BIDs).  Repeated
        # predicate shapes skip both the tree walk and the per-block
        # min-max intersection, the two Python-level costs that dwarf
        # the vectorized scan itself.  Bounded (FIFO eviction) so a
        # long-lived service under ad-hoc traffic cannot grow without
        # limit.  Misses compute outside the lock — a racing duplicate
        # computation is benign — with a separate small lock guarding
        # the router's internal latency state.
        self._route_lock = threading.Lock()
        self._router_lock = threading.Lock()
        self._route_memo: "OrderedDict[Predicate, Tuple[Optional[Tuple[int, ...]], int, Tuple[int, ...]]]" = (
            OrderedDict()
        )
        self._route_memo_cap = 16384

    # ------------------------------------------------------------------
    # Single-query path
    # ------------------------------------------------------------------

    def _route(
        self, query: Query
    ) -> Tuple[Optional[Tuple[int, ...]], int, Tuple[int, ...]]:
        """Routed BIDs, candidate count, and SMA survivors — memoized
        so repeated predicate shapes cost two dict lookups."""
        key = query.predicate
        with self._route_lock:
            hit = self._route_memo.get(key)
            if hit is not None:
                return hit
        # Miss: the tree walk and per-block pruning run outside the
        # memo lock so they never stall concurrent memo hits.
        if self.router is not None:
            with self._router_lock:
                routed: Optional[Tuple[int, ...]] = self.router.route(
                    query
                ).block_ids
            considered = len(set(routed) & self.store.bid_set)
        else:
            routed = None
            considered = self.store.num_blocks
        survivors = tuple(self.engine.prune_blocks(query, routed))
        entry = (routed, considered, survivors)
        with self._route_lock:
            self._route_memo[key] = entry
            while len(self._route_memo) > self._route_memo_cap:
                self._route_memo.popitem(last=False)
        return entry

    def _serve(self, sql: str, admitted_at: float) -> ServeResult:
        planned = self.planner.plan(sql)
        routed, considered, survivors = self._route(planned.query)
        stats = self.engine.execute_pruned(planned.query, survivors, considered)
        latency = time.perf_counter() - admitted_at
        self.metrics.record(latency, stats)
        return ServeResult(
            sql=sql,
            stats=stats,
            latency_seconds=latency,
            routed_block_ids=routed,
        )

    def execute_sql(self, sql: str) -> ServeResult:
        """Serve one statement synchronously on the caller's thread."""
        return self._serve(sql, time.perf_counter())

    def submit_sql(
        self, sql: str, block: bool = True, timeout: Optional[float] = None
    ):
        """Admit one statement to the scheduler; returns its future.

        The result's latency includes time spent waiting in the
        admission queue.  Raises
        :class:`~repro.serve.scheduler.AdmissionRejected` when the
        queue is full and ``block`` is false (or the wait times out).
        """
        return self.scheduler.submit(
            self._serve, sql, time.perf_counter(), block=block, timeout=timeout
        )

    # ------------------------------------------------------------------
    # Workload replay
    # ------------------------------------------------------------------

    def run_closed_loop(
        self, statements: Sequence[str], repeat: int = 1
    ) -> ReplayResult:
        """Replay ``statements`` ``repeat`` times through the pool.

        Closed-loop: submission back-pressures on the admission queue,
        so the offered load always matches what the pool sustains.
        """
        self.metrics.reset()
        cache_before = self.cache.stats() if self.cache is not None else None
        t0 = time.perf_counter()
        futures = []
        for _ in range(repeat):
            for sql in statements:
                futures.append(self.submit_sql(sql))
        results = tuple(f.result() for f in futures)
        wall = time.perf_counter() - t0
        return ReplayResult(
            issued=len(futures),
            completed=len(results),
            rejected=0,
            wall_seconds=wall,
            results=results,
            snapshot=self._window_snapshot(cache_before),
        )

    def run_open_loop(
        self, statements: Sequence[str], target_qps: float, repeat: int = 1
    ) -> ReplayResult:
        """Replay at a fixed arrival rate, shedding load when full.

        Open-loop: arrivals are paced at ``target_qps`` regardless of
        completions; a full admission queue rejects the arrival (the
        client sees an error, the system stays stable).
        """
        if target_qps <= 0:
            raise ValueError("target_qps must be > 0")
        self.metrics.reset()
        cache_before = self.cache.stats() if self.cache is not None else None
        interval = 1.0 / target_qps
        t0 = time.perf_counter()
        futures = []
        rejected = 0
        arrival = t0
        for i in range(repeat):
            for sql in statements:
                now = time.perf_counter()
                if now < arrival:
                    time.sleep(arrival - now)
                arrival += interval
                try:
                    futures.append(self.submit_sql(sql, block=False))
                except AdmissionRejected:
                    rejected += 1
        results = tuple(f.result() for f in futures)
        wall = time.perf_counter() - t0
        return ReplayResult(
            issued=len(futures) + rejected,
            completed=len(results),
            rejected=rejected,
            wall_seconds=wall,
            results=results,
            snapshot=self._window_snapshot(cache_before),
        )

    # ------------------------------------------------------------------
    # Observability & lifecycle
    # ------------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Current-window metrics with cache accounting attached."""
        return self.metrics.snapshot(
            self.cache.stats() if self.cache is not None else None
        )

    def _window_snapshot(self, cache_before) -> MetricsSnapshot:
        """Snapshot whose cache stats cover only the window since
        ``cache_before`` — a replay's report must describe that replay,
        not cache activity accumulated over the service's lifetime."""
        if self.cache is None:
            return self.metrics.snapshot(None)
        now = self.cache.stats()
        return self.metrics.snapshot(
            now.since(cache_before) if cache_before is not None else now
        )

    def report(self) -> str:
        """Operator-facing text report for the current window."""
        snap = self.snapshot()
        sched = self.scheduler.stats()
        routes = len(self._route_memo)
        lines = [snap.report()]
        lines.append(
            f"scheduler          {sched.submitted} submitted / "
            f"{sched.completed} completed / {sched.rejected} rejected "
            f"(peak in-flight {sched.max_in_flight})"
        )
        if self.router is not None:
            lines.append(f"route memo         {routes} unique predicates")
        return "\n".join(lines)

    def close(self) -> None:
        self.scheduler.shutdown()

    def __enter__(self) -> "LayoutService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
