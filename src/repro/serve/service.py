"""The serving facade: SQL in, routed + cached + scheduled scans out.

:class:`LayoutService` is the front door a client (or many concurrent
clients) talks to.  Since the :mod:`repro.exec` refactor it owns no
execution logic of its own: one call travels the shared
:class:`~repro.exec.pipeline.QueryPipeline`::

    SQL text
      -> PlanStage         (memoized, thread-safe parse/plan)
      -> RouteStage        (qd-tree BID pruning, memoized by predicate
                            fingerprint so repeated shapes skip the tree)
      -> ResultCacheStage  (generation-keyed full-result memo)
      -> PruneStage        (per-block min-max intersection, memoized)
      -> ScanStage         (one scan path; column reads served by the
                            shared BlockCache buffer pool when enabled)
      -> MergeStage        (no-op for the single-engine topology)

with :class:`ServingMetrics` recording latency/QPS/cache accounting per
completed query.  Concurrency comes from
:class:`~repro.serve.scheduler.Scheduler`: a bounded thread pool whose
admission queue back-pressures closed-loop clients and sheds load for
open-loop ones.  Scans parallelize despite the GIL because the decode
and filter kernels are vectorized numpy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..core.router import QueryRouter
from ..core.tree import QdTree
from ..core.workload import Query
from ..engine.executor import QueryStats, ScanEngine
from ..engine.profiles import SPARK_PARQUET, CostProfile
from ..exec import (
    RouteMemo,
    ServeResult,
    serial_pipeline,
    single_layout_pipeline,
)
from ..sql.planner import SqlPlanner
from ..storage.blocks import BlockStore
from .cache import BlockCache, CacheStats
from .metrics import MetricsSnapshot, ServingMetrics
from .result_cache import ResultCache
from .scheduler import AdmissionRejected, Scheduler

__all__ = [
    "LayoutService",
    "ReplayResult",
    "ReplayableService",
    "RouteMemo",
    "ServeResult",
    "run_serial_baseline",
]

#: Default buffer-pool budget (bytes) — plenty for the generated
#: benchmark scales, small against any real machine.
DEFAULT_CACHE_BUDGET = 64 * 1024 * 1024


def run_serial_baseline(
    store: BlockStore,
    tree: Optional[QdTree],
    statements: Sequence[str],
    repeat: int = 1,
    planner: Optional[SqlPlanner] = None,
    num_advanced_cuts: int = 0,
    profile: CostProfile = SPARK_PARQUET,
    record_sink: Optional[object] = None,
) -> Tuple[float, Tuple[QueryStats, ...]]:
    """The pre-serving execution path, for speedup comparisons.

    A memo-less, cache-less :func:`~repro.exec.pipeline.serial_pipeline`
    configuration: statements are planned once up front (planning was
    never part of the measured serial cost), then every arrival
    routes, SMA-prunes and scans from scratch, one at a time — exactly
    what executing the workload cost before :class:`LayoutService`
    existed.  Returns ``(sustained QPS, per-query stats)``.
    ``record_sink`` (e.g. a :class:`repro.adapt.log.QueryLog`) observes
    every execution, same as on the serving paths.
    """
    engine = ScanEngine(store, profile, num_advanced_cuts=num_advanced_cuts)
    if planner is None:
        planner = SqlPlanner(store.schema)
    router = QueryRouter(tree) if tree is not None else None
    pipeline = serial_pipeline(
        planner, engine, router, store, record_sink=record_sink
    )
    for sql in statements:
        planner.plan(sql)
    t0 = time.perf_counter()
    stats = []
    for _ in range(repeat):
        for sql in statements:
            stats.append(pipeline.execute(sql).stats)
    seconds = time.perf_counter() - t0
    qps = len(stats) / seconds if seconds > 0 else 0.0
    return qps, tuple(stats)


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one workload replay run."""

    issued: int
    completed: int
    rejected: int
    wall_seconds: float
    results: Tuple[ServeResult, ...]
    snapshot: MetricsSnapshot

    @property
    def qps(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0


class ReplayableService:
    """Workload-replay driving shared by serving facades.

    Subclasses provide ``metrics`` (a :class:`ServingMetrics`),
    :meth:`submit_sql`, and :meth:`_cache_stats`; they inherit the
    closed-loop / open-loop replay drivers, windowed snapshots and the
    context-manager protocol.  This is what lets the single-service
    :class:`LayoutService`, the scatter-gather
    :class:`~repro.serve.shard.ShardedLayoutService` and the
    multi-layout :class:`~repro.serve.multi.MultiLayoutService`
    present one client-facing API.
    """

    metrics: ServingMetrics

    def submit_sql(
        self, sql: str, block: bool = True, timeout: Optional[float] = None
    ):
        raise NotImplementedError

    def _cache_stats(self):
        """Current cache accounting (``None`` when caching is off)."""
        raise NotImplementedError

    def _reset_window(self) -> None:
        self.metrics.reset()

    # ------------------------------------------------------------------
    # Workload replay
    # ------------------------------------------------------------------

    def run_closed_loop(
        self, statements: Sequence[str], repeat: int = 1
    ) -> ReplayResult:
        """Replay ``statements`` ``repeat`` times through the pool.

        Closed-loop: submission back-pressures on the admission queue,
        so the offered load always matches what the pool sustains.
        """
        self._reset_window()
        cache_before = self._cache_stats()
        t0 = time.perf_counter()
        futures = []
        for _ in range(repeat):
            for sql in statements:
                futures.append(self.submit_sql(sql))
        results = tuple(f.result() for f in futures)
        wall = time.perf_counter() - t0
        return ReplayResult(
            issued=len(futures),
            completed=len(results),
            rejected=0,
            wall_seconds=wall,
            results=results,
            snapshot=self._window_snapshot(cache_before),
        )

    def run_open_loop(
        self, statements: Sequence[str], target_qps: float, repeat: int = 1
    ) -> ReplayResult:
        """Replay at a fixed arrival rate, shedding load when full.

        Open-loop: arrivals are paced at ``target_qps`` regardless of
        completions; a full admission queue rejects the arrival (the
        client sees an error, the system stays stable).
        """
        if target_qps <= 0:
            raise ValueError("target_qps must be > 0")
        self._reset_window()
        cache_before = self._cache_stats()
        interval = 1.0 / target_qps
        t0 = time.perf_counter()
        futures = []
        rejected = 0
        arrival = t0
        for i in range(repeat):
            for sql in statements:
                now = time.perf_counter()
                if now < arrival:
                    time.sleep(arrival - now)
                arrival += interval
                try:
                    futures.append(self.submit_sql(sql, block=False))
                except AdmissionRejected:
                    rejected += 1
        results = tuple(f.result() for f in futures)
        wall = time.perf_counter() - t0
        return ReplayResult(
            issued=len(futures) + rejected,
            completed=len(results),
            rejected=rejected,
            wall_seconds=wall,
            results=results,
            snapshot=self._window_snapshot(cache_before),
        )

    # ------------------------------------------------------------------
    # Observability & lifecycle
    # ------------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Current-window metrics with cache accounting attached."""
        return self.metrics.snapshot(self._cache_stats())

    def _window_snapshot(self, cache_before) -> MetricsSnapshot:
        """Snapshot whose cache stats cover only the window since
        ``cache_before`` — a replay's report must describe that replay,
        not cache activity accumulated over the service's lifetime."""
        now = self._cache_stats()
        if now is None:
            return self.metrics.snapshot(None)
        return self.metrics.snapshot(
            now.since(cache_before) if cache_before is not None else now
        )

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self):
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class LayoutService(ReplayableService):
    """Thread-safe query-serving facade over one physical layout.

    A thin configuration of the shared execution pipeline: the service
    owns the *resources* (buffer pool, scheduler, metrics, planner)
    and the pipeline owns the *logic* (plan/route/cache/prune/scan).

    Parameters
    ----------
    store:
        The layout's block store.
    tree:
        Optional qd-tree; when given, queries are routed to the
        ``BID IN (...)`` list before scanning (Sec. 3.3), with routes
        memoized by predicate fingerprint.
    profile:
        Cost profile for modeled runtimes.
    num_advanced_cuts:
        Advanced-cut slots the layout was built with.
    cache_budget_bytes:
        Buffer-pool budget; ``0``/``None`` disables caching entirely
        (every scan decodes from the encoded chunks).
    max_workers / queue_depth:
        Scheduler sizing; see :class:`~repro.serve.scheduler.Scheduler`.
    planner:
        The planner that planned the layout's build workload.  Pass it
        whenever that workload contained advanced (column-vs-column)
        cuts: advanced-cut slot indices are handed out in planning
        order, so a fresh planner seeing served statements in a
        different order would bind the same comparison to a different
        slot and rout/prune on the wrong possibility bits.
    result_cache / generation:
        Optional :class:`~repro.serve.result_cache.ResultCache` plus
        the generation of the layout this service fronts.  When given,
        repeated queries return the memoized
        :class:`~repro.engine.executor.QueryStats` without pruning or
        scanning; entries are keyed under ``generation`` so a database
        that swaps or re-ingests layouts can never serve a stale
        result through a cache shared across generations.
    metrics:
        Optional pre-existing :class:`ServingMetrics` collector.  The
        adaptive facade passes one shared collector so the observation
        window survives generation hot-swaps of the inner service.
    record_sink:
        Optional query-log sink (``observe(ctx)``, e.g. a
        :class:`repro.adapt.log.QueryLog`) appended as the pipeline's
        tail stage.
    admission:
        Buffer-pool admission policy, ``"lru"`` or ``"lfu"`` (see
        :class:`~repro.serve.cache.BlockCache`).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; when given, every
        served query records one per-stage trace.  ``None`` (default)
        keeps the untraced fast path.
    """

    def __init__(
        self,
        store: BlockStore,
        tree: Optional[QdTree] = None,
        profile: CostProfile = SPARK_PARQUET,
        num_advanced_cuts: int = 0,
        cache_budget_bytes: Optional[int] = DEFAULT_CACHE_BUDGET,
        max_workers: int = 4,
        queue_depth: int = 64,
        planner: Optional[SqlPlanner] = None,
        result_cache: Optional[ResultCache] = None,
        generation: int = 0,
        metrics: Optional[ServingMetrics] = None,
        record_sink: Optional[object] = None,
        admission: str = "lru",
        tracer: Optional[object] = None,
    ) -> None:
        self.store = store
        self.planner = planner if planner is not None else SqlPlanner(store.schema)
        self.cache: Optional[BlockCache] = (
            BlockCache(cache_budget_bytes, admission=admission)
            if cache_budget_bytes
            else None
        )
        self.engine = ScanEngine(
            store,
            profile,
            num_advanced_cuts=num_advanced_cuts,
            column_reader=(
                self.cache.read_columns if self.cache is not None else None
            ),
        )
        self.router: Optional[QueryRouter] = (
            QueryRouter(tree, max_latency_samples=10_000)
            if tree is not None
            else None
        )
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.scheduler = Scheduler(max_workers=max_workers, queue_depth=queue_depth)
        self.result_cache = result_cache
        self.generation = generation
        self.pipeline = single_layout_pipeline(
            planner=self.planner,
            engine=self.engine,
            router=self.router,
            store=store,
            result_cache=result_cache,
            generation=generation,
            metrics=self.metrics,
            record_sink=record_sink,
            tracer=tracer,
        )
        self.tracer = tracer
        # Kept for observability (report()) — the memo itself belongs
        # to the pipeline's route stage.
        self._route_memo: RouteMemo = self.pipeline.stage("route").memo

    # ------------------------------------------------------------------
    # Single-query path
    # ------------------------------------------------------------------

    def _serve(self, sql: str, admitted_at: float) -> ServeResult:
        return self.pipeline.execute(sql, admitted_at)

    def execute_sql(self, sql: str) -> ServeResult:
        """Serve one statement synchronously on the caller's thread."""
        return self._serve(sql, time.perf_counter())

    def submit_sql(
        self, sql: str, block: bool = True, timeout: Optional[float] = None
    ):
        """Admit one statement to the scheduler; returns its future.

        The result's latency includes time spent waiting in the
        admission queue.  Raises
        :class:`~repro.serve.scheduler.AdmissionRejected` when the
        queue is full and ``block`` is false (or the wait times out).
        """
        return self.scheduler.submit(
            self._serve, sql, time.perf_counter(), block=block, timeout=timeout
        )

    # ------------------------------------------------------------------
    # Shard-facing scan path (scatter-gather coordination)
    # ------------------------------------------------------------------

    def scan_pruned(
        self, query: Query, survivors: Sequence[int], blocks_considered: int
    ) -> QueryStats:
        """Scan an already-routed/pruned survivor list on the caller's
        thread, recording into this service's metrics.

        This is the per-shard execution leaf the sharded pipeline's
        scatter stage calls into: the coordinator owns planning,
        routing and the survivor memo; the shard owns the scan, its
        buffer pool and its local accounting.
        """
        t0 = time.perf_counter()
        stats = self.engine.execute_pruned(query, survivors, blocks_considered)
        self.metrics.record(time.perf_counter() - t0, stats)
        return stats

    def submit_pruned(
        self,
        query: Query,
        survivors: Sequence[int],
        blocks_considered: int,
        block: bool = True,
        timeout: Optional[float] = None,
    ):
        """Admit a pre-pruned scan to this service's scheduler."""
        return self.scheduler.submit(
            self.scan_pruned,
            query,
            survivors,
            blocks_considered,
            block=block,
            timeout=timeout,
        )

    def collect_row_ids(self, sql: str):
        """Matched original-table row ids for one statement (sorted,
        deduped, served from the byte-bounded row-id cache on
        repeats); requires blocks built with row-id provenance."""
        return self.pipeline.collect_row_ids(sql)

    # ------------------------------------------------------------------
    # Observability & lifecycle
    # ------------------------------------------------------------------

    def _cache_stats(self) -> Optional["CacheStats"]:
        return self.cache.stats() if self.cache is not None else None

    def publish_metrics(self, registry: object, **labels: object) -> None:
        """Publish every collector this service owns into a
        :class:`~repro.obs.registry.MetricsRegistry`: serving metrics,
        scheduler, buffer pool and result cache (where attached)."""
        self.metrics.publish(registry, **labels)
        self.scheduler.publish(registry, **labels)
        if self.cache is not None:
            self.cache.publish(registry, **labels)
        if self.result_cache is not None:
            from ..obs.registry import Sample

            cache = self.result_cache

            def collect():
                rc = cache.stats()
                yield Sample.of(
                    "repro_result_cache_entries",
                    rc.entries,
                    labels,
                    "Result-cache entries resident",
                    "gauge",
                )
                yield Sample.of(
                    "repro_result_cache_hits_total",
                    rc.hits,
                    labels,
                    "Result-cache hits",
                    "counter",
                )
                yield Sample.of(
                    "repro_result_cache_misses_total",
                    rc.misses,
                    labels,
                    "Result-cache misses",
                    "counter",
                )
                yield Sample.of(
                    "repro_result_cache_tuples_avoided_total",
                    rc.tuples_avoided,
                    labels,
                    "Tuple-scans the result cache avoided",
                    "counter",
                )

            registry.register_collector(collect, name="result_cache")

    def report(self) -> str:
        """Operator-facing text report for the current window."""
        snap = self.snapshot()
        sched = self.scheduler.stats()
        routes = len(self._route_memo)
        lines = [snap.report()]
        lines.append(
            f"scheduler          {sched.submitted} submitted / "
            f"{sched.completed} completed / {sched.rejected} rejected "
            f"(peak in-flight {sched.max_in_flight})"
        )
        if self.router is not None:
            lines.append(f"route memo         {routes} unique predicates")
        if self.result_cache is not None:
            rc = self.result_cache.stats()
            lines.append(
                f"result cache       {rc.entries} entries / "
                f"{100 * rc.hit_rate:.1f}% hit rate "
                f"(gen {self.generation}, "
                f"{rc.tuples_avoided} tuple-scans avoided, "
                f"{rc.row_id_bytes} row-id bytes)"
            )
        return "\n".join(lines)

    def close(self) -> None:
        self.scheduler.shutdown()
