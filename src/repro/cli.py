"""Command-line interface: learn, inspect and query qd-tree layouts.

Subcommands
-----------

``build``
    Learn a layout for a saved table (see
    :func:`repro.storage.save_table`) from a file of SQL queries (one
    per line), write the partitioned block store + tree next to it.
``inspect``
    Print a saved layout's block descriptions and cut histogram.
``route``
    Route one SQL query against a saved layout: prints the pruned BID
    list and scan statistics.
``serve-bench``
    Replay a SQL workload against a saved layout through the
    :mod:`repro.serve` serving tier (thread pool + buffer-pool cache)
    and print the latency/throughput/cache report.  ``--shards N``
    serves through the scatter-gather :class:`ShardedLayoutService`
    (``--partition rr|subtree`` picks the shard assignment).
    ``--compare`` also runs the serial uncached baseline — and, when
    sharded, the 1-shard service — and prints the QPS speedups.

Example::

    python -m repro.cli build  --table t/ --queries wl.sql --out layout/
    python -m repro.cli inspect --layout layout/
    python -m repro.cli route  --layout layout/ \
        --sql "SELECT * FROM t WHERE x < 10"
    python -m repro.cli serve-bench --layout layout/ \
        --threads 8 --repeat 20 --compare
    python -m repro.cli serve-bench --layout layout/ \
        --shards 4 --partition subtree --compare
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .bench.harness import materialize_tree
from .core.greedy import GreedyConfig, build_greedy_tree
from .core.router import QueryRouter
from .core.tree import QdTree
from .engine.executor import ScanEngine
from .engine.profiles import SPARK_PARQUET
from .rl.woodblock import Woodblock, WoodblockConfig
from .serve import LayoutService, ShardedLayoutService, run_serial_baseline
from .sql.planner import SqlPlanner
from .storage.catalog import load_store, load_table, save_store

__all__ = ["main"]

_TREE_FILE = "qdtree.json"
_META_FILE = "layout-meta.json"


def _read_queries(path: Path) -> List[str]:
    statements = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("--"):
            statements.append(line)
    if not statements:
        raise SystemExit(f"no queries found in {path}")
    return statements


def _cmd_build(args: argparse.Namespace) -> int:
    table = load_table(args.table)
    planner = SqlPlanner(table.schema)
    statements = _read_queries(Path(args.queries))
    workload = planner.plan_workload(statements)
    registry = planner.candidate_cuts(workload)
    print(
        f"planned {len(workload)} queries -> {len(registry)} candidate cuts "
        f"({registry.num_advanced_cuts} advanced)"
    )
    if args.method == "greedy":
        tree = build_greedy_tree(
            table.schema,
            registry,
            table,
            workload,
            GreedyConfig(min_leaf_size=args.min_block_size),
        )
    else:
        agent = Woodblock(
            table.schema,
            registry,
            table,
            workload,
            WoodblockConfig(
                min_leaf_size=args.min_block_size,
                episodes=args.episodes,
                hidden_dim=args.hidden_dim,
                seed=args.seed,
            ),
        )
        result = agent.train()
        tree = result.best_tree
        print(
            f"trained {result.episodes_run} episodes; "
            f"best sample scan ratio {result.best_scan_ratio:.4f}"
        )
    store = materialize_tree(tree, table)
    out = Path(args.out)
    save_store(store, out)
    tree.save(str(out / _TREE_FILE))
    (out / _META_FILE).write_text(
        json.dumps(
            {
                "method": args.method,
                "min_block_size": args.min_block_size,
                "num_blocks": store.num_blocks,
                "queries": statements,
            },
            indent=2,
        )
    )
    print(f"wrote {store.num_blocks} blocks to {out}/")
    return 0


def _load_layout(path: Path):
    store = load_store(path)
    meta = json.loads((path / _META_FILE).read_text())
    planner = SqlPlanner(store.schema)
    workload = planner.plan_workload(meta["queries"])
    registry = planner.candidate_cuts(workload)
    tree = QdTree.load(str(path / _TREE_FILE), store.schema, registry)
    return store, tree, registry, planner, meta


def _cmd_inspect(args: argparse.Namespace) -> int:
    store, tree, _, _, _ = _load_layout(Path(args.layout))
    print(f"{store.num_blocks} blocks over {store.logical_rows} rows "
          f"(tree depth {tree.depth()})")
    print("\ncut histogram:")
    for column, count in sorted(
        tree.cut_histogram().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {column:<20} {count}")
    print("\nblock descriptions:")
    sizes = {b.block_id: b.num_rows for b in store}
    for bid, description in sorted(tree.leaf_descriptions().items()):
        print(f"  block {bid} ({sizes.get(bid, 0)} rows): {description}")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    store, tree, registry, planner, _ = _load_layout(Path(args.layout))
    planned = planner.plan(args.sql)
    router = QueryRouter(tree)
    routed = router.route(planned.query)
    engine = ScanEngine(
        store, SPARK_PARQUET, num_advanced_cuts=registry.num_advanced_cuts
    )
    stats = engine.execute(planned.query, routed.block_ids)
    print(f"routed to {len(routed.block_ids)}/{store.num_blocks} blocks "
          f"in {1000 * routed.latency_seconds:.2f} ms")
    print(f"BID IN ({','.join(str(b) for b in routed.block_ids)})")
    print(f"scanned {stats.tuples_scanned} tuples, "
          f"returned {stats.rows_returned} rows")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    # Reuse the planner that planned the build workload so advanced-cut
    # slot indices stay aligned with the layout's registry.
    store, tree, registry, planner, meta = _load_layout(Path(args.layout))
    if args.queries:
        statements = _read_queries(Path(args.queries))
    else:
        statements = meta["queries"]
    cache_bytes = None if args.no_cache else args.cache_mb * 1024 * 1024

    def replay_service(service):
        if args.mode == "open":
            replay = service.run_open_loop(
                statements, target_qps=args.target_qps, repeat=args.repeat
            )
        else:
            replay = service.run_closed_loop(statements, repeat=args.repeat)
        return replay, service.report()

    def make_single_service():
        return LayoutService(
            store,
            tree,
            num_advanced_cuts=registry.num_advanced_cuts,
            cache_budget_bytes=cache_bytes,
            max_workers=args.threads,
            queue_depth=args.queue_depth,
            planner=planner,
        )

    if args.shards > 1:
        # Scale-out topology: each shard gets --threads workers (a
        # shard models a machine; adding shards adds capacity).
        with ShardedLayoutService(
            store,
            tree,
            num_shards=args.shards,
            partition=args.partition,
            num_advanced_cuts=registry.num_advanced_cuts,
            cache_budget_bytes=cache_bytes,
            max_workers_per_shard=args.threads,
            queue_depth=args.queue_depth,
            planner=planner,
        ) as service:
            replay, report = replay_service(service)
    else:
        with make_single_service() as service:
            replay, report = replay_service(service)
    print(
        f"replayed {replay.completed}/{replay.issued} queries "
        f"({replay.rejected} rejected) in {replay.wall_seconds:.3f} s "
        f"-> {replay.qps:.1f} qps"
    )
    print(report)
    if args.compare:
        if args.shards > 1:
            with make_single_service() as single:
                one_shard, _ = replay_service(single)
            ratio = (
                replay.qps / one_shard.qps if one_shard.qps > 0 else float("inf")
            )
            print(f"\n1-shard service: {one_shard.qps:.1f} qps")
            print(f"sharded ({args.shards} shards) speedup: {ratio:.2f}x")
        base_qps, _ = run_serial_baseline(
            store,
            tree,
            statements,
            repeat=args.repeat,
            planner=planner,
            num_advanced_cuts=registry.num_advanced_cuts,
        )
        speedup = replay.qps / base_qps if base_qps > 0 else float("inf")
        print(f"\nserial uncached baseline: {base_qps:.1f} qps")
        print(f"serving speedup: {speedup:.2f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="learn a layout from SQL queries")
    p_build.add_argument("--table", required=True,
                         help="directory written by save_table()")
    p_build.add_argument("--queries", required=True,
                         help="file of SQL statements, one per line")
    p_build.add_argument("--out", required=True, help="output directory")
    p_build.add_argument("--method", choices=("greedy", "woodblock"),
                         default="greedy")
    p_build.add_argument("--min-block-size", type=int, default=1000)
    p_build.add_argument("--episodes", type=int, default=100)
    p_build.add_argument("--hidden-dim", type=int, default=128)
    p_build.add_argument("--seed", type=int, default=0)
    p_build.set_defaults(func=_cmd_build)

    p_inspect = sub.add_parser("inspect", help="describe a saved layout")
    p_inspect.add_argument("--layout", required=True)
    p_inspect.set_defaults(func=_cmd_inspect)

    p_route = sub.add_parser("route", help="route a SQL query")
    p_route.add_argument("--layout", required=True)
    p_route.add_argument("--sql", required=True)
    p_route.set_defaults(func=_cmd_route)

    p_serve = sub.add_parser(
        "serve-bench", help="replay a workload through the serving tier"
    )
    p_serve.add_argument("--layout", required=True)
    p_serve.add_argument("--queries",
                         help="SQL file to replay (default: the layout's "
                              "build workload)")
    p_serve.add_argument("--threads", type=int, default=4)
    p_serve.add_argument("--repeat", type=int, default=10,
                         help="times the statement list is replayed")
    p_serve.add_argument("--cache-mb", type=int, default=64,
                         help="buffer-pool budget in MiB")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable the buffer pool")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="shard count; > 1 serves through the "
                              "scatter-gather ShardedLayoutService "
                              "(--threads workers per shard)")
    p_serve.add_argument("--partition", choices=("rr", "subtree"),
                         default="rr",
                         help="shard partition strategy: round-robin "
                              "by BID, or contiguous qd-tree subtrees")
    p_serve.add_argument("--queue-depth", type=int, default=64)
    p_serve.add_argument("--mode", choices=("closed", "open"),
                         default="closed")
    p_serve.add_argument("--target-qps", type=float, default=1000.0,
                         help="arrival rate for --mode open")
    p_serve.add_argument("--compare", action="store_true",
                         help="also run the serial uncached baseline "
                              "and print the speedup")
    p_serve.set_defaults(func=_cmd_serve_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
