"""Command-line interface: learn, inspect and query qd-tree layouts.

Subcommands
-----------

``build``
    Learn a layout for a saved table (see
    :func:`repro.storage.save_table`) from a file of SQL queries (one
    per line), write the partitioned block store + tree next to it.
``inspect``
    Print a saved layout's block descriptions and cut histogram.
``route``
    Route one SQL query against a saved layout: prints the pruned BID
    list and scan statistics.

Example::

    python -m repro.cli build  --table t/ --queries wl.sql --out layout/
    python -m repro.cli inspect --layout layout/
    python -m repro.cli route  --layout layout/ \
        --sql "SELECT * FROM t WHERE x < 10"
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .bench.harness import materialize_tree
from .core.greedy import GreedyConfig, build_greedy_tree
from .core.router import QueryRouter
from .core.tree import QdTree
from .engine.executor import ScanEngine
from .engine.profiles import SPARK_PARQUET
from .rl.woodblock import Woodblock, WoodblockConfig
from .sql.planner import SqlPlanner
from .storage.catalog import load_store, load_table, save_store

__all__ = ["main"]

_TREE_FILE = "qdtree.json"
_META_FILE = "layout-meta.json"


def _read_queries(path: Path) -> List[str]:
    statements = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("--"):
            statements.append(line)
    if not statements:
        raise SystemExit(f"no queries found in {path}")
    return statements


def _cmd_build(args: argparse.Namespace) -> int:
    table = load_table(args.table)
    planner = SqlPlanner(table.schema)
    statements = _read_queries(Path(args.queries))
    workload = planner.plan_workload(statements)
    registry = planner.candidate_cuts(workload)
    print(
        f"planned {len(workload)} queries -> {len(registry)} candidate cuts "
        f"({registry.num_advanced_cuts} advanced)"
    )
    if args.method == "greedy":
        tree = build_greedy_tree(
            table.schema,
            registry,
            table,
            workload,
            GreedyConfig(min_leaf_size=args.min_block_size),
        )
    else:
        agent = Woodblock(
            table.schema,
            registry,
            table,
            workload,
            WoodblockConfig(
                min_leaf_size=args.min_block_size,
                episodes=args.episodes,
                hidden_dim=args.hidden_dim,
                seed=args.seed,
            ),
        )
        result = agent.train()
        tree = result.best_tree
        print(
            f"trained {result.episodes_run} episodes; "
            f"best sample scan ratio {result.best_scan_ratio:.4f}"
        )
    store = materialize_tree(tree, table)
    out = Path(args.out)
    save_store(store, out)
    tree.save(str(out / _TREE_FILE))
    (out / _META_FILE).write_text(
        json.dumps(
            {
                "method": args.method,
                "min_block_size": args.min_block_size,
                "num_blocks": store.num_blocks,
                "queries": statements,
            },
            indent=2,
        )
    )
    print(f"wrote {store.num_blocks} blocks to {out}/")
    return 0


def _load_layout(path: Path):
    store = load_store(path)
    meta = json.loads((path / _META_FILE).read_text())
    planner = SqlPlanner(store.schema)
    workload = planner.plan_workload(meta["queries"])
    registry = planner.candidate_cuts(workload)
    tree = QdTree.load(str(path / _TREE_FILE), store.schema, registry)
    return store, tree, registry, planner


def _cmd_inspect(args: argparse.Namespace) -> int:
    store, tree, _, _ = _load_layout(Path(args.layout))
    print(f"{store.num_blocks} blocks over {store.logical_rows} rows "
          f"(tree depth {tree.depth()})")
    print("\ncut histogram:")
    for column, count in sorted(
        tree.cut_histogram().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {column:<20} {count}")
    print("\nblock descriptions:")
    sizes = {b.block_id: b.num_rows for b in store}
    for bid, description in sorted(tree.leaf_descriptions().items()):
        print(f"  block {bid} ({sizes.get(bid, 0)} rows): {description}")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    store, tree, registry, planner = _load_layout(Path(args.layout))
    planned = planner.plan(args.sql)
    router = QueryRouter(tree)
    routed = router.route(planned.query)
    engine = ScanEngine(
        store, SPARK_PARQUET, num_advanced_cuts=registry.num_advanced_cuts
    )
    stats = engine.execute(planned.query, routed.block_ids)
    print(f"routed to {len(routed.block_ids)}/{store.num_blocks} blocks "
          f"in {1000 * routed.latency_seconds:.2f} ms")
    print(f"BID IN ({','.join(str(b) for b in routed.block_ids)})")
    print(f"scanned {stats.tuples_scanned} tuples, "
          f"returned {stats.rows_returned} rows")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="learn a layout from SQL queries")
    p_build.add_argument("--table", required=True,
                         help="directory written by save_table()")
    p_build.add_argument("--queries", required=True,
                         help="file of SQL statements, one per line")
    p_build.add_argument("--out", required=True, help="output directory")
    p_build.add_argument("--method", choices=("greedy", "woodblock"),
                         default="greedy")
    p_build.add_argument("--min-block-size", type=int, default=1000)
    p_build.add_argument("--episodes", type=int, default=100)
    p_build.add_argument("--hidden-dim", type=int, default=128)
    p_build.add_argument("--seed", type=int, default=0)
    p_build.set_defaults(func=_cmd_build)

    p_inspect = sub.add_parser("inspect", help="describe a saved layout")
    p_inspect.add_argument("--layout", required=True)
    p_inspect.set_defaults(func=_cmd_inspect)

    p_route = sub.add_parser("route", help="route a SQL query")
    p_route.add_argument("--layout", required=True)
    p_route.add_argument("--sql", required=True)
    p_route.set_defaults(func=_cmd_route)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
