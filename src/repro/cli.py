"""Command-line interface: learn, inspect and query layouts through
the unified :class:`repro.db.Database` facade.

Subcommands
-----------

``build``
    Learn a layout for a saved table (see
    :func:`repro.storage.save_table`) from a file of SQL queries (one
    per line) with any registered layout strategy
    (``--strategy greedy|woodblock|kdtree|hash|range|random|bottom_up``
    — the registry in :mod:`repro.db.registry`), write the partitioned
    block store + layout metadata (and the qd-tree, for tree
    strategies) next to it.
``inspect``
    Print a saved layout's strategy, generation, block descriptions
    and (for tree layouts) cut histogram.
``route``
    Route one SQL query against a saved layout: prints the pruned BID
    list and scan statistics.
``serve-bench``
    Replay a SQL workload against a saved layout through the
    :mod:`repro.serve` serving tier (thread pool + buffer-pool cache +
    generation-keyed result cache) and print the
    latency/throughput/cache report.  ``--shards N`` serves through
    the scatter-gather :class:`ShardedLayoutService` (``--partition
    rr|subtree`` picks the shard assignment).  ``--compare`` also runs
    the serial uncached baseline — and, when sharded, the 1-shard
    service — and prints the QPS speedups.  ``--adapt`` serves through
    the drift-adaptive :class:`AdaptiveService` instead (needs a
    layout saved with ``build --include-table``); ``--admission lfu``
    puts the frequency gate in front of the buffer pool.
``adapt-report``
    Replay a workload — optionally followed by a *drifted* second
    workload (``--drift-queries``) — through the adaptive serving
    tier and pretty-print the adaptation ledger: drift score, rebuild
    and swap counts, and per-event window costs.
``metrics-export``
    Replay a workload and print the unified metrics-registry export
    (Prometheus text exposition or JSON).

``serve-bench`` and ``adapt-report`` also take ``--json`` (one JSON
document on stdout, human report on stderr), ``--trace PREFIX``
(per-query + control-plane traces as ``PREFIX.jsonl`` and the
Perfetto-loadable ``PREFIX.trace.json``) and ``--emit-bench DIR
--scenario S`` (schema-versioned ``BENCH_S.json`` trajectory file,
validated by ``python -m repro.obs.bench``).

Example::

    python -m repro.cli build  --table t/ --queries wl.sql --out layout/
    python -m repro.cli build  --table t/ --queries wl.sql \
        --out layout-kd/ --strategy kdtree
    python -m repro.cli inspect --layout layout/
    python -m repro.cli route  --layout layout/ \
        --sql "SELECT * FROM t WHERE x < 10"
    python -m repro.cli serve-bench --layout layout/ \
        --threads 8 --repeat 20 --compare
    python -m repro.cli serve-bench --layout layout/ \
        --shards 4 --partition subtree --compare

Helpers raise :class:`ValueError` (so the same code paths are usable
as a library); :func:`main` converts them to exit code 2 at the top
level.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from pathlib import Path
from typing import List, Optional

from .adapt import AdaptPolicy
from .db import Database, get_strategy, strategy_names
from .obs import MetricsRegistry, Tracer, bench_document, plain, write_bench
from .serve import ResultCache, run_serial_baseline
from .storage.catalog import load_table

__all__ = ["main"]


class _StrategyAction(argparse.Action):
    """Store the strategy name; warn for the deprecated ``--method``.

    Validation happens against the live registry in ``_cmd_build``
    (NOT via argparse ``choices``) so strategies registered after
    parser construction are accepted, and a typo reports the
    registry's current names on stderr with exit code 2.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        if option_string == "--method":
            warnings.warn(
                "--method is deprecated; use --strategy",
                DeprecationWarning,
                stacklevel=2,
            )
            # DeprecationWarning is hidden by Python's default filters
            # outside test runners; a CLI user must see it regardless.
            print(
                "warning: --method is deprecated; use --strategy",
                file=sys.stderr,
            )
        setattr(namespace, self.dest, values)


def _read_queries(path: Path) -> List[str]:
    statements = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("--"):
            statements.append(line)
    if not statements:
        raise ValueError(f"no queries found in {path}")
    return statements


def _strategy_options(args: argparse.Namespace) -> dict:
    """Map CLI flags onto the chosen strategy's adapter options."""
    if args.strategy == "woodblock":
        return {
            "episodes": args.episodes,
            "hidden_dim": args.hidden_dim,
            "seed": args.seed,
        }
    if args.strategy == "random":
        return {"seed": args.seed}
    return {}


def _replay_summary(replay) -> dict:
    """Machine-readable replay outcome shared by --json and
    --emit-bench across serve-bench and adapt-report."""
    return {
        "issued": replay.issued,
        "completed": replay.completed,
        "rejected": replay.rejected,
        "wall_seconds": replay.wall_seconds,
        "qps": replay.qps,
    }


def _statements_for(args: argparse.Namespace, handle) -> List[str]:
    """The workload to replay: --queries file, else the layout's
    build workload."""
    if args.queries:
        return _read_queries(Path(args.queries))
    statements = list(handle.statements)
    if not statements:
        raise ValueError(
            "layout metadata has no build workload; pass --queries"
        )
    return statements


def _write_trace_exports(tracer: Tracer, prefix: str) -> dict:
    """Write PREFIX.jsonl + PREFIX.trace.json; returns a summary."""
    jsonl_path = f"{prefix}.jsonl"
    chrome_path = f"{prefix}.trace.json"
    traces = tracer.write_jsonl(jsonl_path)
    events = tracer.write_chrome_trace(chrome_path)
    return {
        "traces": traces,
        "events": events,
        "dropped": tracer.dropped,
        "jsonl": jsonl_path,
        "chrome": chrome_path,
    }


def _cmd_build(args: argparse.Namespace) -> int:
    # Validate against the live registry before any expensive work;
    # UnknownStrategyError is a ValueError listing the valid names, so
    # main() prints them to stderr and exits 2.
    get_strategy(args.strategy)
    table = load_table(args.table)
    db = Database.from_table(table, min_block_size=args.min_block_size)
    statements = _read_queries(Path(args.queries))
    workload = db.planner.plan_workload(statements)
    registry = db.planner.candidate_cuts(workload)
    print(
        f"planned {len(workload)} queries -> {len(registry)} candidate cuts "
        f"({registry.num_advanced_cuts} advanced)"
    )
    handle = db.build_layout(
        args.strategy,
        workload=statements,
        registry=registry,
        **_strategy_options(args),
    )
    if args.strategy == "woodblock" and handle.diagnostics is not None:
        result = handle.diagnostics
        print(
            f"trained {result.episodes_run} episodes; "
            f"best sample scan ratio {result.best_scan_ratio:.4f}"
        )
    out = Path(args.out)
    db.save(out, include_table=args.include_table)
    print(
        f"wrote {handle.store.num_blocks} blocks to {out}/ "
        f"({handle.strategy}, generation {handle.generation})"
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    db = Database.open(Path(args.layout))
    handle = db.active_layout
    assert handle is not None
    store = handle.store
    header = (
        f"{store.num_blocks} blocks over {store.logical_rows} rows "
        f"({handle.strategy}, generation {handle.generation}"
    )
    if handle.tree is not None:
        header += f", tree depth {handle.tree.depth()})"
    else:
        header += ")"
    print(header)
    if handle.tree is not None:
        print("\ncut histogram:")
        for column, count in sorted(
            handle.tree.cut_histogram().items(), key=lambda kv: -kv[1]
        ):
            print(f"  {column:<20} {count}")
    print("\nblock descriptions:")
    sizes = {b.block_id: b.num_rows for b in store}
    descriptions = (
        handle.tree.leaf_descriptions() if handle.tree is not None else {}
    )
    for bid in sorted(sizes):
        description = descriptions.get(bid) or store.block(bid).description
        print(
            f"  block {bid} ({sizes[bid]} rows): "
            f"{description or '(no description)'}"
        )
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    db = Database.open(Path(args.layout))
    result = db.execute(args.sql)
    store = db.active_layout.store  # type: ignore[union-attr]
    if result.routed_block_ids is not None:
        print(
            f"routed to {len(result.routed_block_ids)}/{store.num_blocks} "
            f"blocks in {1000 * result.latency_seconds:.2f} ms"
        )
        print(
            "BID IN ("
            + ",".join(str(b) for b in result.routed_block_ids)
            + ")"
        )
    else:
        print(
            f"no tree to route with; SMA pruning considered "
            f"{store.num_blocks} blocks "
            f"in {1000 * result.latency_seconds:.2f} ms"
        )
    print(
        f"scanned {result.stats.tuples_scanned} tuples, "
        f"returned {result.stats.rows_returned} rows"
    )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    db = Database.open(Path(args.layout))
    handle = db.active_layout
    assert handle is not None
    statements = _statements_for(args, handle)
    cache_bytes = None if args.no_cache else args.cache_mb * 1024 * 1024
    use_result_cache = not args.no_result_cache
    tracer = Tracer() if args.trace else None
    # With --json, stdout carries exactly one JSON document; everything
    # human-facing moves to stderr.
    info = sys.stderr if args.json else sys.stdout

    def replay_service(service):
        if args.mode == "open":
            replay = service.run_open_loop(
                statements, target_qps=args.target_qps, repeat=args.repeat
            )
        else:
            replay = service.run_closed_loop(statements, repeat=args.repeat)
        return replay, service.report()

    def serve(shards: int, traced: bool = True):
        active_tracer = tracer if traced else None
        if args.adapt:
            if shards > 1:
                raise ValueError(
                    "--adapt serves a single adaptive service; "
                    "drop --shards"
                )
            return db.auto_adapt(
                cache_budget_bytes=cache_bytes,
                max_workers=args.threads,
                queue_depth=args.queue_depth,
                admission=args.admission,
                result_cache=(
                    ResultCache() if use_result_cache else False
                ),
                tracer=active_tracer,
            )
        # Comparison runs get a private result cache so one replay
        # cannot pre-warm another's results.
        return db.serve(
            shards=shards,
            partition=args.partition,
            cache_budget_bytes=cache_bytes,
            max_workers=args.threads,
            queue_depth=args.queue_depth,
            result_cache=ResultCache() if use_result_cache else False,
            admission=args.admission,
            tracer=active_tracer,
        )

    with serve(args.shards) as service:
        replay, report = replay_service(service)
    print(
        f"replayed {replay.completed}/{replay.issued} queries "
        f"({replay.rejected} rejected) in {replay.wall_seconds:.3f} s "
        f"-> {replay.qps:.1f} qps",
        file=info,
    )
    print(report, file=info)
    compare: dict = {}
    if args.compare:
        if args.shards > 1:
            with serve(1, traced=False) as single:
                one_shard, _ = replay_service(single)
            ratio = (
                replay.qps / one_shard.qps if one_shard.qps > 0 else float("inf")
            )
            compare["one_shard_qps"] = one_shard.qps
            compare["shard_speedup"] = ratio
            print(f"\n1-shard service: {one_shard.qps:.1f} qps", file=info)
            print(
                f"sharded ({args.shards} shards) speedup: {ratio:.2f}x",
                file=info,
            )
        base_qps, _ = run_serial_baseline(
            handle.store,
            handle.tree,
            statements,
            repeat=args.repeat,
            planner=db.planner,
            num_advanced_cuts=handle.num_advanced_cuts,
        )
        speedup = replay.qps / base_qps if base_qps > 0 else float("inf")
        compare["serial_qps"] = base_qps
        compare["serving_speedup"] = speedup
        print(f"\nserial uncached baseline: {base_qps:.1f} qps", file=info)
        print(f"serving speedup: {speedup:.2f}x", file=info)
    trace_summary = None
    if tracer is not None:
        trace_summary = _write_trace_exports(tracer, args.trace)
        print(
            f"wrote {trace_summary['traces']} traces to "
            f"{trace_summary['jsonl']} and {trace_summary['events']} "
            f"events to {trace_summary['chrome']} (Perfetto-loadable)",
            file=info,
        )
    extra = {"shards": args.shards, "mode": args.mode}
    if compare:
        extra["compare"] = compare
    if trace_summary is not None:
        extra["trace"] = trace_summary
    if args.emit_bench:
        doc = bench_document(
            scenario=args.scenario,
            source="serve-bench",
            snapshot=replay.snapshot,
            replay=_replay_summary(replay),
            extra=extra,
        )
        path = write_bench(args.emit_bench, doc)
        print(f"wrote trajectory file {path}", file=info)
    if args.json:
        import json as _json

        document = {
            "command": "serve-bench",
            "scenario": args.scenario,
            "replay": _replay_summary(replay),
            "metrics": plain(replay.snapshot),
            "extra": plain(extra),
        }
        print(_json.dumps(document, indent=2, sort_keys=True))
    return 0


def _cmd_adapt_report(args: argparse.Namespace) -> int:
    db = Database.open(Path(args.layout))
    handle = db.active_layout
    assert handle is not None
    statements = _statements_for(args, handle)
    drifted = (
        _read_queries(Path(args.drift_queries))
        if args.drift_queries
        else []
    )
    tracer = Tracer() if args.trace else None
    info = sys.stderr if args.json else sys.stdout
    policy = AdaptPolicy(
        window=args.window,
        threshold=args.threshold,
        min_records=min(args.window, max(8, args.window // 4)),
        check_every=max(1, args.window // 8),
        min_improvement=args.min_improvement,
        strategy=args.strategy,
    )
    second = None
    with db.auto_adapt(
        policy=policy,
        max_workers=args.threads,
        tracer=tracer,
    ) as service:
        first = service.run_closed_loop(statements, repeat=args.repeat)
        print(
            f"replayed {first.completed} baseline queries on "
            f"generation {service.generation} "
            f"(drift {service.detector.last_score:.3f})",
            file=info,
        )
        if drifted:
            second = service.run_closed_loop(drifted, repeat=args.repeat)
            service.join_adaptation()
            print(
                f"replayed {second.completed} drifted queries "
                f"-> drift {service.detector.last_score:.3f}, "
                f"now serving generation {service.generation}",
                file=info,
            )
        print(file=info)
        print(service.report(), file=info)
        final_snapshot = service.snapshot()
        final_generation = service.generation
        final_drift = service.detector.last_score
    trace_summary = None
    if tracer is not None:
        trace_summary = _write_trace_exports(tracer, args.trace)
        print(
            f"wrote {trace_summary['traces']} traces to "
            f"{trace_summary['jsonl']} and {trace_summary['events']} "
            f"events to {trace_summary['chrome']} (Perfetto-loadable)",
            file=info,
        )
    extra = {
        "generation": final_generation,
        "drift_score": final_drift,
        "baseline": _replay_summary(first),
    }
    if second is not None:
        extra["drifted"] = _replay_summary(second)
    if trace_summary is not None:
        extra["trace"] = trace_summary
    if args.emit_bench:
        doc = bench_document(
            scenario=args.scenario,
            source="adapt-report",
            snapshot=final_snapshot,
            replay=_replay_summary(second if second is not None else first),
            extra=extra,
        )
        path = write_bench(args.emit_bench, doc)
        print(f"wrote trajectory file {path}", file=info)
    if args.json:
        import json as _json

        document = {
            "command": "adapt-report",
            "scenario": args.scenario,
            "replay": _replay_summary(second if second is not None else first),
            "metrics": plain(final_snapshot),
            "extra": plain(extra),
        }
        print(_json.dumps(document, indent=2, sort_keys=True))
    return 0


def _cmd_metrics_export(args: argparse.Namespace) -> int:
    """Replay a workload, publish every serving component into one
    :class:`MetricsRegistry`, and print the export."""
    db = Database.open(Path(args.layout))
    handle = db.active_layout
    assert handle is not None
    statements = _statements_for(args, handle)
    registry = MetricsRegistry()
    with db.serve(
        shards=args.shards,
        max_workers=args.threads,
        result_cache=ResultCache(),
    ) as service:
        service.run_closed_loop(statements, repeat=args.repeat)
        service.publish_metrics(registry, service="cli")
        if args.format == "prometheus":
            print(registry.to_prometheus_text(), end="")
        else:
            import json as _json

            print(_json.dumps(registry.to_json(), indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="learn a layout from SQL queries")
    p_build.add_argument("--table", required=True,
                         help="directory written by save_table()")
    p_build.add_argument("--queries", required=True,
                         help="file of SQL statements, one per line")
    p_build.add_argument("--out", required=True, help="output directory")
    p_build.add_argument("--strategy", "--method", dest="strategy",
                         action=_StrategyAction, default="greedy",
                         metavar="STRATEGY",
                         help="registered layout strategy: "
                              + ", ".join(strategy_names())
                              + " (--method is a deprecated alias and "
                                "emits a DeprecationWarning)")
    p_build.add_argument("--min-block-size", type=int, default=1000)
    p_build.add_argument("--include-table", action="store_true",
                         help="also persist the logical table so the "
                              "reopened layout can ingest and "
                              "auto-adapt (adapt-report, "
                              "serve-bench --adapt)")
    p_build.add_argument("--episodes", type=int, default=100,
                         help="woodblock: training episodes")
    p_build.add_argument("--hidden-dim", type=int, default=128,
                         help="woodblock: policy network width")
    p_build.add_argument("--seed", type=int, default=0,
                         help="woodblock/random: RNG seed")
    p_build.set_defaults(func=_cmd_build)

    p_inspect = sub.add_parser("inspect", help="describe a saved layout")
    p_inspect.add_argument("--layout", required=True)
    p_inspect.set_defaults(func=_cmd_inspect)

    p_route = sub.add_parser("route", help="route a SQL query")
    p_route.add_argument("--layout", required=True)
    p_route.add_argument("--sql", required=True)
    p_route.set_defaults(func=_cmd_route)

    p_serve = sub.add_parser(
        "serve-bench", help="replay a workload through the serving tier"
    )
    p_serve.add_argument("--layout", required=True)
    p_serve.add_argument("--queries",
                         help="SQL file to replay (default: the layout's "
                              "build workload)")
    p_serve.add_argument("--threads", type=int, default=4)
    p_serve.add_argument("--repeat", type=int, default=10,
                         help="times the statement list is replayed")
    p_serve.add_argument("--cache-mb", type=int, default=64,
                         help="buffer-pool budget in MiB")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="disable the buffer pool")
    p_serve.add_argument("--no-result-cache", action="store_true",
                         help="disable the generation-keyed result cache")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="shard count; > 1 serves through the "
                              "scatter-gather ShardedLayoutService "
                              "(--threads workers per shard)")
    p_serve.add_argument("--partition", choices=("rr", "subtree"),
                         default="rr",
                         help="shard partition strategy: round-robin "
                              "by BID, or contiguous qd-tree subtrees")
    p_serve.add_argument("--queue-depth", type=int, default=64)
    p_serve.add_argument("--mode", choices=("closed", "open"),
                         default="closed")
    p_serve.add_argument("--target-qps", type=float, default=1000.0,
                         help="arrival rate for --mode open")
    p_serve.add_argument("--compare", action="store_true",
                         help="also run the serial uncached baseline "
                              "and print the speedup")
    p_serve.add_argument("--adapt", action="store_true",
                         help="serve through the drift-adaptive "
                              "AdaptiveService (layout must be saved "
                              "with build --include-table)")
    p_serve.add_argument("--admission", choices=("lru", "lfu"),
                         default="lru",
                         help="buffer-pool admission policy "
                              "(lfu = tiny-LFU frequency gate)")
    p_serve.add_argument("--json", action="store_true",
                         help="print one JSON document to stdout "
                              "(human report moves to stderr)")
    p_serve.add_argument("--trace", metavar="PREFIX",
                         help="record per-query traces; writes "
                              "PREFIX.jsonl and PREFIX.trace.json "
                              "(Chrome trace-event / Perfetto format)")
    p_serve.add_argument("--emit-bench", metavar="DIR",
                         help="write a schema-versioned "
                              "BENCH_<scenario>.json trajectory file "
                              "under DIR")
    p_serve.add_argument("--scenario", default="serve",
                         help="scenario name for --emit-bench / --json")
    p_serve.set_defaults(func=_cmd_serve_bench)

    p_adapt = sub.add_parser(
        "adapt-report",
        help="replay a (drifting) workload adaptively and print the "
             "drift/swap/arbiter ledger",
    )
    p_adapt.add_argument("--layout", required=True,
                         help="layout directory saved with "
                              "build --include-table")
    p_adapt.add_argument("--queries",
                         help="baseline SQL file (default: the "
                              "layout's build workload)")
    p_adapt.add_argument("--drift-queries",
                         help="SQL file replayed after the baseline "
                              "to exercise the drift loop")
    p_adapt.add_argument("--repeat", type=int, default=10)
    p_adapt.add_argument("--threads", type=int, default=4)
    p_adapt.add_argument("--window", type=int, default=128,
                         help="drift window (records)")
    p_adapt.add_argument("--threshold", type=float, default=0.3,
                         help="drift score arming a rebuild")
    p_adapt.add_argument("--min-improvement", type=float, default=0.1,
                         help="window blocks-scanned margin a "
                              "candidate must win by")
    p_adapt.add_argument("--strategy", default="greedy",
                         help="rebuild strategy (any registered name)")
    p_adapt.add_argument("--json", action="store_true",
                         help="print one JSON document to stdout "
                              "(human report moves to stderr)")
    p_adapt.add_argument("--trace", metavar="PREFIX",
                         help="record query + control-plane traces; "
                              "writes PREFIX.jsonl and "
                              "PREFIX.trace.json")
    p_adapt.add_argument("--emit-bench", metavar="DIR",
                         help="write BENCH_<scenario>.json under DIR")
    p_adapt.add_argument("--scenario", default="adapt",
                         help="scenario name for --emit-bench / --json")
    p_adapt.set_defaults(func=_cmd_adapt_report)

    p_metrics = sub.add_parser(
        "metrics-export",
        help="replay a workload and print the unified metrics-registry "
             "export (Prometheus text or JSON)",
    )
    p_metrics.add_argument("--layout", required=True)
    p_metrics.add_argument("--queries",
                           help="SQL file to replay (default: the "
                                "layout's build workload)")
    p_metrics.add_argument("--repeat", type=int, default=5)
    p_metrics.add_argument("--threads", type=int, default=4)
    p_metrics.add_argument("--shards", type=int, default=1)
    p_metrics.add_argument("--format", choices=("prometheus", "json"),
                           default="prometheus")
    p_metrics.set_defaults(func=_cmd_metrics_export)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        # Library-level errors (bad workload files, unknown strategies
        # registered after parser construction, facade misuse) become
        # exit codes here, not SystemExit deep in helpers.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
