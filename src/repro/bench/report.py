"""Plain-text result tables for benchmark output.

The benchmark suite prints the same rows/series the paper reports;
these helpers format them consistently so EXPERIMENTS.md can be
assembled from bench logs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["format_table", "format_cdf", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """A fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_cdf(
    xs: np.ndarray,
    ys: np.ndarray,
    quantiles: Sequence[float] = (0.25, 0.5, 0.75, 0.9, 1.0),
    label: str = "value",
) -> str:
    """Summarize a CDF at selected quantiles."""
    if len(xs) == 0:
        return f"{label}: empty"
    lines = [f"CDF of {label} ({len(xs)} points):"]
    for q in quantiles:
        idx = min(len(xs) - 1, int(np.ceil(q * len(xs))) - 1)
        lines.append(f"  p{int(q * 100):>3}: {_fmt(xs[idx])}")
    return "\n".join(lines)


def format_series(
    points: Sequence[Tuple[float, float]],
    x_label: str = "x",
    y_label: str = "y",
    max_points: int = 20,
) -> str:
    """A compact (x, y) series listing (learning curves etc.)."""
    if not points:
        return f"{x_label}/{y_label}: empty"
    step = max(1, len(points) // max_points)
    chosen = list(points[::step])
    if chosen[-1] != points[-1]:
        chosen.append(points[-1])
    lines = [f"{x_label:>12} {y_label:>12}"]
    for x, y in chosen:
        lines.append(f"{_fmt(x):>12} {_fmt(y):>12}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float) or isinstance(value, np.floating):
        v = float(value)
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.4f}"
    return str(value)
