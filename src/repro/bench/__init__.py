"""Benchmark harness and reporting utilities."""

from .ascii_plot import bar_chart, cdf_chart, line_chart
from .harness import (
    LayoutResult,
    build_baseline_layout,
    build_greedy_layout,
    build_rl_layout,
    logical_access_pct,
    materialize_tree,
    run_physical,
    sample_for_construction,
)
from .report import format_cdf, format_series, format_table

__all__ = [
    "LayoutResult",
    "bar_chart",
    "cdf_chart",
    "line_chart",
    "build_baseline_layout",
    "build_greedy_layout",
    "build_rl_layout",
    "format_cdf",
    "format_series",
    "format_table",
    "logical_access_pct",
    "materialize_tree",
    "run_physical",
    "sample_for_construction",
]
