"""Terminal plotting: render benchmark series without matplotlib.

The benchmark suite runs in minimal environments, so figures are drawn
as fixed-grid ASCII charts: line charts for learning curves (Fig. 8),
step charts for CDFs (Fig. 6b / 7c) and bar charts for per-template
runtimes (Fig. 5).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

__all__ = ["line_chart", "bar_chart", "cdf_chart"]


def _scale(
    values: np.ndarray, lo: float, hi: float, cells: int
) -> np.ndarray:
    """Map values into integer grid cells [0, cells-1]."""
    if hi <= lo:
        return np.zeros(len(values), dtype=int)
    frac = (np.asarray(values, dtype=float) - lo) / (hi - lo)
    return np.clip((frac * (cells - 1)).round().astype(int), 0, cells - 1)


def line_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 12,
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
) -> str:
    """An ASCII line chart of one (x, y) series."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if len(xs) == 0:
        return f"{title or 'chart'}: empty"
    grid = [[" "] * width for _ in range(height)]
    x_cells = _scale(xs, xs.min(), xs.max(), width)
    y_cells = _scale(ys, ys.min(), ys.max(), height)
    for cx, cy in zip(x_cells, y_cells):
        grid[height - 1 - cy][cx] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ys.max():>10.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 11 + "│" + "".join(row))
    lines.append(f"{ys.min():>10.4g} ┤" + "".join(grid[-1]))
    lines.append(
        " " * 11 + "└" + "─" * width
    )
    lines.append(
        " " * 12 + f"{xs.min():<.4g}"
        + " " * max(1, width - 16)
        + f"{xs.max():>.4g}  ({x_label} vs {y_label})"
    )
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """A horizontal ASCII bar chart."""
    if not values:
        return f"{title or 'chart'}: empty"
    peak = max(values.values()) or 1.0
    label_width = max(len(k) for k in values)
    lines = []
    if title:
        lines.append(title)
    for key, value in values.items():
        bar = "█" * max(1, int(round(width * value / peak))) if value > 0 else ""
        lines.append(f"{key:>{label_width}} │{bar} {value:.4g}{unit}")
    return "\n".join(lines)


def cdf_chart(
    xs: np.ndarray,
    ys: np.ndarray,
    width: int = 60,
    height: int = 10,
    x_label: str = "value",
    title: Optional[str] = None,
    log_x: bool = False,
) -> str:
    """An ASCII CDF (step) chart; ``log_x`` for wide-range speedups."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    finite = np.isfinite(xs)
    xs, ys = xs[finite], ys[finite]
    if len(xs) == 0:
        return f"{title or 'cdf'}: empty"
    plot_x = np.log10(np.maximum(xs, 1e-12)) if log_x else xs
    grid = [[" "] * width for _ in range(height)]
    x_cells = _scale(plot_x, plot_x.min(), plot_x.max(), width)
    y_cells = _scale(ys, 0.0, 1.0, height)
    for cx, cy in zip(x_cells, y_cells):
        grid[height - 1 - cy][cx] = "▒"
    lines = []
    if title:
        lines.append(title)
    lines.append("      1.00 ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 11 + "│" + "".join(row))
    lines.append("      0.00 ┤" + "".join(grid[-1]))
    lines.append(" " * 11 + "└" + "─" * width)
    lo = f"{xs.min():.3g}"
    hi = f"{xs.max():.3g}"
    scale_note = " (log x)" if log_x else ""
    lines.append(
        " " * 12 + lo + " " * max(1, width - len(lo) - len(hi) - 2)
        + hi + f"  ({x_label}{scale_note})"
    )
    return "\n".join(lines)
