"""Experiment harness: build layouts, run workloads, compare.

Glue used by every ``benchmarks/`` module: construct a physical layout
with any partitioner (qd-tree greedy/RL or a baseline), materialize a
:class:`~repro.storage.blocks.BlockStore`, execute a workload through
the :class:`~repro.engine.executor.ScanEngine`, and report both logical
(access %) and physical (modeled runtime) metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.cuts import CutRegistry
from ..core.router import QueryRouter
from ..core.tree import QdTree
from ..core.workload import Workload
from ..engine.executor import ScanEngine
from ..engine.profiles import SPARK_PARQUET, CostProfile
from ..engine.stats import WorkloadReport
from ..rl.woodblock import WoodblockResult
from ..storage.blocks import BlockStore
from ..storage.table import Table
from ..workloads.base import Dataset

__all__ = [
    "LayoutResult",
    "build_greedy_layout",
    "build_rl_layout",
    "build_baseline_layout",
    "logical_access_pct",
    "run_physical",
    "sample_for_construction",
]


@dataclass
class LayoutResult:
    """A materialized layout plus provenance."""

    label: str
    store: BlockStore
    tree: Optional[QdTree]
    build_seconds: float
    #: Training diagnostics for RL layouts.
    rl_result: Optional[WoodblockResult] = None

    @property
    def num_blocks(self) -> int:
        return self.store.num_blocks


def sample_for_construction(
    dataset: Dataset, sample_ratio: Optional[float], seed: int = 0
) -> Tuple[Table, int]:
    """(construction sample, b scaled to sample rows) — Sec. 5.2.1.

    ``sample_ratio=None`` uses the full table (appropriate at our
    generated scales; the paper samples 0.1%-1% of 77M+ rows).
    """
    if sample_ratio is None:
        return dataset.table, dataset.min_block_size
    rng = np.random.default_rng(seed)
    sample = dataset.table.sample(sample_ratio, rng)
    scaled_b = max(1, round(dataset.min_block_size * sample_ratio))
    return sample, scaled_b


def build_greedy_layout(
    dataset: Dataset,
    registry: Optional[CutRegistry] = None,
    sample_ratio: Optional[float] = None,
    label: str = "greedy",
) -> LayoutResult:
    """Greedy qd-tree layout over the dataset.

    .. deprecated::
        Thin shim over ``Database.build_layout("greedy", ...)`` — the
        facade (:class:`repro.db.Database`) is the canonical entry
        point; this wrapper survives for the benchmark suite.
    """
    from ..db import Database

    db = Database.from_table(
        dataset.table, min_block_size=dataset.min_block_size
    )
    handle = db.build_layout(
        "greedy",
        workload=dataset.workload,
        registry=registry,
        sample_ratio=sample_ratio,
        label=label,
    )
    return LayoutResult(label, handle.store, handle.tree, handle.build_seconds)


def build_rl_layout(
    dataset: Dataset,
    registry: Optional[CutRegistry] = None,
    sample_ratio: Optional[float] = None,
    episodes: int = 150,
    time_budget_seconds: Optional[float] = None,
    hidden_dim: int = 128,
    seed: int = 0,
    label: str = "woodblock",
) -> LayoutResult:
    """Woodblock (RL) qd-tree layout over the dataset.

    .. deprecated::
        Thin shim over ``Database.build_layout("woodblock", ...)`` —
        see :func:`build_greedy_layout`.
    """
    from ..db import Database

    db = Database.from_table(
        dataset.table, min_block_size=dataset.min_block_size
    )
    handle = db.build_layout(
        "woodblock",
        workload=dataset.workload,
        registry=registry,
        sample_ratio=sample_ratio,
        sample_seed=seed,
        label=label,
        episodes=episodes,
        time_budget_seconds=time_budget_seconds,
        hidden_dim=hidden_dim,
        seed=seed,
    )
    return LayoutResult(
        label, handle.store, handle.tree, handle.build_seconds,
        handle.diagnostics,
    )


def materialize_tree(tree: QdTree, table: Table) -> BlockStore:
    """Freeze the tree over the full table and emit blocks."""
    bids = tree.freeze(table)
    return BlockStore.from_assignment(
        table, bids, descriptions=tree.leaf_descriptions()
    )


def build_baseline_layout(
    dataset: Dataset,
    partitioner,
    label: Optional[str] = None,
) -> LayoutResult:
    """Layout from any object with ``partition(table) -> bids``."""
    t0 = time.perf_counter()
    bids = partitioner.partition(dataset.table)
    build_seconds = time.perf_counter() - t0
    store = BlockStore.from_assignment(dataset.table, bids)
    return LayoutResult(
        label or getattr(partitioner, "name", "baseline"),
        store,
        None,
        build_seconds,
    )


def logical_access_pct(
    layout: LayoutResult,
    workload: Workload,
    use_routing: bool = True,
    num_advanced_cuts: int = 0,
) -> float:
    """Table-2-style % tuples accessed for a layout.

    Qd-tree layouts route queries through the tree (semantic
    descriptions + tightened min-max); baseline layouts rely on SMA
    pruning alone.
    """
    engine = ScanEngine(
        layout.store, SPARK_PARQUET, num_advanced_cuts=num_advanced_cuts
    )
    routed: Optional[List[Optional[Sequence[int]]]] = None
    if use_routing and layout.tree is not None:
        router = QueryRouter(layout.tree)
        routed = [router.route(q).block_ids for q in workload]
    stats = engine.execute_workload(workload, routed)
    report = WorkloadReport(layout.label, stats)
    return report.access_percentage(layout.store.logical_rows)


def run_physical(
    layout: LayoutResult,
    workload: Workload,
    profile: CostProfile = SPARK_PARQUET,
    use_routing: bool = True,
    num_advanced_cuts: int = 0,
) -> WorkloadReport:
    """Execute the workload physically; returns the full report."""
    engine = ScanEngine(layout.store, profile, num_advanced_cuts=num_advanced_cuts)
    routed: Optional[List[Optional[Sequence[int]]]] = None
    if use_routing and layout.tree is not None:
        router = QueryRouter(layout.tree)
        routed = [router.route(q).block_ids for q in workload]
    stats = engine.execute_workload(workload, routed)
    suffix = "" if use_routing and layout.tree is not None else " (no route)"
    return WorkloadReport(layout.label + suffix, stats)
