"""The sanctioned clocks for observability code.

Two clocks, two jobs, never mixed:

* :func:`now` — the **monotonic perf clock** (``time.perf_counter``).
  Every duration, latency, span and stage timing in ``src/`` must come
  from differences of this clock; it never jumps backwards and has the
  finest resolution the platform offers.
* :func:`wall_time` — the **epoch clock** (``time.time``).  Only for
  *stamping* artifacts that leave the process (trace exports, bench
  trajectory files) with a human-anchorable creation time.  Never
  subtract two wall times to measure anything.

A lint rule (``TID251`` banned-api in ``ruff.toml``) forbids raw
``time.time()`` everywhere else under ``src/`` so the distinction is
enforced, not aspirational: this module is the single allowed call
site.
"""

from __future__ import annotations

import time

__all__ = ["now", "wall_time"]


def now() -> float:
    """Seconds on the process-wide monotonic perf clock.

    The zero point is arbitrary (process start, typically); only
    differences are meaningful.  This is the one clock spans, stage
    timings and latencies are measured on, which is also what lets one
    trace export place every span on a single consistent timeline.
    """
    return time.perf_counter()


def wall_time() -> float:
    """Seconds since the Unix epoch — for stamping exported artifacts
    (``BENCH_*.json`` files, trace exports), never for measuring."""
    return time.time()  # noqa: TID251 - the single sanctioned call site
