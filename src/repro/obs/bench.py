"""Benchmark trajectory emission: ``BENCH_<scenario>.json`` files.

ROADMAP item 5 flags that perf is not tracked PR-over-PR because no
machine-readable benchmark artifact exists.  This module closes that
gap: :func:`bench_document` rolls a serving run's final
``MetricsSnapshot`` (plus, optionally, the replay summary and a
:class:`~repro.obs.registry.MetricsRegistry` export) into one
schema-versioned JSON document, :func:`write_bench` lands it as
``BENCH_<scenario>.json``, and :func:`validate_bench` checks a
document against the schema — hand-rolled, because the container has
no ``jsonschema`` — so CI can gate on artifact shape.

``python -m repro.obs.bench FILE...`` validates files from the command
line (exit 0 = all valid, 2 = any invalid), which is exactly what the
``bench-smoke`` CI job runs against the artifact it just emitted.
"""

from __future__ import annotations

import dataclasses
import json
import re
import sys
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from .clock import wall_time

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "bench_document",
    "bench_path",
    "plain",
    "validate_bench",
    "write_bench",
]

#: Bump on any backwards-incompatible change to the document shape.
BENCH_SCHEMA_VERSION = 1

_SCENARIO_RE = re.compile(r"^[A-Za-z0-9_.-]+$")


def plain(value: Any) -> Any:
    """Recursively reduce snapshots to JSON-serializable plain data.

    Handles nested dataclasses (``MetricsSnapshot`` carries
    ``CacheStats``/``AdaptSnapshot``/``ArbiterStats``), numpy scalars,
    mappings, and sequences.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: plain(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(k): plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [plain(v) for v in value]
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    # numpy scalars (and anything else numeric) expose item();
    # fall back to str for the truly exotic rather than crashing an
    # export path.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return plain(item())
        except Exception:
            pass
    return str(value)


def bench_document(
    scenario: str,
    source: str,
    snapshot: Any,
    replay: Optional[Mapping[str, Any]] = None,
    registry: Any = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Build one schema-versioned trajectory document.

    ``source`` names the producing command (``serve-bench`` /
    ``adapt-report``); ``snapshot`` is the run's final
    ``MetricsSnapshot`` (any dataclass works — it is flattened via
    :func:`plain`); ``replay`` is the optional replay summary
    (wall seconds, offered qps, ...); ``registry`` adds the full
    metrics-registry JSON export when provided.
    """
    if not _SCENARIO_RE.match(scenario):
        raise ValueError(
            f"invalid scenario {scenario!r}: use letters, digits, '_', '.', '-'"
        )
    snap = plain(snapshot)
    if not isinstance(snap, dict):
        raise ValueError("snapshot must flatten to a JSON object")
    doc: Dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "scenario": scenario,
        "source": source,
        "created_unix": wall_time(),
        "metrics": snap,
    }
    if replay is not None:
        doc["replay"] = plain(dict(replay))
    if registry is not None:
        doc["registry"] = plain(registry.to_json())
    if extra:
        doc["extra"] = plain(dict(extra))
    return doc


def bench_path(directory, scenario: str) -> Path:
    return Path(directory) / f"BENCH_{scenario}.json"


def write_bench(directory, document: Mapping[str, Any]) -> Path:
    """Validate and write ``BENCH_<scenario>.json`` under *directory*
    (created if needed); returns the written path."""
    validate_bench(document)
    path = bench_path(directory, str(document["scenario"]))
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as f:
        json.dump(document, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def _fail(errors: List[str], message: str) -> None:
    errors.append(message)


def validate_bench(document: Any) -> None:
    """Hand-rolled schema check (the container ships no ``jsonschema``).

    Raises ``ValueError`` listing every violation at once, so CI output
    shows the full damage in one run.
    """
    errors: List[str] = []
    if not isinstance(document, Mapping):
        raise ValueError("bench document must be a JSON object")
    version = document.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        _fail(
            errors,
            f"schema_version must be {BENCH_SCHEMA_VERSION}, got {version!r}",
        )
    scenario = document.get("scenario")
    if not isinstance(scenario, str) or not _SCENARIO_RE.match(scenario):
        _fail(errors, f"scenario must match {_SCENARIO_RE.pattern}: {scenario!r}")
    source = document.get("source")
    if not isinstance(source, str) or not source:
        _fail(errors, "source must be a non-empty string")
    created = document.get("created_unix")
    if not isinstance(created, (int, float)) or created <= 0:
        _fail(errors, f"created_unix must be a positive number, got {created!r}")
    metrics = document.get("metrics")
    if not isinstance(metrics, Mapping):
        _fail(errors, "metrics must be an object")
    else:
        for key in ("queries", "latency_mean_ms", "latency_p95_ms"):
            if key not in metrics:
                _fail(errors, f"metrics missing required key {key!r}")
            elif not isinstance(metrics[key], (int, float)):
                _fail(errors, f"metrics[{key!r}] must be a number")
        queries = metrics.get("queries")
        if isinstance(queries, (int, float)) and queries < 0:
            _fail(errors, "metrics['queries'] must be >= 0")
    for optional_obj in ("replay", "registry", "extra"):
        if optional_obj in document and not isinstance(
            document[optional_obj], Mapping
        ):
            _fail(errors, f"{optional_obj} must be an object when present")
    for key in document:
        if key not in (
            "schema_version",
            "scenario",
            "source",
            "created_unix",
            "metrics",
            "replay",
            "registry",
            "extra",
        ):
            _fail(errors, f"unknown top-level key {key!r}")
    if errors:
        raise ValueError(
            "invalid bench document:\n  - " + "\n  - ".join(errors)
        )


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.bench FILE...`` — validate trajectory files."""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.obs.bench BENCH_file.json ...", file=sys.stderr)
        return 2
    status = 0
    for name in args:
        try:
            with open(name) as f:
                doc = json.load(f)
            validate_bench(doc)
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            print(f"{name}: INVALID: {exc}", file=sys.stderr)
            status = 2
            continue
        print(
            f"{name}: ok (scenario={doc['scenario']}, "
            f"queries={doc['metrics'].get('queries')})"
        )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
