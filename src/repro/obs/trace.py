"""Structured per-query tracing: every execution a traceable process.

A :class:`Tracer` turns each pipeline execution into one
:class:`Trace` — a stable trace id (query fingerprint + arrival
sequence number) plus one :class:`Span` per pipeline stage
(``plan``/``route``/``result_cache``/``prune``/``scan``/``merge``, the
multi-layout ``arbitrate`` variant, per-shard ``scatter_scan.shard<i>``
child spans) — and the control plane records ``drift_check`` /
``rebuild`` / ``generation_swap`` control traces through the same
object.  Spans carry the stage's *avoided-work* attributes (generation,
blocks surviving, bytes scanned, cache hit, winning layout), so "why
did this query scan 40 blocks on generation 7 via shard 2?" is
answered by reading the trace, not a debugger.

Tracing is strictly opt-in and zero-cost when off: pipelines carry
``tracer=None`` by default and guard every touch with one ``is not
None`` check, so the differential suites (bit-identical results) and
the serving hot path are unaffected unless a tracer is attached.

Exports:

* :meth:`Tracer.write_jsonl` — one JSON object per line per trace
  (grep/jq-friendly);
* :meth:`Tracer.write_chrome_trace` — Chrome trace-event format
  (``ph: "X"`` complete events on a shared microsecond timeline),
  loadable directly in Perfetto / ``chrome://tracing``.

All span times are measured on the monotonic perf clock
(:func:`repro.obs.clock.now`); exports share that single timeline.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from .clock import now, wall_time

__all__ = ["Span", "Trace", "TraceBuilder", "Tracer"]


@dataclass(frozen=True)
class Span:
    """One timed step inside a trace.

    ``parent`` names the enclosing span for child spans (a per-shard
    ``scatter_scan.shard3`` span carries ``parent="scan"``); top-level
    stage spans have ``parent=None``.
    """

    name: str
    #: Start on the monotonic perf clock (shared across all spans).
    start: float
    duration: float
    parent: Optional[str] = None
    attrs: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.parent is not None:
            d["parent"] = self.parent
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        return d


@dataclass(frozen=True)
class Trace:
    """One finished traced process (a served query, or a control-plane
    operation such as a drift check or a generation swap)."""

    trace_id: str
    #: ``"query"`` (pipeline execution) or ``"control"`` (adapt loop).
    kind: str
    #: The SQL text for query traces; the operation name for control.
    name: str
    start: float
    duration: float
    spans: Tuple[Span, ...] = ()
    attrs: Mapping[str, object] = field(default_factory=dict)
    #: OS thread that ran the traced process (trace-event ``tid``).
    thread_id: int = 0

    def span(self, name: str) -> Optional[Span]:
        """First span with the given name (``None`` when absent)."""
        for s in self.spans:
            if s.name == name:
                return s
        return None

    def child_spans(self, parent: str) -> Tuple[Span, ...]:
        return tuple(s for s in self.spans if s.parent == parent)

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "kind": self.kind,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "spans": [s.to_dict() for s in self.spans],
        }


class TraceBuilder:
    """Mutable accumulator for one in-flight trace.

    A builder belongs to exactly one execution (pipeline contexts are
    never shared across queries), so it needs no lock of its own; the
    owning :class:`Tracer` synchronizes only the publish step.
    """

    __slots__ = ("_tracer", "seq", "kind", "name", "start", "_spans")

    def __init__(self, tracer: "Tracer", seq: int, kind: str, name: str) -> None:
        self._tracer = tracer
        self.seq = seq
        self.kind = kind
        self.name = name
        self.start = now()
        self._spans: list = []

    def add_span(
        self,
        name: str,
        start: float,
        duration: float,
        parent: Optional[str] = None,
        **attrs: object,
    ) -> None:
        self._spans.append(Span(name, start, duration, parent, attrs))

    def finish(self, fingerprint: object = None, **attrs: object) -> Trace:
        """Freeze and publish the trace.  ``fingerprint`` is any
        hashable query identity (e.g. the result-cache key); combined
        with the arrival sequence number it yields the stable trace
        id ``q<fingerprint hex>-<seq>``."""
        if self.kind == "query":
            fp = f"{hash(fingerprint) & 0xFFFFFFFFFFFFFFFF:016x}"
            trace_id = f"q{fp}-{self.seq}"
        else:
            trace_id = f"c{self.seq}-{self.name}"
        trace = Trace(
            trace_id=trace_id,
            kind=self.kind,
            name=self.name,
            start=self.start,
            duration=now() - self.start,
            spans=tuple(self._spans),
            attrs=attrs,
            thread_id=threading.get_ident(),
        )
        self._tracer._publish(trace)
        return trace


class Tracer:
    """Thread-safe collector of finished traces (bounded ring).

    One tracer serves a whole serving stack — single service, sharded
    coordinator, multi-layout arbiter, adaptive control plane — and
    survives generation hot-swaps (the adaptive facade hands the same
    tracer to every inner service it builds).
    """

    #: Pipelines check this instead of ``isinstance`` so any duck-typed
    #: tracer can plug in.
    enabled = True

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._traces: "deque[Trace]" = deque(maxlen=capacity)
        self._dropped = 0
        self._finished = 0

    # -- recording ------------------------------------------------------

    def begin_query(self, sql: str) -> TraceBuilder:
        """Open a trace for one pipeline execution (called by the
        pipeline; every admitted query gets exactly one)."""
        return TraceBuilder(self, next(self._seq), "query", sql)

    def begin_control(self, name: str) -> TraceBuilder:
        """Open a trace for one control-plane operation."""
        return TraceBuilder(self, next(self._seq), "control", name)

    @contextmanager
    def control_span(self, name: str, **attrs: object):
        """Measure one control-plane operation as a single-span trace.

        Yields a mutable attribute dict the caller can fill with the
        operation's outcome (drift score, swap generation, ...); the
        attributes land on both the span and the trace.
        """
        builder = self.begin_control(name)
        out: Dict[str, object] = dict(attrs)
        t0 = now()
        try:
            yield out
        finally:
            builder.add_span(name, t0, now() - t0, **out)
            builder.finish(**out)

    def _publish(self, trace: Trace) -> None:
        with self._lock:
            if len(self._traces) == self._traces.maxlen:
                self._dropped += 1
            self._traces.append(trace)
            self._finished += 1

    # -- reading --------------------------------------------------------

    def traces(self, kind: Optional[str] = None) -> Tuple[Trace, ...]:
        """Finished traces, oldest first (optionally one kind only)."""
        with self._lock:
            snapshot = tuple(self._traces)
        if kind is None:
            return snapshot
        return tuple(t for t in snapshot if t.kind == kind)

    def query_traces(self) -> Tuple[Trace, ...]:
        return self.traces("query")

    def control_traces(self) -> Tuple[Trace, ...]:
        return self.traces("control")

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    @property
    def finished(self) -> int:
        """Traces ever finished (ring overwrites don't subtract)."""
        with self._lock:
            return self._finished

    @property
    def dropped(self) -> int:
        """Traces the bounded ring had to overwrite."""
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    # -- exports --------------------------------------------------------

    def jsonl_lines(self) -> Iterable[str]:
        """One compact JSON object per finished trace."""
        for trace in self.traces():
            yield json.dumps(trace.to_dict(), separators=(",", ":"))

    def write_jsonl(self, path) -> int:
        """Write the JSON-lines export; returns the trace count."""
        count = 0
        with open(path, "w") as f:
            for line in self.jsonl_lines():
                f.write(line + "\n")
                count += 1
        return count

    def chrome_trace_events(self) -> list:
        """Chrome trace-event ``"X"`` (complete) events, one per span
        plus one enclosing event per trace, on a shared microsecond
        timeline.  ``pid`` separates query vs control traces into two
        Perfetto process tracks; ``tid`` is the serving thread."""
        events = []
        for trace in self.traces():
            pid = 1 if trace.kind == "query" else 2
            common = {"pid": pid, "tid": trace.thread_id, "ph": "X"}
            events.append(
                {
                    **common,
                    "name": trace.name if trace.kind == "control" else "query",
                    "cat": trace.kind,
                    "ts": trace.start * 1e6,
                    "dur": trace.duration * 1e6,
                    "args": {"trace_id": trace.trace_id, **trace.attrs},
                }
            )
            for span in trace.spans:
                events.append(
                    {
                        **common,
                        "name": span.name,
                        "cat": f"{trace.kind}.stage",
                        "ts": span.start * 1e6,
                        "dur": span.duration * 1e6,
                        "args": {"trace_id": trace.trace_id, **span.attrs},
                    }
                )
        return events

    def write_chrome_trace(self, path) -> int:
        """Write the Perfetto-loadable trace-event file; returns the
        event count."""
        events = self.chrome_trace_events()
        doc = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {"exported_unix": wall_time()},
        }
        with open(path, "w") as f:
            json.dump(doc, f)
        return len(events)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"Tracer({len(self._traces)}/{self.capacity} traces, "
                f"{self._finished} finished, {self._dropped} dropped)"
            )
