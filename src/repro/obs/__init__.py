"""repro.obs — observability: tracing, metrics registry, trajectories.

Three seams, all opt-in and zero-cost when unused:

* :mod:`repro.obs.trace` — per-query :class:`Trace`/:class:`Span`
  recording with JSON-lines and Chrome trace-event (Perfetto) export;
* :mod:`repro.obs.registry` — labeled Counter/Gauge/Histogram
  primitives plus collector callbacks, exported as Prometheus text or
  JSON;
* :mod:`repro.obs.bench` — schema-versioned ``BENCH_<scenario>.json``
  trajectory files for PR-over-PR perf tracking;
* :mod:`repro.obs.clock` — the sanctioned monotonic/wall clocks.
"""

from .bench import (
    BENCH_SCHEMA_VERSION,
    bench_document,
    bench_path,
    plain,
    validate_bench,
    write_bench,
)
from .clock import now, wall_time
from .registry import Counter, Gauge, Histogram, MetricsRegistry, Sample
from .trace import Span, Trace, TraceBuilder, Tracer

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "Span",
    "Trace",
    "TraceBuilder",
    "Tracer",
    "bench_document",
    "bench_path",
    "now",
    "plain",
    "validate_bench",
    "wall_time",
    "write_bench",
]
