"""The unified metrics registry: labeled counters, gauges, histograms.

Before this module, the serving stack reported its work through four
disconnected snapshot structs (``ServingMetrics``/``MetricsSnapshot``,
``CacheStats``, ``SchedulerStats``, ``AdaptSnapshot``) with no
machine-readable export.  :class:`MetricsRegistry` is the one place
they all publish into:

* **primitives** — :class:`Counter` (monotonic), :class:`Gauge`
  (point-in-time), :class:`Histogram` (bucketed distribution), each
  supporting Prometheus-style labels;
* **collectors** — existing stat providers register a zero-argument
  callback yielding :class:`Sample` rows at export time, so their
  snapshot dataclasses stay the source of truth (thin views, no
  behavior change) and the registry never duplicates their locking;
* **exporters** — :meth:`MetricsRegistry.to_prometheus_text` (the
  ``text/plain; version=0.0.4`` exposition format) and
  :meth:`MetricsRegistry.to_json` (one JSON document).

Every facade in :mod:`repro.serve` / :mod:`repro.adapt` implements
``publish_metrics(registry, **labels)`` on top of this; the CLI's
``metrics-export`` subcommand and the ``BENCH_*.json`` trajectory
emitter (:mod:`repro.obs.bench`) are the first consumers.
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds-flavoured, Prometheus-style).
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class Sample:
    """One exported time-series point (collector callbacks yield
    these; direct metrics are flattened into them at export time)."""

    name: str
    value: float
    labels: LabelKey = ()
    help: str = ""
    kind: str = "gauge"  # "counter" | "gauge" | "histogram"

    @staticmethod
    def of(
        name: str,
        value: float,
        labels: Optional[Mapping[str, object]] = None,
        help: str = "",
        kind: str = "gauge",
    ) -> "Sample":
        return Sample(
            name=name,
            value=float(value),
            labels=_label_key(labels or {}),
            help=help,
            kind=kind,
        )


class _Metric:
    """Shared label-map plumbing for the three primitives."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._series: Dict[LabelKey, float] = {}

    def _bump(self, labels: Mapping[str, object], value: float, add: bool) -> None:
        key = _label_key(labels)
        with self._lock:
            if add:
                self._series[key] = self._series.get(key, 0.0) + value
            else:
                self._series[key] = value

    def value(self, **labels: object) -> float:
        """Current value of one labeled series (0.0 when unseen)."""
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def samples(self) -> List[Sample]:
        with self._lock:
            series = dict(self._series)
        if not series:
            # A declared-but-untouched metric still exports one zero
            # sample, so dashboards see the series exists.
            series = {(): 0.0}
        return [
            Sample(self.name, value, key, self.help, self.kind)
            for key, value in sorted(series.items())
        ]


class Counter(_Metric):
    """Monotonically increasing count (queries served, bytes scanned)."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels: object) -> None:
        if value < 0:
            raise ValueError("counters only go up; use a Gauge")
        self._bump(labels, value, add=True)


class Gauge(_Metric):
    """Point-in-time value that can go both ways (queue depth, drift)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        self._bump(labels, float(value), add=False)

    def inc(self, value: float = 1.0, **labels: object) -> None:
        self._bump(labels, float(value), add=True)

    def dec(self, value: float = 1.0, **labels: object) -> None:
        self._bump(labels, -float(value), add=True)


@dataclass
class _HistogramSeries:
    bucket_counts: List[int]
    count: int = 0
    sum: float = 0.0


class Histogram(_Metric):
    """Cumulative-bucket distribution (latencies, span durations)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self._hseries: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._hseries.get(key)
            if series is None:
                series = _HistogramSeries([0] * len(self.buckets))
                self._hseries[key] = series
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[i] += 1
            series.count += 1
            series.sum += value

    def series(self, **labels: object) -> Optional[_HistogramSeries]:
        with self._lock:
            found = self._hseries.get(_label_key(labels))
            if found is None:
                return None
            return _HistogramSeries(
                list(found.bucket_counts), found.count, found.sum
            )

    def samples(self) -> List[Sample]:
        """Flattened Prometheus shape: ``_bucket{le=...}`` (cumulative,
        plus ``+Inf``), ``_sum`` and ``_count`` per labeled series."""
        with self._lock:
            snapshot = {
                key: _HistogramSeries(list(s.bucket_counts), s.count, s.sum)
                for key, s in self._hseries.items()
            }
        out: List[Sample] = []
        for key, s in sorted(snapshot.items()):
            for bound, cumulative in zip(self.buckets, s.bucket_counts):
                le = ("le", _format_value(bound))
                out.append(
                    Sample(
                        f"{self.name}_bucket",
                        cumulative,
                        key + (le,),
                        self.help,
                        self.kind,
                    )
                )
            out.append(
                Sample(
                    f"{self.name}_bucket",
                    s.count,
                    key + (("le", "+Inf"),),
                    self.help,
                    self.kind,
                )
            )
            out.append(Sample(f"{self.name}_sum", s.sum, key, self.help, self.kind))
            out.append(
                Sample(f"{self.name}_count", s.count, key, self.help, self.kind)
            )
        return out


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


@dataclass
class _CollectorEntry:
    fn: Callable[[], Iterable[Sample]]
    name: str = ""


@dataclass
class MetricsRegistry:
    """One process-wide (or per-test) home for every exported metric."""

    _lock: threading.Lock = field(default_factory=threading.Lock)
    _metrics: "Dict[str, _Metric]" = field(default_factory=dict)
    _collectors: List[_CollectorEntry] = field(default_factory=list)

    # -- creation (get-or-create, kind-checked) ------------------------

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    # -- collectors (existing snapshot structs publish through these) --

    def register_collector(
        self, fn: Callable[[], Iterable[Sample]], name: str = ""
    ) -> None:
        """Register a callback yielding :class:`Sample` rows at export
        time.  This is how :class:`~repro.serve.metrics.ServingMetrics`,
        :class:`~repro.serve.cache.BlockCache`,
        :class:`~repro.serve.scheduler.Scheduler` and the adapt control
        plane publish — their snapshot dataclasses stay authoritative
        and are merely *viewed* through the registry."""
        with self._lock:
            self._collectors.append(_CollectorEntry(fn, name))

    def collect(self) -> List[Sample]:
        """Every sample: direct metrics first, then collector output.
        A collector that raises is skipped (observability must never
        take the serving path down) but never silently: the failure is
        itself exported as ``repro_collector_errors``."""
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors)
        samples: List[Sample] = []
        for metric in metrics:
            samples.extend(metric.samples())
        errors = 0
        for entry in collectors:
            try:
                samples.extend(entry.fn())
            except Exception:
                errors += 1
        if errors:
            samples.append(
                Sample.of(
                    "repro_collector_errors",
                    errors,
                    help="Collectors that raised during this export",
                    kind="gauge",
                )
            )
        return samples

    # -- exporters ------------------------------------------------------

    def to_prometheus_text(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        by_family: "Dict[str, List[Sample]]" = {}
        meta: Dict[str, Tuple[str, str]] = {}
        for sample in self.collect():
            family = _family_name(sample)
            by_family.setdefault(family, []).append(sample)
            if family not in meta or not meta[family][0]:
                meta[family] = (sample.help, sample.kind)
        lines: List[str] = []
        for family in sorted(by_family):
            help_text, kind = meta[family]
            if help_text:
                lines.append(f"# HELP {family} {_escape_help(help_text)}")
            lines.append(f"# TYPE {family} {kind}")
            for sample in by_family[family]:
                lines.append(_render_sample(sample))
        return "\n".join(lines) + "\n"

    def to_json(self) -> Dict[str, object]:
        """One JSON document: ``{family: {help, type, samples: [...]}}``."""
        out: Dict[str, dict] = {}
        for sample in self.collect():
            family = _family_name(sample)
            entry = out.setdefault(
                family,
                {"help": sample.help, "type": sample.kind, "samples": []},
            )
            if not entry["help"] and sample.help:
                entry["help"] = sample.help
            entry["samples"].append(
                {
                    "name": sample.name,
                    "labels": dict(sample.labels),
                    "value": sample.value,
                }
            )
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics) + len(self._collectors)


def _family_name(sample: Sample) -> str:
    """Histogram ``_bucket``/``_sum``/``_count`` samples share one
    metric family for HELP/TYPE purposes."""
    if sample.kind == "histogram":
        for suffix in ("_bucket", "_sum", "_count"):
            if sample.name.endswith(suffix):
                return sample.name[: -len(suffix)]
    return sample.name


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_sample(sample: Sample) -> str:
    if sample.labels:
        labels = ",".join(
            f'{k}="{_escape_label(v)}"' for k, v in sample.labels
        )
        return f"{sample.name}{{{labels}}} {_format_value(sample.value)}"
    return f"{sample.name} {_format_value(sample.value)}"
