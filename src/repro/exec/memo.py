"""Bounded, thread-safe per-predicate memoization.

One memo discipline is shared by every cached pipeline configuration:
hits cost two dict lookups under a small lock; misses compute *outside*
the lock (a racing duplicate computation is benign — both sides
compute the same deterministic entry); inserts FIFO-evict past ``cap``
so a long-lived service under ad-hoc traffic cannot grow without
limit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..core.predicates import Predicate

__all__ = ["RouteMemo"]


class RouteMemo:
    """Predicate-fingerprint -> entry memo used by pipeline stages.

    :class:`~repro.exec.stages.RouteStage` memoizes ``(routed BIDs,
    candidate count)``, :class:`~repro.exec.stages.PruneStage` the SMA
    survivor list, the sharded prune stage per-shard survivor lists,
    and :class:`~repro.exec.stages.ArbitrateStage` whole arbitration
    choices — all through this one class.
    """

    def __init__(self, cap: int = 16384) -> None:
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Predicate, object]" = OrderedDict()
        self.cap = cap

    def get_or_compute(self, key: Predicate, compute):
        with self._lock:
            hit = self._entries.get(key)
            if hit is not None:
                return hit
        entry = compute()
        with self._lock:
            self._entries[key] = entry
            while len(self._entries) > self.cap:
                self._entries.popitem(last=False)
        return entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
