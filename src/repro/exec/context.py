"""The explicit per-query execution context pipeline stages share."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.router import QueryRouter
from ..core.workload import Query
from ..engine.executor import QueryStats, ScanEngine
from ..storage.blocks import BlockStore

__all__ = ["ExecContext", "LayoutBinding"]


@dataclass(frozen=True)
class LayoutBinding:
    """One layout's execution collaborators, as the pipeline sees them.

    The multi-layout arbiter holds one binding per candidate layout;
    :class:`~repro.exec.stages.ArbitrateStage` picks one per predicate
    and publishes it on the context, where the scan stage finds it.
    """

    label: str
    generation: int
    store: BlockStore
    engine: ScanEngine
    router: Optional[QueryRouter] = None


@dataclass
class ExecContext:
    """Everything one query accumulates as it travels the stages.

    A context is created per execution and never shared across
    queries; stages communicate exclusively through it, which is what
    makes each stage independently testable and each configuration a
    pure wiring exercise.
    """

    sql: str
    #: When the query was admitted (queue wait is part of latency).
    admitted_at: float
    #: Filled by :class:`~repro.exec.stages.PlanStage`.
    query: Optional[Query] = None
    #: Generation of the layout answering this query (fixed for
    #: single-layout configurations; chosen by the arbiter for multi).
    generation: int = 0
    #: The arbiter's chosen layout (``None`` outside multi-layout).
    binding: Optional[LayoutBinding] = None
    #: Label of the arbitration winner (``None`` outside multi-layout).
    winner: Optional[str] = None
    #: Routed BID list (``None`` for tree-less layouts).
    routed: Optional[Tuple[int, ...]] = None
    #: Pre-prune candidate count, deduped against the full store.
    considered: int = 0
    #: SMA-surviving BIDs (single-engine scan path).
    survivors: Optional[Tuple[int, ...]] = None
    #: Sharded path: per-shard survivor lists / candidate counts and
    #: the indices of shards owning at least one survivor.
    per_shard: Optional[Tuple[Tuple[int, ...], ...]] = None
    shard_considered: Optional[Tuple[int, ...]] = None
    owners: Optional[Tuple[int, ...]] = None
    #: Sharded path: gathered per-shard stats awaiting the merge.
    parts: Optional[Tuple[QueryStats, ...]] = None
    #: Wall seconds the scatter+gather took (merge stamps it into the
    #: merged stats, mirroring the single-engine scan's wall time).
    scatter_seconds: float = 0.0
    #: The finished result (set by cache hit, scan, or merge).
    stats: Optional[QueryStats] = None
    #: True when ``stats`` came from the result cache.
    cached: bool = False
    #: Per-stage wall seconds, keyed by stage name.  ``"queue"`` holds
    #: the scheduler queue wait; dotted keys (``"scan.shard2"``) are
    #: sub-attributions inside a stage and are excluded from the
    #: sum-of-stages ≈ latency identity.
    timings: Dict[str, float] = field(default_factory=dict)
    #: In-flight :class:`~repro.obs.trace.TraceBuilder` when the owning
    #: pipeline carries a tracer (``None`` otherwise — the zero-cost
    #: default).  Duck-typed so repro.exec never imports repro.obs at
    #: the type level; stages guard every touch with ``is not None``.
    trace: Optional[object] = None
